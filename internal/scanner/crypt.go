package scanner

import (
	"net"
	"time"

	"tlsshortcuts/internal/attacker"
	"tlsshortcuts/internal/drbg"
	"tlsshortcuts/internal/tlsclient"
	"tlsshortcuts/internal/wire"
)

// CryptCapture is one domain's recorded probe set for the cryptanalysis
// pass: full-handshake and ticket-resumption conversations (each carrying
// application data), the tickets observed in them, and the FFDH modulus
// the domain serves.
type CryptCapture struct {
	Domain  string
	Convs   []*attacker.Conversation
	Tickets [][]byte
	DHPrime []byte
}

// CryptanalysisCapture runs the tap-recorded capture pass over domains:
// per domain a full handshake offering a ticket (with application data —
// the traffic whose later decryption the attacker measures), a ticket
// resumption (which makes the server reissue: a second sealing under the
// same STEK, so IVs can be compared), and a DHE-forced parameter probe.
// Unlike the daily scans these connections are recorded byte-for-byte
// through an attacker.Tap — the pass plays the paper's passive adversary
// alongside the measurement client.
func (s *Scanner) CryptanalysisCapture(domains []string, appData []byte) []CryptCapture {
	out := make([]CryptCapture, len(domains))
	s.forEach(len(domains), func(w, i int) {
		out[i] = s.captureDomain(domains[i], appData)
	})
	return out
}

func (s *Scanner) captureDomain(domain string, appData []byte) CryptCapture {
	cc := CryptCapture{Domain: domain}
	conv, hcap, err := s.tapProbe(domain, "crypt|full|1", &tlsclient.Config{
		OfferTicket: true, AppData: appData,
	})
	if err == nil {
		cc.Convs = append(cc.Convs, conv)
		if hcap.TicketIssued {
			cc.Tickets = append(cc.Tickets, append([]byte(nil), hcap.Ticket...))
			conv2, rcap, err2 := s.tapProbe(domain, "crypt|resume|1", &tlsclient.Config{
				Resume: hcap.Session, ResumeViaTicket: true, AppData: appData,
			})
			if err2 == nil {
				cc.Convs = append(cc.Convs, conv2)
				if rcap.TicketIssued {
					cc.Tickets = append(cc.Tickets, append([]byte(nil), rcap.Ticket...))
				}
			}
		}
	}
	// FFDH parameter capture: force the DHE suite and record through the
	// SKE. Domains without DHE answer with an alert and are skipped.
	if conv3, _, err3 := s.tapProbe(domain, "crypt|dhe|1", &tlsclient.Config{
		Suites: []uint16{wire.SuiteDHE}, KexOnly: true,
	}); err3 == nil {
		if rec, perr := attacker.Parse(conv3); perr == nil && len(rec.DHPrime) > 0 {
			cc.DHPrime = rec.DHPrime
		}
	}
	return cc
}

// tapProbe opens one tap-recorded connection. No retries: the pass is a
// single post-campaign sweep, and a retried probe would be a different
// recorded conversation anyway.
func (s *Scanner) tapProbe(domain, label string, cfg *tlsclient.Config) (*attacker.Conversation, *tlsclient.Capture, error) {
	var conn net.Conn
	var err error
	if sd, ok := s.Dialer.(StableDialer); ok {
		conn, err = sd.DialProbeStable(domain, label)
	} else if pd, ok := s.Dialer.(ProbeDialer); ok {
		conn, err = pd.DialProbe(domain, label)
	} else {
		conn, err = s.Dialer.Dial(domain)
	}
	if err != nil {
		return nil, nil, err
	}
	defer conn.Close()
	if t := s.timeout(); t > 0 {
		_ = conn.SetDeadline(time.Now().Add(t))
	}
	cfg.ServerName = domain
	cfg.Clock = s.Clock
	cfg.Roots = s.Roots
	if s.Seed != nil {
		cfg.Rand = drbg.NewParts(s.Seed, domain, label)
	}
	tap := attacker.NewTap(conn)
	hcap := &tlsclient.Capture{}
	if err := tlsclient.HandshakeInto(hcap, tap, cfg); err != nil {
		return nil, nil, err
	}
	return tap.Conversation(), hcap, nil
}
