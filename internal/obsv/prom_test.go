package obsv

import (
	"bytes"
	"strconv"
	"strings"
	"testing"
	"time"

	"tlsshortcuts/internal/telemetry"
)

// TestWriteProm pins the exposition mapping: counters to _total,
// histograms to cumulative _bucket/_sum/_count in seconds, wall/
// metrics relabeled wall="true", and stable (sorted) output.
func TestWriteProm(t *testing.T) {
	reg := telemetry.NewRegistry()
	reg.Counter("scanner/probes").Add(42)
	reg.Counter("wall/scanner/busy_ns").Add(7)
	reg.Histogram("scanner/vlatency/ticket").Observe(3 * time.Microsecond)
	reg.Histogram("scanner/vlatency/ticket").Observe(2 * time.Millisecond)

	var buf bytes.Buffer
	WriteProm(&buf, reg.Snapshot())
	out := buf.String()

	for _, want := range []string{
		"# TYPE tls_scanner_probes_total counter\n",
		"tls_scanner_probes_total 42\n",
		`tls_scanner_busy_ns_total{wall="true"} 7` + "\n",
		"# TYPE tls_scanner_vlatency_ticket_seconds histogram\n",
		`tls_scanner_vlatency_ticket_seconds_bucket{le="+Inf"} 2` + "\n",
		"tls_scanner_vlatency_ticket_seconds_count 2\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	// Cumulative buckets: monotone non-decreasing, ending at count.
	var prev int64 = -1
	for _, line := range strings.Split(out, "\n") {
		if !strings.HasPrefix(line, "tls_scanner_vlatency_ticket_seconds_bucket") {
			continue
		}
		n, err := strconv.ParseInt(line[strings.LastIndexByte(line, ' ')+1:], 10, 64)
		if err != nil {
			t.Fatalf("bad bucket line %q: %v", line, err)
		}
		if n < prev {
			t.Errorf("bucket counts not cumulative: %q after %d", line, prev)
		}
		prev = n
	}
	if prev != 2 {
		t.Errorf("last bucket = %d, want the observation count 2", prev)
	}

	// Identical snapshots render identically (stable ordering).
	var buf2 bytes.Buffer
	WriteProm(&buf2, reg.Snapshot())
	if buf2.String() != out {
		t.Error("exposition output not stable across renders")
	}
}

func TestSanitize(t *testing.T) {
	cases := map[string]string{
		"scanner/errors/reset": "scanner_errors_reset",
		"a-b.c":                "a_b_c",
		"ok_name9":             "ok_name9",
	}
	for in, want := range cases {
		if got := sanitize(in); got != want {
			t.Errorf("sanitize(%q) = %q, want %q", in, got, want)
		}
	}
}
