// Command studyrun executes the full nine-week measurement campaign against
// a freshly generated synthetic population and writes the dataset to disk.
//
// Usage:
//
//	studyrun -listsize 5000 -days 64 -seed 1 -out dataset.json
//
// The dataset feeds cmd/report, which regenerates every table and figure.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"time"

	"tlsshortcuts/internal/faults"
	"tlsshortcuts/internal/study"
)

func main() {
	var (
		listSize = flag.Int("listsize", 5000, "scaled Top Million list size")
		days     = flag.Int("days", 64, "study length in days (paper: Mar 2 - May 4 2016)")
		seed     = flag.Int64("seed", 1, "deterministic world/scan seed")
		workers  = flag.Int("workers", runtime.NumCPU()*2, "scan concurrency")
		out      = flag.String("out", "dataset.json", "output dataset path")
		report   = flag.Bool("report", true, "print the full report after the run")
		quiet    = flag.Bool("quiet", false, "suppress progress logging")

		probeTimeout = flag.Duration("probe-timeout", 0, "per-connection deadline (0 = scanner default, <0 disables)")
		retries      = flag.Int("retries", 0, "transient-failure retries (0 = scanner default, <0 disables)")
		faultSeed    = flag.Int64("fault-seed", 0, "fault plan seed (defaults to -seed)")
		faultRefuse  = flag.Float64("fault-refuse", 0, "per-dial refusal probability")
		faultReset   = flag.Float64("fault-reset", 0, "per-dial mid-handshake reset probability")
		faultStall   = flag.Float64("fault-stall", 0, "per-dial stalled-server probability")
		faultFlap    = flag.Float64("fault-flap", 0, "per-(backend,day) outage probability")
		faultChurn   = flag.Float64("fault-churn", 0, "per-domain churn-window probability")
		churnDays    = flag.Int("fault-churn-days", 3, "max churn window length in days")
	)
	flag.Parse()

	logf := func(format string, args ...interface{}) {
		if !*quiet {
			log.Printf(format, args...)
		}
	}
	var fo *faults.Options
	if *faultRefuse > 0 || *faultReset > 0 || *faultStall > 0 || *faultFlap > 0 || *faultChurn > 0 {
		fs := *faultSeed
		if fs == 0 {
			fs = *seed
		}
		fo = &faults.Options{
			Seed:         fs,
			Refuse:       *faultRefuse,
			Reset:        *faultReset,
			Stall:        *faultStall,
			Flap:         *faultFlap,
			Churn:        *faultChurn,
			ChurnMaxDays: *churnDays,
		}
	}
	logf("building %d-domain world and running %d-day campaign (seed %d, %d workers)",
		*listSize, *days, *seed, *workers)
	start := time.Now()
	ds, err := study.Run(study.Options{
		ListSize:     *listSize,
		Days:         *days,
		Seed:         *seed,
		Workers:      *workers,
		Logf:         logf,
		Faults:       fo,
		ProbeTimeout: *probeTimeout,
		Retries:      *retries,
	})
	if err != nil {
		log.Fatalf("study failed: %v", err)
	}
	logf("campaign finished in %v; writing %s", time.Since(start).Round(time.Second), *out)
	if len(ds.Failures) > 0 {
		total := 0
		for _, f := range ds.Failures {
			total += f.Count
		}
		logf("scan failures: %d across %d (scan, class) cells; %d domains with missed days",
			total, len(ds.Failures), len(ds.MissedDays))
	}
	if err := ds.Save(*out); err != nil {
		log.Fatalf("saving dataset: %v", err)
	}
	if *report {
		fmt.Fprintln(os.Stdout, study.BuildReport(ds).String())
	}
}
