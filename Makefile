GO ?= go

.PHONY: build test race bench fmt

build:
	$(GO) build ./...

test:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then echo "gofmt needed on:"; echo "$$out"; exit 1; fi
	$(GO) vet ./...
	$(GO) test -short ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -run=NONE -bench=. -benchtime=1x ./...

fmt:
	gofmt -l -w .
