// Package vulnwindow models §6's security-harm metric: for each domain
// and shortcut mechanism, the window during which a later server-side
// compromise retroactively decrypts a recorded connection; per-domain
// windows combine by taking the worst mechanism.
package vulnwindow

import "time"

// Mechanism identifies the crypto shortcut behind an exposure.
type Mechanism string

// The four measured shortcut mechanisms, plus the weak-crypto mechanisms
// surfaced by the cryptanalysis probes: a dictionary-recoverable STEK and
// a known-weak (export-grade, shared) FFDH prime. The weak mechanisms
// differ in kind — no compromise event is needed; the recorded traffic is
// decryptable from public knowledge alone — so their windows span the
// entire observation.
const (
	MechTicket    Mechanism = "ticket"
	MechCache     Mechanism = "cache"
	MechDHE       Mechanism = "dhe"
	MechECDHE     Mechanism = "ecdhe"
	MechWeakSTEK  Mechanism = "weak-stek"
	MechFFDHPrime Mechanism = "ffdh-prime"
)

// Exposure is one (domain, mechanism) vulnerability window.
type Exposure struct {
	Domain    string
	Mechanism Mechanism
	Window    time.Duration
}

// TicketWindow is the STEK exposure: a connection made any time during
// the key's observed lifetime (span) stays decryptable until the key is
// destroyed, plus the tail during which old tickets are still accepted.
func TicketWindow(spanDays int, acceptance time.Duration) time.Duration {
	return time.Duration(spanDays)*24*time.Hour + acceptance
}

// CacheWindow is the session-cache exposure: the measured time the server
// keeps the master secret resumable.
func CacheWindow(lifetime time.Duration) time.Duration {
	return lifetime
}

// KexWindow is the finite-field or elliptic DH exposure for a key-exchange
// value observed on spanDays distinct days. Sub-day reuse is treated as
// no exposure (the paper reports reuse at day granularity).
func KexWindow(spanDays int) time.Duration {
	if spanDays < 1 {
		return 0
	}
	return time.Duration(spanDays) * 24 * time.Hour
}

// WeakWindow is the exposure for traffic decryptable without any
// compromise event (cracked STEK, known-weak prime): every connection
// recorded during the campaign is harmed, so the window is the full
// observation length.
func WeakWindow(campaignDays int) time.Duration {
	return time.Duration(campaignDays) * 24 * time.Hour
}

// Precomp is the Logjam-style precomputation attacker model for a shared
// FFDH prime: a one-time number-field-sieve first phase per prime, after
// which each individual connection's discrete log falls in seconds. The
// one-time cost amortizes over every domain (and every connection)
// serving the prime — the economics that made export-grade groups a
// target worth a week of cluster time.
type Precomp struct {
	PrimeBits      int
	CoreYears      float64 // one-time per-prime sieve cost
	PerConnSeconds float64 // marginal per-connection descent, post-sieve
}

// PrecompForBits returns the cost model for a prime of the given width,
// calibrated to Adrian et al.'s measured numbers: a 512-bit sieve ran
// about a week on 2000-3000 cores (~50 core-years), then ~70-90 s of
// descent per individual discrete log.
func PrecompForBits(bits int) Precomp {
	p := Precomp{PrimeBits: bits}
	switch {
	case bits <= 512:
		p.CoreYears, p.PerConnSeconds = 50, 90
	case bits <= 768:
		p.CoreYears, p.PerConnSeconds = 4500, 1200
	default:
		// 1024-bit: Adrian et al.'s nation-state estimate.
		p.CoreYears, p.PerConnSeconds = 45e6, 30*86400
	}
	return p
}

// AmortizedCoreYears is the per-domain share of the one-time sieve when
// nDomains serve the same prime.
func (p Precomp) AmortizedCoreYears(nDomains int) float64 {
	if nDomains < 1 {
		nDomains = 1
	}
	return p.CoreYears / float64(nDomains)
}

// Combine reduces exposures to the per-domain maximum window: an
// eavesdropped connection is as vulnerable as the worst shortcut in play.
func Combine(exps []Exposure) map[string]time.Duration {
	out := make(map[string]time.Duration)
	for _, e := range exps {
		if w, ok := out[e.Domain]; !ok || e.Window > w {
			out[e.Domain] = e.Window
		}
	}
	return out
}

// Classification buckets combined windows by exceedance threshold
// (Figure 8's headline cut points). Comparisons are strict: a window of
// exactly 24h does not count as "over 24h".
type Classification struct {
	Total   int // domains with any exposure
	Over24h int
	Over7d  int
	Over30d int
}

// Frac returns n as a fraction of Total (0 when Total is 0).
func (c Classification) Frac(n int) float64 {
	if c.Total == 0 {
		return 0
	}
	return float64(n) / float64(c.Total)
}

// Classify combines exposures and counts threshold exceedances.
func Classify(exps []Exposure) Classification {
	return ClassifyCombined(Combine(exps))
}

// ClassifyCombined counts exceedances over already-combined windows.
func ClassifyCombined(windows map[string]time.Duration) Classification {
	c := Classification{Total: len(windows)}
	for _, w := range windows {
		over24h, over7d, over30d := Over(w)
		if over24h {
			c.Over24h++
		}
		if over7d {
			c.Over7d++
		}
		if over30d {
			c.Over30d++
		}
	}
	return c
}

// Over reports which headline thresholds a combined window strictly
// exceeds — the same cut points Classification buckets by. The traffic
// plane uses it to join each real connection against its domain's
// window, so the measured in-window fractions and the scanner-inferred
// Figure 8 classification share one predicate.
func Over(w time.Duration) (over24h, over7d, over30d bool) {
	day := 24 * time.Hour
	return w > day, w > 7*day, w > 30*day
}
