package attacker_test

import (
	"bytes"
	"errors"
	"net"
	"sync"
	"testing"
	"time"

	"tlsshortcuts/internal/attacker"
	"tlsshortcuts/internal/pki"
	"tlsshortcuts/internal/simclock"
	"tlsshortcuts/internal/ticket"
	"tlsshortcuts/internal/tlsclient"
	"tlsshortcuts/internal/tlsserver"
)

// Regression: a corrupted direction byte must fail loudly with a typed
// error, not fold into "from server" (pre-fix, any nonzero byte meant
// FromClient=false except exactly 1).
func TestLoadRejectsBadDirection(t *testing.T) {
	conv := &attacker.Conversation{Segments: []attacker.Segment{
		{FromClient: true, Data: []byte("hello")},
		{FromClient: false, Data: []byte("world!")},
	}}
	blob := conv.Save()

	// The second segment's direction byte sits after magic + first header
	// + first payload.
	off := 8 + 5 + 5
	for _, dir := range []byte{2, 0x7f, 0xff} {
		bad := append([]byte(nil), blob...)
		bad[off] = dir
		_, err := attacker.Load(bad)
		if err == nil {
			t.Fatalf("Load accepted direction byte 0x%02x", dir)
		}
		var bde *attacker.BadDirectionError
		if !errors.As(err, &bde) {
			t.Fatalf("error %v is not a BadDirectionError", err)
		}
		if bde.Offset != off || bde.Dir != dir {
			t.Errorf("BadDirectionError{Offset: %d, Dir: 0x%02x}, want {%d, 0x%02x}",
				bde.Offset, bde.Dir, off, dir)
		}
	}
}

// TLSCAP01 round-trip property: Save∘Load∘Save is the identity on bytes
// (including empty conversations and empty segments), and every prefix
// that does not end exactly on a segment boundary is rejected.
func TestSaveLoadRoundTripProperty(t *testing.T) {
	cases := []*attacker.Conversation{
		{},
		{Segments: []attacker.Segment{{FromClient: true}}}, // empty payload
		{Segments: []attacker.Segment{
			{FromClient: true, Data: []byte("GET /")},
			{FromClient: false, Data: []byte("200 OK")},
			{FromClient: false, Data: []byte{}}, // empty mid-stream segment
			{FromClient: true, Data: bytes.Repeat([]byte{0xab}, 300)},
		}},
	}
	for ci, conv := range cases {
		b1 := conv.Save()
		got, err := attacker.Load(b1)
		if err != nil {
			t.Fatalf("case %d: Load: %v", ci, err)
		}
		b2 := got.Save()
		if !bytes.Equal(b1, b2) {
			t.Errorf("case %d: Save(Load(Save)) differs from Save", ci)
		}
		if len(got.Segments) != len(conv.Segments) {
			t.Errorf("case %d: %d segments after round trip, want %d",
				ci, len(got.Segments), len(conv.Segments))
		}

		// Valid cut points: after the magic and after each whole segment.
		valid := map[int]bool{8: true}
		off := 8
		for _, s := range conv.Segments {
			off += 5 + len(s.Data)
			valid[off] = true
		}
		for n := 0; n < len(b1); n++ {
			c, err := attacker.Load(b1[:n])
			if valid[n] {
				if err != nil {
					t.Errorf("case %d: prefix %d is a segment boundary but Load failed: %v", ci, n, err)
				}
			} else if err == nil {
				t.Errorf("case %d: Load accepted mid-segment truncation at %d (%d segments)",
					ci, n, len(c.Segments))
			}
		}
	}
}

// sinkConn satisfies just enough of net.Conn for a write-only tap.
type sinkConn struct{ net.Conn }

func (sinkConn) Write(p []byte) (int, error) { return len(p), nil }

// Regression: a snapshot must not alias the live recording. Pre-fix,
// Conversation returned a view sharing the Segments backing array, so a
// later same-direction write — which rewrites that element's Data header
// in place — retroactively grew the snapshot.
func TestTapSnapshotIsolation(t *testing.T) {
	tap := attacker.NewTap(sinkConn{})
	if _, err := tap.Write([]byte("AB")); err != nil {
		t.Fatal(err)
	}
	snap := tap.Conversation()
	if _, err := tap.Write([]byte("CD")); err != nil {
		t.Fatal(err)
	}
	if got := string(snap.Segments[0].Data); got != "AB" {
		t.Errorf("snapshot mutated by post-snapshot traffic: %q, want %q", got, "AB")
	}
	if len(snap.Segments) != 1 {
		t.Errorf("snapshot has %d segments, want 1", len(snap.Segments))
	}
	// And the live tap kept both writes.
	if got := string(tap.Conversation().Segments[0].Data); got != "ABCD" {
		t.Errorf("live recording = %q, want %q", got, "ABCD")
	}
}

// Concurrent snapshot use while the tap keeps recording must be
// race-clean (run under -race): parse and serialize snapshots in the
// reader while a writer streams segments through the tap.
func TestTapConcurrentParse(t *testing.T) {
	tap := attacker.NewTap(sinkConn{})
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		buf := bytes.Repeat([]byte{0x16}, 64)
		for {
			select {
			case <-stop:
				return
			default:
				tap.Write(buf)
			}
		}
	}()
	for i := 0; i < 200; i++ {
		c := tap.Conversation()
		blob := c.Save()
		if _, err := attacker.Load(blob); err != nil {
			t.Fatalf("snapshot %d failed to round-trip: %v", i, err)
		}
		_, _ = attacker.Parse(c) // not a TLS stream; must not race, may error
	}
	close(stop)
	wg.Wait()
}

// e2e: a capture of a ticket-resumed handshake decrypts via the
// OfferedTicket path. The resumed connection's issued ticket is sealed by
// the CURRENT epoch key; the attacker holds only the PREVIOUS epoch key —
// which opens the offered ticket, whose state carries the same master
// secret the resumed connection reuses.
func TestOfferedTicketDecryption(t *testing.T) {
	clock := simclock.NewManual(simclock.Epoch)
	root, err := pki.NewRootCA("Tap Test CA", pki.ECDSAP256, pki.DefaultRand)
	if err != nil {
		t.Fatal(err)
	}
	leaf, err := root.IssueLeaf([]string{"victim.test"}, pki.ECDSAP256,
		simclock.Epoch.AddDate(0, -1, 0), simclock.Epoch.AddDate(1, 0, 0), pki.DefaultRand)
	if err != nil {
		t.Fatal(err)
	}
	mgr := &ticket.Rotating{
		Seed: []byte("e2e-rotating"), Base: simclock.Epoch,
		Period: 14 * time.Hour, AcceptPrevious: 1, Format: ticket.FormatRFC5077,
	}
	scfg := &tlsserver.Config{Clock: clock, DefaultCert: leaf, Tickets: mgr}

	dial := func(ccfg *tlsclient.Config) (*tlsclient.Capture, *attacker.Conversation) {
		t.Helper()
		cli, srv := net.Pipe()
		done := make(chan struct{})
		go func() {
			defer close(done)
			tlsserver.Serve(srv, scfg)
		}()
		tap := attacker.NewTap(cli)
		cap, err := tlsclient.Handshake(tap, ccfg)
		if err != nil {
			t.Fatalf("handshake: %v", err)
		}
		cli.Close()
		<-done
		return cap, tap.Conversation()
	}

	// Connection 1, epoch 0: collect a ticket sealed by k0.
	appData := []byte("GET /inbox HTTP/1.1\r\nCookie: auth=topsecret\r\n\r\n")
	cap1, _ := dial(&tlsclient.Config{
		ServerName: "victim.test", Clock: clock, OfferTicket: true, AppData: appData,
	})
	if !cap1.TicketIssued || cap1.Session == nil {
		t.Fatal("first connection issued no ticket")
	}
	k0 := mgr.IssuingKey(clock.Now())

	// One epoch later the server resumes off the k0 ticket but reissues
	// under k1.
	clock.Advance(14 * time.Hour)
	cap2, conv := dial(&tlsclient.Config{
		ServerName: "victim.test", Clock: clock, OfferTicket: true, AppData: appData,
		Resume: cap1.Session, ResumeViaTicket: true,
	})
	if !cap2.ResumedViaTicket {
		t.Fatal("second connection did not resume via ticket")
	}

	rec, err := attacker.Parse(conv)
	if err != nil {
		t.Fatal(err)
	}
	if !rec.Resumed {
		t.Error("parse did not mark the capture as resumed")
	}
	if len(rec.OfferedTicket) == 0 || len(rec.IssuedTicket) == 0 {
		t.Fatal("capture missing offered or reissued ticket")
	}
	k1 := mgr.IssuingKey(clock.Now())
	if bytes.Equal(k0.Name, k1.Name) {
		t.Fatal("test setup: epochs share a key")
	}
	if k0.Open(rec.IssuedTicket) != nil {
		t.Fatal("test setup: previous key opens the reissued ticket")
	}

	// Only the previous epoch's key leaks — the issued ticket stays
	// sealed, so recovery must go through the offered ticket.
	master, err := rec.MasterFromSTEK(k0)
	if err != nil {
		t.Fatalf("MasterFromSTEK via offered ticket: %v", err)
	}
	msgs, err := rec.Decrypt(master)
	if err != nil {
		t.Fatal(err)
	}
	var clientPlain []byte
	for _, m := range msgs {
		if m.FromClient {
			clientPlain = append(clientPlain, m.Plain...)
		}
	}
	if !bytes.Contains(clientPlain, []byte("auth=topsecret")) {
		t.Errorf("decrypted client traffic %q missing the recorded secret", clientPlain)
	}

	// Replay accounting over the same capture: the leaked key decrypts it,
	// an unrelated key only bumps Attempted.
	cc := []attacker.CapturedConn{{Domain: "victim.test", Conv: conv, Rec: rec}}
	y := attacker.Replay(cc, []*ticket.STEK{k0})
	if y.Attempted != 1 || y.Connections != 1 || y.Domains != 1 || y.Bytes == 0 {
		t.Errorf("Replay with leaked key = %+v, want 1/1/1 with bytes", y)
	}
	y = attacker.Replay(cc, []*ticket.STEK{ticket.Derive([]byte("unrelated"), ticket.FormatRFC5077)})
	if y.Attempted != 1 || y.Connections != 0 || y.Domains != 0 || y.Bytes != 0 {
		t.Errorf("Replay with wrong key = %+v, want attempted only", y)
	}
}
