package study

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"tlsshortcuts/internal/cryptanalysis"
)

// TestWeakCryptoOffMatchesGolden is the inertness proof extended to the
// cryptanalysis layer: with WeakCrypto explicitly off (the default), the
// weak profiles are not seeded, the capture/crack/replay pass does not
// run, Dataset.Crypt stays nil (omitted from JSON), and the campaign
// reproduces the committed golden hash byte-identically.
func TestWeakCryptoOffMatchesGolden(t *testing.T) {
	if regenGolden() {
		t.Skip("golden being regenerated")
	}
	o := detOpts
	o.WeakCrypto = false
	raw, err := os.ReadFile(filepath.Join("testdata", "campaign_200x8_seed7.sha256"))
	if err != nil {
		t.Fatalf("read golden (regenerate with -regen-golden): %v", err)
	}
	if got, want := datasetHash(t, o), strings.TrimSpace(string(raw)); got != want {
		t.Fatalf("WeakCrypto=false campaign drifted from golden:\n  got  %s\n  want %s", got, want)
	}
}

// TestWeakCryptoCampaign runs the determinism campaign with the weak
// profiles enabled and checks every probe fires and the measured yield
// lands in the calibration band: Hebrok et al. passively decrypted 1.9%
// of the Tranco 100k, and the weak profile fractions are set to
// reproduce that rate within 2x on the trusted core.
func TestWeakCryptoCampaign(t *testing.T) {
	o := detOpts
	o.WeakCrypto = true
	ds, err := Run(o)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	c := ds.Crypt
	if c == nil {
		t.Fatal("WeakCrypto campaign produced no cryptanalysis findings")
	}

	// Probes.
	if len(c.Cracked) == 0 {
		t.Error("no weak STEKs cracked")
	}
	if shared := cryptanalysis.SharedKeyNames(c.KeyNames, ds.Operators); len(shared) == 0 {
		t.Error("no shared key names across operators (weakseed-cdn and sharedname-host share a seed)")
	}
	if reuse := cryptanalysis.KeystreamReuse(c.IVs, c.KeyNames); len(reuse) == 0 {
		t.Error("no keystream reuse detected (fixediv-cloud seals with a fixed IV)")
	}
	if len(c.WeakPrime) == 0 {
		t.Error("no weak FFDH primes observed (exportdh-legacy serves the export group)")
	}

	// Measured yield: actual decrypted traffic, not just weak-looking keys.
	y := c.Yield
	if y.Connections == 0 || y.Domains == 0 || y.Bytes == 0 {
		t.Fatalf("replay decrypted nothing: %+v", y)
	}
	if y.Attempted < y.Connections {
		t.Errorf("yield accounting broken: %+v", y)
	}
	for d := range c.Cracked {
		if _, ok := ds.Ranks[d]; !ok {
			t.Errorf("cracked domain %s not in the trusted core", d)
		}
	}

	// Calibration: decryptable fraction of the trusted core within 2x of
	// Hebrok's 1.9%.
	frac := float64(y.Domains) / float64(len(ds.TrustedCore))
	if frac < 0.019/2 || frac > 0.019*2 {
		t.Errorf("decryptable fraction %.4f (%d/%d) outside [%.4f, %.4f]",
			frac, y.Domains, len(ds.TrustedCore), 0.019/2, 0.019*2)
	}

	// The report renders the section, with the yield in it.
	out := BuildReport(ds).String()
	if !strings.Contains(out, "Cryptanalysis") {
		t.Error("report missing the cryptanalysis section")
	}
	if !strings.Contains(out, "replay yield") {
		t.Error("report missing the replay yield line")
	}
}

// TestWeakCryptoDeterminism pins the weak campaign to the same
// reproducibility bar as the baseline: the dataset hash is independent
// of worker count, and running it as shards and merging reproduces the
// monolithic bytes.
func TestWeakCryptoDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("runs four small campaigns")
	}
	o := detOpts
	o.WeakCrypto = true
	o.Workers = 3
	h3 := datasetHash(t, o)
	o.Workers = 13
	h13 := datasetHash(t, o)
	if h3 != h13 {
		t.Fatalf("weak campaign depends on worker count:\n  w3  %s\n  w13 %s", h3, h13)
	}
	o.Workers = detOpts.Workers
	if merged := shardedHash(t, o, 2); merged != h3 {
		t.Fatalf("merged 2-shard weak campaign differs from monolithic:\n  merged %s\n  mono   %s", merged, h3)
	}
}
