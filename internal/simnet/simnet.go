// Package simnet is the simulated Internet's plumbing: a registry of
// domains bound to SSL-terminator backends, a dialer that returns real
// net.Conn pipes (spawning the server side per connection), load-balancer
// fan-out without client affinity, and the AS/IP topology the
// cross-domain resumption probes walk.
package simnet

import (
	"errors"
	"io"
	"net"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"

	"tlsshortcuts/internal/faults"
	"tlsshortcuts/internal/perf"
	"tlsshortcuts/internal/telemetry"
	"tlsshortcuts/internal/tlsserver"
)

// Endpoint is one terminator backend.
type Endpoint struct {
	Config *tlsserver.Config
}

type binding struct {
	backends []*Endpoint
	as       int
	ips      []string
	// dialSeq is per-domain so the k-th connection to a domain always
	// lands on the same backend regardless of how dials to other
	// domains interleave — which keeps A-record jitter deterministic
	// for a deterministic probe schedule.
	dialSeq atomic.Uint64
}

// Net is the address space and dialer.
type Net struct {
	mu      sync.RWMutex
	domains map[string]*binding
	byAS    map[int][]string
	byIP    map[string][]string
	plan    *faults.Plan
	dials   atomic.Uint64
	tel     *telemetry.Registry
}

// New returns an empty network.
func New() *Net {
	return &Net{
		domains: make(map[string]*binding),
		byAS:    make(map[int][]string),
		byIP:    make(map[string][]string),
	}
}

// Register binds a domain to its AS, IPs, and backends.
func (n *Net) Register(domain string, as int, ips []string, backends ...*Endpoint) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.domains[domain] = &binding{backends: backends, as: as, ips: ips}
	n.byAS[as] = append(n.byAS[as], domain)
	for _, ip := range ips {
		n.byIP[ip] = append(n.byIP[ip], domain)
	}
}

// HasDomain reports whether the domain resolves.
func (n *Net) HasDomain(domain string) bool {
	n.mu.RLock()
	defer n.mu.RUnlock()
	_, ok := n.domains[domain]
	return ok
}

// Domains returns every registered name, sorted.
func (n *Net) Domains() []string {
	n.mu.RLock()
	defer n.mu.RUnlock()
	out := make([]string, 0, len(n.domains))
	for d := range n.domains {
		out = append(out, d)
	}
	sort.Strings(out)
	return out
}

// SetFaults installs (or, with nil, clears) the fault plan the dialer
// consults on every connection. With a nil plan the dial path is
// byte-identical to a fault-free network.
func (n *Net) SetFaults(p *faults.Plan) {
	n.mu.Lock()
	n.plan = p
	n.mu.Unlock()
}

// SetTelemetry installs (or, with nil, clears) the metrics registry the
// dialer reports dials, fault injections, and backend choices through.
// Telemetry observes, never perturbs: the registry changes no dial
// outcome, and nil restores the pre-instrumentation path.
func (n *Net) SetTelemetry(r *telemetry.Registry) {
	n.mu.Lock()
	n.tel = r
	n.mu.Unlock()
}

// Dial opens a connection to the domain. The backend is chosen without
// client affinity: successive dials may land on different terminators,
// exactly the balancer behavior that frustrates naive run-length metrics.
func (n *Net) Dial(domain string) (net.Conn, error) {
	return n.dial(domain, "", false)
}

// DialProbe is Dial carrying the probe's identity label. Under an active
// fault plan both the fault decision and the balancer choice key on
// (domain, label) instead of the shared per-domain dial sequence, so a
// campaign's faults replay identically for any worker count; with no plan
// the label is ignored and the path matches Dial exactly.
func (n *Net) DialProbe(domain, label string) (net.Conn, error) {
	return n.dial(domain, label, false)
}

// DialProbeStable is DialProbe with the balancer choice keyed on
// (domain, label) even when no fault plan is active. The daily scans
// deliberately ride the shared per-domain dial sequence (balancer
// non-affinity is part of what they measure), but a post-campaign pass
// like the cryptanalysis capture must land on the same backend whether
// the campaign ran monolithic or sharded — and the sequence value at
// that point differs between the two (a shard's domains receive
// cross-domain probe connections only from the shard's own initiators).
// The traffic plane dials exclusively through this path for the same
// reason: its visits must not consume the per-domain dial sequence the
// daily scans ride, or enabling traffic would change scanner-visible
// backend choices (TestStableDialsDoNotPerturbDialSequence pins this).
func (n *Net) DialProbeStable(domain, label string) (net.Conn, error) {
	return n.dial(domain, label, true)
}

func (n *Net) dial(domain, label string, stable bool) (net.Conn, error) {
	n.mu.RLock()
	b, ok := n.domains[domain]
	plan := n.plan
	tel := n.tel
	n.mu.RUnlock()
	if !ok || len(b.backends) == 0 {
		if tel != nil {
			tel.Counter("simnet/dial_errors").Inc()
		}
		return nil, &faults.DialError{Domain: domain, Reason: "no route"}
	}
	n.dials.Add(1)
	if tel != nil {
		tel.Counter("simnet/dials").Inc()
	}
	var idx int
	var seq uint64
	if plan.Active() && label != "" {
		idx = plan.Backend(domain, label, len(b.backends))
	} else if stable && label != "" {
		// Keyed like the fault-plan path: a pure function of the probe's
		// identity, independent of every other dial in the run.
		h := uint64(fnvOffset64)
		for i := 0; i < len(domain); i++ {
			h ^= uint64(domain[i])
			h *= fnvPrime64
		}
		h ^= '|'
		h *= fnvPrime64
		for i := 0; i < len(label); i++ {
			h ^= uint64(label[i])
			h *= fnvPrime64
		}
		idx = int(mix64(h) % uint64(len(b.backends)))
	} else {
		seq = b.dialSeq.Add(1)
		// Inline FNV-1a over domain || seq (little-endian), identical to
		// hashing through hash/fnv but without the hasher allocation or
		// the string-to-bytes conversion on every dial.
		h := uint64(fnvOffset64)
		for i := 0; i < len(domain); i++ {
			h ^= uint64(domain[i])
			h *= fnvPrime64
		}
		for i := 0; i < 8; i++ {
			h ^= uint64(byte(seq >> (8 * i)))
			h *= fnvPrime64
		}
		// FNV's low bits alternate for consecutive sequence numbers; run the
		// sum through a 64-bit finalizer so back-to-back dials pick
		// independently.
		idx = int(mix64(h) % uint64(len(b.backends)))
	}
	ep := b.backends[idx]
	if tel != nil {
		// The backend multiset per domain is worker-count-invariant (the
		// per-domain dial sequence or, under a plan, the probe label keys
		// the choice), so these counters are deterministic metrics.
		tel.Counter(backendCounterName(idx)).Inc()
	}
	if f := plan.Decide(domain, label, idx, seq); f.Kind != faults.None {
		if tel != nil {
			tel.Counter(telemetry.CounterFaultPrefix + f.Kind.String()).Inc()
		}
		switch f.Kind {
		case faults.Refuse:
			return nil, &faults.DialError{Domain: domain, Reason: "connection refused"}
		case faults.Flap:
			return nil, &faults.DialError{Domain: domain, Reason: "backend down"}
		case faults.Churn:
			return nil, &faults.DialError{Domain: domain, Reason: "no such host"}
		case faults.Stall:
			cli, srv := n.pipe()
			go func() {
				// Swallow the client's bytes so its writes complete, but
				// never answer: the client's read deadline must expire.
				// Exits when the client closes its end.
				_, _ = io.Copy(io.Discard, srv)
				_ = srv.Close()
			}()
			return cli, nil
		case faults.Reset:
			cli, srv := n.pipe()
			rc := &resetConn{Conn: srv, allow: f.AllowWrites}
			go func() {
				defer rc.Close()
				_ = tlsserver.Serve(rc, ep.Config)
			}()
			return cli, nil
		}
	}
	cli, srv := n.pipe()
	go func() {
		defer srv.Close()
		_ = tlsserver.Serve(srv, ep.Config)
	}()
	return cli, nil
}

func (n *Net) pipe() (net.Conn, net.Conn) {
	if perf.BufferedPipes() {
		return NewBufferedPipe()
	}
	return net.Pipe()
}

var errReset = errors.New("simnet: connection reset by peer")

// resetConn is the server side of a Reset-faulted connection: it lets a
// bounded number of TLS records through, then closes both directions so
// the client sees the handshake cut off mid-flight. The budget counts
// record frames inside the written bytes, not Write calls, so the
// client-visible cut point is independent of how the record layer
// batches records into writes (per-record or flight-coalesced).
type resetConn struct {
	net.Conn
	allow int
}

func (c *resetConn) Write(p []byte) (int, error) {
	off := 0
	for off < len(p) {
		if c.allow <= 0 {
			var n int
			if off > 0 {
				var err error
				n, err = c.Conn.Write(p[:off])
				if err != nil {
					return n, err
				}
			}
			_ = c.Conn.Close()
			return n, errReset
		}
		// One record frame: 5-byte header, big-endian length at [3:5].
		// A malformed tail counts as a single record.
		frame := len(p) - off
		if off+5 <= len(p) {
			if fl := 5 + int(p[off+3])<<8 + int(p[off+4]); fl <= len(p)-off {
				frame = fl
			}
		}
		c.allow--
		off += frame
	}
	return c.Conn.Write(p)
}

// DialCount returns the number of connections opened so far — the
// campaign benchmarks divide it by wall time for handshakes/sec.
func (n *Net) DialCount() uint64 { return n.dials.Load() }

// FNV-1a 64-bit parameters (hash/fnv's constants, inlined on the dial
// path).
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// backendCounterNames pre-renders the per-backend telemetry counter names
// for the small backend counts the population uses; dial is hot and a
// string concatenation per call is measurable.
var backendCounterNames = [8]string{
	"simnet/backend/0", "simnet/backend/1", "simnet/backend/2", "simnet/backend/3",
	"simnet/backend/4", "simnet/backend/5", "simnet/backend/6", "simnet/backend/7",
}

func backendCounterName(idx int) string {
	if idx >= 0 && idx < len(backendCounterNames) {
		return backendCounterNames[idx]
	}
	return "simnet/backend/" + strconv.Itoa(idx)
}

// mix64 is the splitmix64 finalizer.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// SameAS returns the other domains announced from the domain's AS,
// sorted (the scanner samples a prefix of a seeded shuffle).
func (n *Net) SameAS(domain string) []string {
	n.mu.RLock()
	defer n.mu.RUnlock()
	b, ok := n.domains[domain]
	if !ok {
		return nil
	}
	return others(n.byAS[b.as], domain)
}

// SameIP returns the other domains sharing any of the domain's IPs.
func (n *Net) SameIP(domain string) []string {
	n.mu.RLock()
	defer n.mu.RUnlock()
	b, ok := n.domains[domain]
	if !ok {
		return nil
	}
	seen := map[string]bool{domain: true}
	var out []string
	for _, ip := range b.ips {
		for _, d := range n.byIP[ip] {
			if !seen[d] {
				seen[d] = true
				out = append(out, d)
			}
		}
	}
	sort.Strings(out)
	return out
}

func others(list []string, self string) []string {
	out := make([]string, 0, len(list))
	for _, d := range list {
		if d != self {
			out = append(out, d)
		}
	}
	sort.Strings(out)
	return out
}
