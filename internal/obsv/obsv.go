// Package obsv is the campaign observability plane: an HTTP server any
// campaign (monolithic or one shard of many) attaches beside its
// pprof/expvar mux, a flight-recorder journal that records what the
// campaign did as a replayable JSONL event log, and the cross-shard
// correlation layer (peer pulling, keyed snapshot merge, journal merge)
// the tlsobserve CLI and aggregator build on.
//
// Endpoints:
//
//	/metrics    Prometheus text exposition of the telemetry registry
//	            (?format=json returns the raw telemetry.Snapshot)
//	/progress   JSON progress snapshot: day N/M, virtual date,
//	            handshakes/s, failure rate by error class, utilization
//	            (?stream=1 upgrades to an SSE stream of the same)
//	/journal    JSONL tail of the flight-recorder event log (?n=K)
//	/healthz    liveness: "ok"
//	/cluster    merged cross-shard view: per-peer progress plus a
//	            telemetry.MergeSnapshotsKeyed merge of all reachable
//	            shards (wall/ metrics kept separate per shard)
//	/cluster/metrics  the merged snapshot as Prometheus text
//
// The plane inherits telemetry's contract: it observes, never perturbs.
// Serving, journaling, and streaming draw no entropy and read no clock
// the measurement depends on, and the obsv suite re-runs the golden
// campaign with the full plane attached (server + journal + SSE
// subscriber) and requires the committed dataset hash byte-for-byte.
package obsv

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"strconv"
	"sync"
	"time"

	"tlsshortcuts/internal/telemetry"
)

// Config wires a Server to one campaign's signal sources.
type Config struct {
	// Registry is the campaign's telemetry registry (nil serves empty
	// metrics — an aggregator-only server).
	Registry *telemetry.Registry
	// Days is the campaign length, for "day N/M" progress.
	Days int
	// ListSize is the campaign's domain-list size (progress metadata).
	ListSize int
	// Shard is the campaign's "i/N" shard coordinate, "" if monolithic.
	Shard string
	// Workers is the scan pool size, the utilization denominator.
	Workers int
	// Journal, when non-nil, backs /journal and the virtual-date field
	// of /progress.
	Journal *Journal
	// Peers are base URLs ("http://host:port") of sibling shards' obsv
	// servers; /cluster pulls and merges them.
	Peers []string
	// Interval is the progress sampling/broadcast period for the SSE
	// stream (default 1s).
	Interval time.Duration
	// Logf, when non-nil, receives server lifecycle messages.
	Logf func(format string, args ...interface{})
}

// Progress is one point-in-time view of campaign health — the payload
// of /progress and of every SSE event.
type Progress struct {
	Day         uint64 `json:"day"`
	Days        int    `json:"days,omitempty"`
	ListSize    int    `json:"list_size,omitempty"`
	Shard       string `json:"shard,omitempty"`
	Workers     int    `json:"workers,omitempty"`
	VirtualDate string `json:"virtual_date,omitempty"`

	Probes           uint64  `json:"probes"`
	ProbeFailures    uint64  `json:"probe_failures"`
	FailureRate      float64 `json:"failure_rate"` // cumulative, fraction of probes
	Handshakes       uint64  `json:"handshakes"`
	HandshakesPerSec float64 `json:"handshakes_per_sec"` // instantaneous, since last sample
	Retries          uint64  `json:"retries"`
	STEKRotations    uint64  `json:"stek_rotations"`
	// Utilization is mean per-worker busy fraction since the last
	// sample, in [0,1].
	Utilization float64 `json:"utilization"`

	// Traffic-plane counters (zero and omitted unless the campaign runs
	// simulated user traffic): cumulative visits, resumed sessions, and
	// the instantaneous session rate since the last sample.
	TrafficVisits  uint64  `json:"traffic_visits,omitempty"`
	TrafficResumed uint64  `json:"traffic_resumed,omitempty"`
	SessionsPerSec float64 `json:"sessions_per_sec,omitempty"`
	// FailuresByClass maps faults.ErrClass -> cumulative failed probes.
	FailuresByClass map[string]uint64 `json:"failures_by_class,omitempty"`

	// SSE stream accounting: attached subscribers and lifetime events
	// dropped on slow ones.
	SSESubscribers int    `json:"sse_subscribers"`
	SSEDropped     uint64 `json:"sse_dropped"`
}

// Server is the observability plane's HTTP face. Create with
// NewServer, optionally Start the SSE sampler, and mount it anywhere
// (it implements http.Handler); Close stops the sampler and closes
// every stream.
type Server struct {
	cfg Config
	mux *http.ServeMux
	bc  *broadcaster

	// now is the sampling clock, injectable so tests can force
	// degenerate (zero wall-delta) sample pairs.
	now func() time.Time

	mu         sync.Mutex
	prevTime   time.Time
	prevHS     uint64
	prevBusy   uint64
	prevVisits uint64
	started    bool
	done       chan struct{}
	samplerEnd sync.WaitGroup
}

// NewServer builds the plane over cfg.
func NewServer(cfg Config) *Server {
	if cfg.Interval <= 0 {
		cfg.Interval = time.Second
	}
	s := &Server{cfg: cfg, bc: newBroadcaster(), done: make(chan struct{}), now: time.Now}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/progress", s.handleProgress)
	mux.HandleFunc("/journal", s.handleJournal)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/cluster", s.handleCluster)
	mux.HandleFunc("/cluster/metrics", s.handleClusterMetrics)
	s.mux = mux
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// Start launches the progress sampler that feeds SSE subscribers. Safe
// to skip for handler-only uses (/metrics, /healthz on a simweb).
func (s *Server) Start() {
	s.mu.Lock()
	if s.started {
		s.mu.Unlock()
		return
	}
	s.started = true
	s.mu.Unlock()
	s.samplerEnd.Add(1)
	go func() {
		defer s.samplerEnd.Done()
		tick := time.NewTicker(s.cfg.Interval)
		defer tick.Stop()
		for {
			select {
			case <-s.done:
				return
			case <-tick.C:
				p := s.progress()
				if b, err := json.Marshal(p); err == nil {
					s.bc.publish(b)
				}
			}
		}
	}()
}

// Close stops the sampler. Attached SSE handlers return on their
// request contexts; in-flight requests are unaffected.
func (s *Server) Close() {
	s.mu.Lock()
	select {
	case <-s.done:
	default:
		close(s.done)
	}
	s.mu.Unlock()
	s.samplerEnd.Wait()
}

// progress computes the current Progress, deriving instantaneous rates
// from the previous call's sample.
func (s *Server) progress() Progress {
	snap := s.cfg.Registry.Snapshot()
	now := s.now()
	p := Progress{
		Day:             snap.Counters[telemetry.CounterDaysCompleted],
		Days:            s.cfg.Days,
		ListSize:        s.cfg.ListSize,
		Shard:           s.cfg.Shard,
		Workers:         s.cfg.Workers,
		Probes:          snap.Counters[telemetry.CounterProbes],
		ProbeFailures:   snap.Counters[telemetry.CounterProbeFailures],
		Handshakes:      snap.Counters[telemetry.CounterHandshakesStarted],
		Retries:         snap.Counters[telemetry.CounterRetries],
		STEKRotations:   snap.Counters[telemetry.CounterSTEKRotations],
		TrafficVisits:   snap.Counters[telemetry.CounterTrafficVisits],
		TrafficResumed:  snap.Counters[telemetry.CounterTrafficResumed],
		FailuresByClass: snap.PrefixCounters(telemetry.CounterErrorPrefix),
	}
	if p.Probes > 0 {
		p.FailureRate = float64(p.ProbeFailures) / float64(p.Probes)
	}
	if j := s.cfg.Journal; j != nil {
		tail := j.Tail(tailSize)
		for i := len(tail) - 1; i >= 0; i-- {
			if tail[i].VirtualDate != "" {
				p.VirtualDate = tail[i].VirtualDate
				break
			}
		}
	}
	busy := snap.Counters[telemetry.CounterBusyNanos]
	s.mu.Lock()
	if !s.prevTime.IsZero() {
		// Zero wall delta (a clock step, a coarse timer, a test's frozen
		// clock) and counter rollback (a registry swap) both occur in
		// practice: rates stay 0 rather than dividing by zero or
		// wrapping a uint64 subtraction.
		dt := now.Sub(s.prevTime).Seconds()
		if dt > 0 {
			p.HandshakesPerSec = float64(counterDelta(p.Handshakes, s.prevHS)) / dt
			p.SessionsPerSec = float64(counterDelta(p.TrafficVisits, s.prevVisits)) / dt
			if s.cfg.Workers > 0 {
				p.Utilization = float64(counterDelta(busy, s.prevBusy)) / (dt * 1e9 * float64(s.cfg.Workers))
			}
		}
	}
	s.prevTime, s.prevHS, s.prevBusy, s.prevVisits = now, p.Handshakes, busy, p.TrafficVisits
	s.mu.Unlock()
	published, dropped, subs := s.bc.counts()
	_ = published
	p.SSESubscribers = subs
	p.SSEDropped = dropped
	// A non-finite float is not JSON-encodable: it would 500 /progress
	// and silently drop SSE events. No rate may leave here NaN or Inf.
	p.FailureRate = finite(p.FailureRate)
	p.HandshakesPerSec = finite(p.HandshakesPerSec)
	p.SessionsPerSec = finite(p.SessionsPerSec)
	p.Utilization = finite(p.Utilization)
	return p
}

// counterDelta returns cur-prev, clamping rollbacks to zero instead of
// wrapping the unsigned subtraction into an enormous rate.
func counterDelta(cur, prev uint64) uint64 {
	if cur < prev {
		return 0
	}
	return cur - prev
}

// finite maps NaN and ±Inf to 0.
func finite(f float64) float64 {
	if math.IsNaN(f) || math.IsInf(f, 0) {
		return 0
	}
	return f
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	snap := s.cfg.Registry.Snapshot()
	if r.URL.Query().Get("format") == "json" {
		w.Header().Set("Content-Type", "application/json")
		if err := json.NewEncoder(w).Encode(snap); err != nil && s.cfg.Logf != nil {
			s.cfg.Logf("obsv: /metrics encode: %v", err)
		}
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	WriteProm(w, snap)
	published, dropped, subs := s.bc.counts()
	fmt.Fprintf(w, "# TYPE tls_obsv_sse_subscribers gauge\ntls_obsv_sse_subscribers %d\n", subs)
	fmt.Fprintf(w, "# TYPE tls_obsv_sse_published_total counter\ntls_obsv_sse_published_total %d\n", published)
	fmt.Fprintf(w, "# TYPE tls_obsv_sse_dropped_total counter\ntls_obsv_sse_dropped_total %d\n", dropped)
}

func (s *Server) handleProgress(w http.ResponseWriter, r *http.Request) {
	if r.URL.Query().Get("stream") == "" {
		w.Header().Set("Content-Type", "application/json")
		if err := json.NewEncoder(w).Encode(s.progress()); err != nil && s.cfg.Logf != nil {
			s.cfg.Logf("obsv: /progress encode: %v", err)
		}
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusNotImplemented)
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")
	sub := s.bc.subscribe(16)
	defer s.bc.unsubscribe(sub)
	// Immediate snapshot so a fresh subscriber sees state before the
	// next tick; then the broadcast feed until disconnect or shutdown.
	if b, err := json.Marshal(s.progress()); err == nil {
		fmt.Fprintf(w, "data: %s\n\n", b)
		flusher.Flush()
	}
	for {
		select {
		case <-r.Context().Done():
			return
		case <-s.done:
			return
		case msg := <-sub.ch:
			if _, err := fmt.Fprintf(w, "data: %s\n\n", msg); err != nil {
				return
			}
			flusher.Flush()
		}
	}
}

func (s *Server) handleJournal(w http.ResponseWriter, r *http.Request) {
	if s.cfg.Journal == nil {
		http.Error(w, "no journal attached", http.StatusNotFound)
		return
	}
	n := 32
	if q := r.URL.Query().Get("n"); q != "" {
		if v, err := strconv.Atoi(q); err == nil && v > 0 {
			n = v
		}
	}
	w.Header().Set("Content-Type", "application/jsonl")
	enc := json.NewEncoder(w)
	for _, ev := range s.cfg.Journal.Tail(n) {
		if err := enc.Encode(ev); err != nil {
			return
		}
	}
}

// ClusterView is /cluster's payload: every reachable shard's progress
// keyed by its shard coordinate (or peer URL when anonymous), plus the
// keyed snapshot merge across them all.
type ClusterView struct {
	// Shards maps shard key -> its latest progress.
	Shards map[string]Progress `json:"shards"`
	// Unreachable lists peers that failed to answer, with the error.
	Unreachable map[string]string `json:"unreachable,omitempty"`
	// Merged is the cross-shard telemetry merge: deterministic metrics
	// summed, wall/ metrics kept per shard under wall/<key>/.
	Merged *telemetry.Snapshot `json:"merged"`
}

// cluster assembles the merged cross-shard view by pulling every peer's
// /metrics?format=json and /progress, plus the local registry.
func (s *Server) cluster(ctx context.Context) ClusterView {
	view := ClusterView{Shards: map[string]Progress{}}
	snaps := map[string]*telemetry.Snapshot{}
	if s.cfg.Registry != nil {
		key := s.cfg.Shard
		if key == "" {
			key = "local"
		}
		snaps[key] = s.cfg.Registry.Snapshot()
		view.Shards[key] = s.progress()
	}
	for i, peer := range s.cfg.Peers {
		c := NewClient(peer)
		prog, perr := c.Progress(ctx)
		snap, serr := c.Snapshot(ctx)
		if perr != nil || serr != nil {
			err := perr
			if err == nil {
				err = serr
			}
			if view.Unreachable == nil {
				view.Unreachable = map[string]string{}
			}
			view.Unreachable[peer] = err.Error()
			continue
		}
		key := prog.Shard
		if key == "" {
			key = fmt.Sprintf("peer%d(%s)", i, peer)
		}
		view.Shards[key] = prog
		snaps[key] = snap
	}
	view.Merged = telemetry.MergeSnapshotsKeyed(snaps)
	return view
}

func (s *Server) handleCluster(w http.ResponseWriter, r *http.Request) {
	ctx, cancel := context.WithTimeout(r.Context(), 5*time.Second)
	defer cancel()
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(s.cluster(ctx)); err != nil && s.cfg.Logf != nil {
		s.cfg.Logf("obsv: /cluster encode: %v", err)
	}
}

func (s *Server) handleClusterMetrics(w http.ResponseWriter, r *http.Request) {
	ctx, cancel := context.WithTimeout(r.Context(), 5*time.Second)
	defer cancel()
	view := s.cluster(ctx)
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	WriteProm(w, view.Merged)
}
