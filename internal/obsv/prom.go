package obsv

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"tlsshortcuts/internal/telemetry"
)

// WriteProm renders a telemetry snapshot in the Prometheus text
// exposition format (version 0.0.4). Mapping:
//
//   - counter "scanner/probes"        -> tls_scanner_probes_total
//   - counter "wall/scanner/busy_ns"  -> tls_scanner_busy_ns_total{wall="true"}
//   - histogram "scanner/vlatency/X"  -> tls_scanner_vlatency_X_seconds{...}
//     with cumulative _bucket{le=...} lines in seconds, _sum, _count
//
// Metrics under the wall/ prefix keep their base name but are labeled
// wall="true": they are wall-clock- or scheduling-dependent and must
// never be compared across runs the way the deterministic series can
// be. Output is sorted by metric name, so it is stable for a snapshot.
func WriteProm(w io.Writer, s *telemetry.Snapshot) {
	if s == nil {
		return
	}
	names := make([]string, 0, len(s.Counters))
	for name := range s.Counters {
		names = append(names, name)
	}
	sort.Strings(names)
	typed := map[string]bool{}
	for _, name := range names {
		metric, labels := promName(name)
		metric += "_total"
		if !typed[metric] {
			fmt.Fprintf(w, "# TYPE %s counter\n", metric)
			typed[metric] = true
		}
		fmt.Fprintf(w, "%s%s %d\n", metric, labels, s.Counters[name])
	}

	names = names[:0]
	for name := range s.Histograms {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		h := s.Histograms[name]
		metric, labels := promName(name)
		metric += "_seconds"
		if !typed[metric] {
			fmt.Fprintf(w, "# TYPE %s histogram\n", metric)
			typed[metric] = true
		}
		var cum uint64
		for _, b := range h.Buckets {
			if b.LE < 0 {
				continue // overflow lands in +Inf below
			}
			cum += b.N
			fmt.Fprintf(w, "%s_bucket%s %d\n", metric, promLabels(labels, "le", formatSeconds(b.LE.Seconds())), cum)
		}
		fmt.Fprintf(w, "%s_bucket%s %d\n", metric, promLabels(labels, "le", "+Inf"), h.Count)
		fmt.Fprintf(w, "%s_sum%s %s\n", metric, labels, formatSeconds(h.Sum.Seconds()))
		fmt.Fprintf(w, "%s_count%s %d\n", metric, labels, h.Count)
	}
}

// promName sanitizes a registry metric name into a Prometheus metric
// name plus a label block ({wall="true"} for the wall/ subtree, empty
// otherwise).
func promName(name string) (metric, labels string) {
	if rest, ok := strings.CutPrefix(name, telemetry.WallPrefix); ok {
		return "tls_" + sanitize(rest), `{wall="true"}`
	}
	return "tls_" + sanitize(name), ""
}

// promLabels appends one more label to an existing (possibly empty)
// label block.
func promLabels(labels, key, val string) string {
	extra := key + `="` + val + `"`
	if labels == "" {
		return "{" + extra + "}"
	}
	return labels[:len(labels)-1] + "," + extra + "}"
}

// sanitize maps a registry name onto the Prometheus name alphabet:
// every byte outside [a-zA-Z0-9_] becomes '_'.
func sanitize(name string) string {
	var b strings.Builder
	b.Grow(len(name))
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '_':
			b.WriteByte(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// formatSeconds renders a float without trailing-zero noise ("0.25",
// "1e-06"), matching the upper-bound ladder exactly across runs.
func formatSeconds(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
