// Package prf implements the TLS 1.2 pseudo-random function (RFC 5246
// §5, P_SHA256 only) and the standard key derivations built on it.
package prf

import (
	"crypto/hmac"
	"crypto/sha256"
	"hash"
)

// phash expands P_SHA256 under an already-keyed HMAC. One instance is
// reset between MACs instead of re-keying per block: hmac.New hashes the
// key into both pads every call, which tripled the hashing work for the
// three MACs per output block.
func phash(h hash.Hash, seed []byte, n int) []byte {
	out := make([]byte, 0, n)
	var a [sha256.Size]byte
	h.Reset()
	h.Write(seed)
	h.Sum(a[:0]) // A(1)
	for len(out) < n {
		h.Reset()
		h.Write(a[:])
		h.Write(seed)
		out = h.Sum(out)
		// A(i+1) = HMAC(A(i)); Write copies a into the hash state, so
		// summing back into a is safe.
		h.Reset()
		h.Write(a[:])
		h.Sum(a[:0])
	}
	return out[:n]
}

// PHash is P_SHA256(secret, seed) expanded to n bytes.
func PHash(secret, seed []byte, n int) []byte {
	return phash(hmac.New(sha256.New, secret), seed, n)
}

// PRF is the TLS 1.2 PRF: P_SHA256(secret, label || seed).
func PRF(secret []byte, label string, seed []byte, n int) []byte {
	ls := make([]byte, 0, len(label)+len(seed))
	ls = append(ls, label...)
	ls = append(ls, seed...)
	return PHash(secret, ls, n)
}

// Expander amortizes the HMAC keying across the several PRF calls a
// handshake makes under one secret (key expansion plus two Finished
// hashes): keying HMAC-SHA256 costs two compression rounds, so reusing
// one keyed instance drops a third of the per-connection PRF hashing.
type Expander struct {
	mac hash.Hash
	ls  []byte
}

// NewExpander returns an Expander keyed with secret.
func NewExpander(secret []byte) *Expander {
	return &Expander{mac: hmac.New(sha256.New, secret)}
}

// PRF is the TLS 1.2 PRF under the expander's secret.
func (e *Expander) PRF(label string, seed []byte, n int) []byte {
	e.ls = append(e.ls[:0], label...)
	e.ls = append(e.ls, seed...)
	return phash(e.mac, e.ls, n)
}

// MasterSecret derives the 48-byte master secret from a premaster secret
// and the two hello randoms.
func MasterSecret(premaster, clientRandom, serverRandom []byte) []byte {
	seed := make([]byte, 0, 64)
	seed = append(seed, clientRandom...)
	seed = append(seed, serverRandom...)
	return PRF(premaster, "master secret", seed, 48)
}

// KeyBlock derives n bytes of key material (note the server-random-first
// seed order, per RFC 5246 §6.3).
func KeyBlock(master, serverRandom, clientRandom []byte, n int) []byte {
	seed := make([]byte, 0, 64)
	seed = append(seed, serverRandom...)
	seed = append(seed, clientRandom...)
	return PRF(master, "key expansion", seed, n)
}

// FinishedHash computes the 12-byte verify_data for a Finished message.
func FinishedHash(master []byte, label string, transcriptHash []byte) []byte {
	return PRF(master, label, transcriptHash, 12)
}
