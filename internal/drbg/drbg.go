// Package drbg is a tiny deterministic random byte stream (SHA-256 in
// counter mode) used to make the measurement campaign reproducible: the
// scanner derives per-connection client entropy from (seed, domain, probe
// label), and simulated terminators derive per-connection server entropy
// from (terminator seed, client random). Identical seed material yields an
// identical stream, so the same study.Options produce a byte-identical
// Dataset on every run.
//
// This is a simulation tool, not a cryptographic DRBG for production use.
package drbg

import (
	"crypto/sha256"
	"encoding/binary"
)

// Reader produces the deterministic stream block_i = SHA-256(key || i),
// where key = SHA-256 over the length-prefixed seed parts.
type Reader struct {
	key [32]byte
	ctr uint64
	buf [32]byte
	off int
}

// New derives a stream from the given seed parts. Parts are
// length-prefixed before hashing so ("ab","c") and ("a","bc") differ.
func New(parts ...[]byte) *Reader {
	h := sha256.New()
	var l [8]byte
	for _, p := range parts {
		binary.BigEndian.PutUint64(l[:], uint64(len(p)))
		h.Write(l[:])
		h.Write(p)
	}
	r := &Reader{off: 32} // empty buffer: first Read derives block 0
	h.Sum(r.key[:0])
	return r
}

// NewString is New over string parts.
func NewString(parts ...string) *Reader {
	bs := make([][]byte, len(parts))
	for i, p := range parts {
		bs[i] = []byte(p)
	}
	return New(bs...)
}

// appendPart appends one length-prefixed seed part.
func appendPart(b, p []byte) []byte {
	b = binary.BigEndian.AppendUint64(b, uint64(len(p)))
	return append(b, p...)
}

// NewParts derives the stream for (p0, s1, s2), byte-identical to
// New(p0, []byte(s1), []byte(s2)). This fixed-arity form is the
// scanner's per-probe hot path: it skips the variadic slice, the two
// string conversions, and the streaming hash state.
func NewParts(p0 []byte, s1, s2 string) *Reader {
	r := &Reader{off: 32}
	r.key = partsKey(p0, s1, s2)
	return r
}

func partsKey(p0 []byte, s1, s2 string) [32]byte {
	n := 24 + len(p0) + len(s1) + len(s2)
	var arr [192]byte
	var b []byte
	if n <= len(arr) {
		b = arr[:0]
	} else {
		b = make([]byte, 0, n)
	}
	b = appendPart(b, p0)
	b = binary.BigEndian.AppendUint64(b, uint64(len(s1)))
	b = append(b, s1...)
	b = binary.BigEndian.AppendUint64(b, uint64(len(s2)))
	b = append(b, s2...)
	return sha256.Sum256(b)
}

// Reseed re-keys the reader in place from two seed parts, equivalent to
// replacing it with New(p0, p1). Terminators keep one Reader per pooled
// connection and reseed it per ClientHello instead of allocating.
func (r *Reader) Reseed(p0, p1 []byte) {
	n := 16 + len(p0) + len(p1)
	var arr [192]byte
	var b []byte
	if n <= len(arr) {
		b = arr[:0]
	} else {
		b = make([]byte, 0, n)
	}
	b = appendPart(b, p0)
	b = appendPart(b, p1)
	r.key = sha256.Sum256(b)
	r.ctr = 0
	r.off = 32
}

// ReseedParts re-keys the reader in place, equivalent to replacing it
// with NewParts(p0, s1, s2). The scanner keeps one Reader per worker
// arena and reseeds it per probe instead of allocating.
func (r *Reader) ReseedParts(p0 []byte, s1, s2 string) {
	r.key = partsKey(p0, s1, s2)
	r.ctr = 0
	r.off = 32
}

// Read fills p from the stream. It never fails.
func (r *Reader) Read(p []byte) (int, error) {
	n := len(p)
	for len(p) > 0 {
		if r.off == len(r.buf) {
			var blk [40]byte
			copy(blk[:32], r.key[:])
			binary.BigEndian.PutUint64(blk[32:], r.ctr)
			r.ctr++
			r.buf = sha256.Sum256(blk[:])
			r.off = 0
		}
		c := copy(p, r.buf[r.off:])
		r.off += c
		p = p[c:]
	}
	return n, nil
}
