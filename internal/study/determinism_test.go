package study

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"tlsshortcuts/internal/perf"
)

var regen = flag.Bool("regen-golden", false, "rewrite the golden dataset hash")

func regenGolden() bool { return *regen }

// determinism campaign: small enough to run three times in a test, large
// enough to exercise every scan type, resumption path, and cache.
var detOpts = Options{ListSize: 200, Days: 8, Seed: 7, Workers: 8}

func datasetHash(t *testing.T, o Options) string {
	t.Helper()
	ds, err := Run(o)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	b, err := json.Marshal(ds)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	h := sha256.Sum256(b)
	return hex.EncodeToString(h[:])
}

// TestCampaignDeterminism runs the campaign twice and checks both runs
// against each other and against the golden hash checked into testdata.
// A golden mismatch means a change perturbed measured results — if the
// change is intentional, regenerate with:
//
//	go test ./internal/study -run TestCampaignDeterminism -regen-golden
func TestCampaignDeterminism(t *testing.T) {
	h1 := datasetHash(t, detOpts)
	h2 := datasetHash(t, detOpts)
	if h1 != h2 {
		t.Fatalf("same options, different datasets:\n  run1 %s\n  run2 %s", h1, h2)
	}
	golden := filepath.Join("testdata", "campaign_200x8_seed7.sha256")
	if regenGolden() {
		if err := os.WriteFile(golden, []byte(h1+"\n"), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("regenerated %s", golden)
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (regenerate with -regen-golden): %v", err)
	}
	if got := strings.TrimSpace(string(want)); got != h1 {
		t.Fatalf("dataset drifted from golden:\n  got  %s\n  want %s", h1, got)
	}
}

// TestPerfLayersObservationallyInert disables every performance layer —
// caches, client key reuse, buffered transport, SKE-and-disconnect
// probes, report memoization — and checks the slow engine produces the
// byte-identical dataset. This is the property the ISSUE demands:
// caching may never perturb a measurement.
func TestPerfLayersObservationallyInert(t *testing.T) {
	if testing.Short() {
		t.Skip("runs three small campaigns")
	}
	fast := datasetHash(t, detOpts)

	perf.SetCryptoCaches(false)
	perf.SetClientKexReuse(false)
	perf.SetBufferedPipes(false)
	perf.SetReportMemoized(false)
	perf.SetKexOnlyProbes(false)
	defer func() {
		perf.SetCryptoCaches(true)
		perf.SetClientKexReuse(true)
		perf.SetBufferedPipes(true)
		perf.SetReportMemoized(true)
		perf.SetKexOnlyProbes(true)
	}()

	slow := datasetHash(t, detOpts)
	if fast != slow {
		t.Fatalf("perf layers perturb the dataset:\n  fast %s\n  slow %s", fast, slow)
	}
}
