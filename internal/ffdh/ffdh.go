// Package ffdh implements finite-field Diffie-Hellman for the DHE key
// exchange. The simulated population uses a deterministic 512-bit group by
// default (DESIGN.md: exponent reuse/longevity does not depend on group
// size); the group is derived once, reproducibly, from a fixed seed.
package ffdh

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"math/big"
	"sync"
)

// Group is a DH group (prime modulus and generator).
type Group struct {
	P *big.Int
	G *big.Int

	paramOnce sync.Once
	pBytes    []byte
	gBytes    []byte
}

// ParamBytes returns the big-endian encodings of P and G, computed once
// per group — the server key-exchange message carries them on every full
// handshake. Callers must not modify the returned slices.
func (g *Group) ParamBytes() (p, gen []byte) {
	g.paramOnce.Do(func() {
		g.pBytes = g.P.Bytes()
		g.gBytes = g.G.Bytes()
	})
	return g.pBytes, g.gBytes
}

var (
	testOnce  sync.Once
	testGroup *Group
)

// TestGroup512 returns the deterministic 512-bit group used by the
// simulated population. It is generated once per process from a fixed seed
// stream, so every run of every binary agrees on the parameters.
func TestGroup512() *Group {
	testOnce.Do(func() {
		testGroup = &Group{P: derivePrime("tlsshortcuts-ffdh-512", 512), G: big.NewInt(2)}
	})
	return testGroup
}

var (
	exportOnce  sync.Once
	exportGroup *Group
)

// ExportGroup512 returns the deterministic "export-grade" 512-bit group
// used by the weak-crypto population profiles. It stands in for the
// small set of widely shared export primes of the Logjam attack: every
// domain configured with it serves the same modulus, so one
// precomputation amortizes across all of them. It is distinct from
// TestGroup512 (the baseline group), which models parameter *reuse*
// without being in any attacker's known-weak registry.
func ExportGroup512() *Group {
	exportOnce.Do(func() {
		exportGroup = &Group{P: derivePrime("tlsshortcuts-ffdh-export-512", 512), G: big.NewInt(2)}
	})
	return exportGroup
}

// derivePrime expands seed||counter through SHA-256 until the candidate
// (top two bits and low bit forced) passes Miller-Rabin.
func derivePrime(seed string, bits int) *big.Int {
	buf := make([]byte, bits/8)
	for ctr := uint64(0); ; ctr++ {
		for off := 0; off < len(buf); off += sha256.Size {
			h := sha256.New()
			h.Write([]byte(seed))
			var c [16]byte
			binary.BigEndian.PutUint64(c[:8], ctr)
			binary.BigEndian.PutUint64(c[8:], uint64(off))
			h.Write(c[:])
			copy(buf[off:], h.Sum(nil))
		}
		buf[0] |= 0xC0
		buf[len(buf)-1] |= 1
		p := new(big.Int).SetBytes(buf)
		if p.ProbablyPrime(20) {
			return p
		}
	}
}

// PrivateFromSeed derives a deterministic private exponent from arbitrary
// seed material — the mechanism behind epoch-based KEX value reuse.
func (g *Group) PrivateFromSeed(seed []byte) *big.Int {
	h1 := sha256.Sum256(append([]byte("ffdh-priv-1:"), seed...))
	h2 := sha256.Sum256(append([]byte("ffdh-priv-2:"), seed...))
	x := new(big.Int).SetBytes(append(h1[:], h2[:]...))
	// Clamp into [2, P-2].
	x.Mod(x, new(big.Int).Sub(g.P, big.NewInt(3)))
	return x.Add(x, big.NewInt(2))
}

// Public computes g^x mod p.
func (g *Group) Public(x *big.Int) *big.Int {
	return new(big.Int).Exp(g.G, x, g.P)
}

// Shared computes peer^x mod p and returns it left-padded to the modulus
// length (TLS strips leading zeros of the premaster; we keep the full
// width for determinism and strip at the call site if needed).
func (g *Group) Shared(x, peer *big.Int) ([]byte, error) {
	if peer.Sign() <= 0 || peer.Cmp(g.P) >= 0 {
		return nil, fmt.Errorf("ffdh: peer value out of range")
	}
	s := new(big.Int).Exp(peer, x, g.P)
	return s.Bytes(), nil
}

// Bytes returns v left-padded to the group's modulus width.
func (g *Group) Bytes(v *big.Int) []byte {
	out := make([]byte, (g.P.BitLen()+7)/8)
	v.FillBytes(out)
	return out
}
