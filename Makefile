GO ?= go

.PHONY: build test race bench bench-campaign fmt

build:
	$(GO) build ./...

test:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then echo "gofmt needed on:"; echo "$$out"; exit 1; fi
	$(GO) vet ./...
	$(GO) test -short ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -run=NONE -bench=. -benchtime=1x ./...

# Full-scale campaign benchmark (1000 domains x 44 days, 16 workers);
# refreshes the committed BENCH_campaign.json trajectory point.
bench-campaign:
	BENCH_CAMPAIGN_FULL=1 BENCH_CAMPAIGN_OUT=BENCH_campaign.json \
		$(GO) test -run=NONE -bench=CampaignE2E -benchtime=1x .

fmt:
	gofmt -l -w .
