package obsv

import (
	"encoding/json"
	"math"
	"strings"
	"testing"
	"time"

	"tlsshortcuts/internal/telemetry"
)

// TestProgressZeroWallDelta forces two progress samples at the SAME
// wall instant — the degenerate pair a clock step or coarse timer can
// produce — and checks every derived rate stays finite and the payload
// still marshals (a NaN/Inf would 500 /progress and silently drop SSE
// events).
func TestProgressZeroWallDelta(t *testing.T) {
	reg := telemetry.NewRegistry()
	reg.Counter(telemetry.CounterHandshakesStarted).Add(100)
	reg.Counter(telemetry.CounterBusyNanos).Add(5e9)
	reg.Counter(telemetry.CounterTrafficVisits).Add(40)

	s := NewServer(Config{Registry: reg, Workers: 8})
	frozen := time.Unix(1700000000, 0)
	s.now = func() time.Time { return frozen }

	_ = s.progress() // establishes prev sample at the frozen instant
	reg.Counter(telemetry.CounterHandshakesStarted).Add(50)
	reg.Counter(telemetry.CounterTrafficVisits).Add(10)
	p := s.progress() // zero wall delta against the first sample

	for name, v := range map[string]float64{
		"handshakes_per_sec": p.HandshakesPerSec,
		"sessions_per_sec":   p.SessionsPerSec,
		"utilization":        p.Utilization,
		"failure_rate":       p.FailureRate,
	} {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Errorf("%s = %v on a zero wall-delta sample; must be finite", name, v)
		}
	}
	if p.HandshakesPerSec != 0 || p.SessionsPerSec != 0 || p.Utilization != 0 {
		t.Errorf("zero wall delta must yield zero rates, got hs=%v sess=%v util=%v",
			p.HandshakesPerSec, p.SessionsPerSec, p.Utilization)
	}
	if _, err := json.Marshal(p); err != nil {
		t.Fatalf("progress payload does not marshal: %v", err)
	}
}

// TestProgressCounterRollback swaps in lower counter values between
// samples (a registry swap mid-campaign) and checks the unsigned deltas
// clamp to zero instead of wrapping into astronomically large rates.
func TestProgressCounterRollback(t *testing.T) {
	reg := telemetry.NewRegistry()
	reg.Counter(telemetry.CounterHandshakesStarted).Add(1000)
	reg.Counter(telemetry.CounterTrafficVisits).Add(500)
	reg.Counter(telemetry.CounterBusyNanos).Add(9e9)

	s := NewServer(Config{Registry: reg, Workers: 4})
	base := time.Unix(1700000000, 0)
	calls := 0
	s.now = func() time.Time {
		calls++
		return base.Add(time.Duration(calls) * time.Second)
	}

	_ = s.progress()
	// Fresh registry with smaller counts: every delta is negative.
	s.cfg.Registry = telemetry.NewRegistry()
	s.cfg.Registry.Counter(telemetry.CounterHandshakesStarted).Add(10)
	p := s.progress()

	if p.HandshakesPerSec != 0 || p.SessionsPerSec != 0 || p.Utilization != 0 {
		t.Errorf("counter rollback must clamp rates to zero, got hs=%v sess=%v util=%v",
			p.HandshakesPerSec, p.SessionsPerSec, p.Utilization)
	}
}

// TestProgressTrafficFields checks the traffic counters surface in the
// payload and the session rate derives from the visit delta.
func TestProgressTrafficFields(t *testing.T) {
	reg := telemetry.NewRegistry()
	s := NewServer(Config{Registry: reg, Workers: 2})
	base := time.Unix(1700000000, 0)
	calls := 0
	s.now = func() time.Time {
		calls++
		return base.Add(time.Duration(calls) * time.Second)
	}

	_ = s.progress()
	reg.Counter(telemetry.CounterTrafficVisits).Add(30)
	reg.Counter(telemetry.CounterTrafficResumed).Add(12)
	p := s.progress()

	if p.TrafficVisits != 30 || p.TrafficResumed != 12 {
		t.Errorf("traffic counters = %d/%d, want 30/12", p.TrafficVisits, p.TrafficResumed)
	}
	if p.SessionsPerSec != 30 {
		t.Errorf("sessions_per_sec = %v, want 30 (30 visits over 1s)", p.SessionsPerSec)
	}
	b, err := json.Marshal(p)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"traffic_visits":30`, `"traffic_resumed":12`, `"sessions_per_sec":30`} {
		if !strings.Contains(string(b), want) {
			t.Errorf("progress JSON missing %s: %s", want, b)
		}
	}
}
