// End-to-end campaign benchmark: times study.Run itself (population
// build, every scan type, grouping) and reports handshake throughput.
// This is the BENCH_campaign.json trajectory point — run `make
// bench-campaign` to refresh the committed numbers at the full bench
// scale (1000 domains x 44 days).
package tlsshortcuts_test

import (
	"encoding/json"
	"os"
	"runtime"
	"testing"
	"time"

	"tlsshortcuts/internal/study"
	"tlsshortcuts/internal/telemetry"
	"tlsshortcuts/internal/traffic"
)

// benchCampaignSeedSeconds is the same campaign timed at the pre-perf-pass
// engine (commit 28f7512, full bench scale, Workers 16, one CPU): the
// baseline the >=2x acceptance bar is measured against.
const benchCampaignSeedSeconds = 101.75

func BenchmarkCampaignE2E(b *testing.B) {
	size, days := 300, 10
	if testing.Short() {
		size, days = 100, 4 // CI smoke: prints the number without the cost
	}
	if os.Getenv("BENCH_CAMPAIGN_FULL") != "" {
		size, days = 1000, 44
	}
	b.ReportAllocs()

	var dials uint64
	var elapsed time.Duration
	var ms0, ms1 runtime.MemStats
	// The benchmark runs with telemetry enabled — the registry is proven
	// observationally inert and the snapshot is what puts latency
	// quantiles and cache hit rates into BENCH_campaign.json.
	reg := telemetry.NewRegistry()
	runtime.GC()
	runtime.ReadMemStats(&ms0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		start := time.Now()
		ds, err := study.Run(study.Options{ListSize: size, Days: days, Seed: 3, Workers: 16, Telemetry: reg})
		if err != nil {
			b.Fatal(err)
		}
		elapsed += time.Since(start)
		dials += ds.Dials
	}
	b.StopTimer()
	runtime.ReadMemStats(&ms1)

	hsPerSec := float64(dials) / elapsed.Seconds()
	b.ReportMetric(hsPerSec, "handshakes/s")

	out := os.Getenv("BENCH_CAMPAIGN_OUT")
	if out == "" {
		return
	}

	// One traffic-enabled campaign, timed outside the benchmark loop: the
	// headline metrics keep their traffic-off meaning, and this run prices
	// the traffic plane as its own trajectory point (simulated sessions
	// completed per wall second, campaign running concurrently).
	trafficUsers := size / 2
	tStart := time.Now()
	tds, err := study.Run(study.Options{
		ListSize: size, Days: days, Seed: 3, Workers: 16,
		Traffic: &traffic.Options{Users: trafficUsers},
	})
	if err != nil {
		b.Fatal(err)
	}
	trafficSeconds := time.Since(tStart).Seconds()
	trafficSessionsPerSec := float64(tds.Traffic.Conns()) / trafficSeconds
	b.ReportMetric(trafficSessionsPerSec, "traffic-sessions/s")

	secPerOp := elapsed.Seconds() / float64(b.N)
	doc := map[string]interface{}{
		"benchmark":          "CampaignE2E",
		"list_size":          size,
		"days":               days,
		"workers":            16,
		"seed":               3,
		"iterations":         b.N,
		"seconds_per_op":     secPerOp,
		"ns_per_op":          int64(elapsed) / int64(b.N),
		"handshakes_per_op":  dials / uint64(b.N),
		"handshakes_per_sec": hsPerSec,
		"allocs_per_op":      (ms1.Mallocs - ms0.Mallocs) / uint64(b.N),
		"alloc_bytes_per_op": (ms1.TotalAlloc - ms0.TotalAlloc) / uint64(b.N),
		"telemetry":          benchTelemetry(reg.Snapshot(), uint64(b.N)),

		"traffic_users":            trafficUsers,
		"traffic_sessions_per_op":  tds.Traffic.Conns(),
		"traffic_sessions_per_sec": trafficSessionsPerSec,
	}
	if size == 1000 && days == 44 {
		doc["baseline_seed_seconds"] = benchCampaignSeedSeconds
		doc["speedup_vs_seed"] = benchCampaignSeedSeconds / secPerOp
		doc["baseline_note"] = "seed engine (commit 28f7512) timed with the identical options on the same single-CPU host"
	}
	enc, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		b.Fatal(err)
	}
	if err := os.WriteFile(out, append(enc, '\n'), 0o644); err != nil {
		b.Fatal(err)
	}
	b.Logf("wrote %s", out)
}

// benchTelemetry condenses the campaign registry into the bench doc:
// handshake latency quantiles, retry volume, and the hit rates of the
// three shortcut caches. Counter totals span all b.N iterations, so
// per-op values divide by n; rates are scale-free.
func benchTelemetry(s *telemetry.Snapshot, n uint64) map[string]interface{} {
	lat := s.MergeHistograms("wall/scanner/latency/")
	rate := func(num, den uint64) float64 {
		if den == 0 {
			return 0
		}
		return float64(num) / float64(den)
	}
	sessionHits := s.Counters["session/cache_hit"]
	keyexLookups := s.Counters["keyex/reuse_lookups"]
	ticketOK := s.Counters["ticket/open_ok"]
	return map[string]interface{}{
		"handshake_wall_p50_ns":  int64(lat.Quantile(0.50)),
		"handshake_wall_p99_ns":  int64(lat.Quantile(0.99)),
		"handshake_wall_max_ns":  int64(lat.Max),
		"handshake_wall_mean_ns": int64(lat.Mean()),
		"probes_per_op":          s.Counters["scanner/probes"] / n,
		"retries_per_op":         s.Counters["scanner/retries"] / n,
		"probe_failures_per_op":  s.Counters["scanner/probe_failures"] / n,
		"session_cache_hit_rate": rate(sessionHits, sessionHits+s.Counters["session/cache_stale"]),
		"ticket_open_ok_rate":    rate(ticketOK, ticketOK+s.Counters["ticket/open_miss"]),
		"keyex_cache_hit_rate":   rate(s.Counters["wall/keyex/cache_hit"], keyexLookups),
		"stek_rotations":         s.Counters["ticket/stek_rotations"] / n,
	}
}
