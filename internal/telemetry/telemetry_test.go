package telemetry

import (
	"bytes"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestNilReceiversAreInert pins the package contract: every instrument
// handed out by a nil registry — and the registry itself — must be a
// safe no-op, so call sites never need their own nil checks.
func TestNilReceiversAreInert(t *testing.T) {
	var r *Registry
	r.Counter("x").Inc()
	r.Counter("x").Add(7)
	r.Histogram("y").Observe(time.Second)
	if got := r.Value("x"); got != 0 {
		t.Fatalf("nil registry Value = %d, want 0", got)
	}
	s := r.Snapshot()
	if len(s.Counters) != 0 || len(s.Histograms) != 0 {
		t.Fatalf("nil registry snapshot not empty: %+v", s)
	}
	var c *Counter
	c.Inc()
	c.Add(3)
	if c.Value() != 0 {
		t.Fatal("nil counter holds a value")
	}
	var h *Histogram
	h.Observe(time.Minute)
	var snap *Snapshot
	if d := snap.Deterministic(); len(d.Counters) != 0 {
		t.Fatal("nil snapshot Deterministic not empty")
	}
	if out := snap.Render(); !strings.Contains(out, "no telemetry") {
		t.Fatalf("nil snapshot Render = %q", out)
	}
}

// TestConcurrentCountersAndHistograms exercises the atomic paths from
// many goroutines; run under -race this is the data-race proof, and the
// final totals prove no increment is lost.
func TestConcurrentCountersAndHistograms(t *testing.T) {
	r := NewRegistry()
	const goroutines = 16
	const perG = 2000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				r.Counter("shared").Inc()
				r.Counter("shared").Add(2)
				r.Histogram("lat").Observe(time.Duration(i%97) * time.Millisecond)
				// Mixed create-and-write on distinct names stresses the
				// registry's read/write lock upgrade path.
				r.Counter("per/" + string(rune('a'+g))).Inc()
			}
		}(g)
	}
	wg.Wait()

	if got, want := r.Value("shared"), uint64(goroutines*perG*3); got != want {
		t.Fatalf("shared counter = %d, want %d", got, want)
	}
	s := r.Snapshot()
	h := s.Histograms["lat"]
	if got, want := h.Count, uint64(goroutines*perG); got != want {
		t.Fatalf("histogram count = %d, want %d", got, want)
	}
	var bucketSum uint64
	for _, b := range h.Buckets {
		bucketSum += b.N
	}
	if bucketSum != h.Count {
		t.Fatalf("bucket sum %d != count %d", bucketSum, h.Count)
	}
	if h.Max != 96*time.Millisecond {
		t.Fatalf("histogram max = %v, want 96ms", h.Max)
	}
}

// TestSnapshotImmutability: a snapshot is a deep copy — registry writes
// after the snapshot must never show up in it.
func TestSnapshotImmutability(t *testing.T) {
	r := NewRegistry()
	r.Counter("c").Add(5)
	r.Histogram("h").Observe(10 * time.Millisecond)
	snap := r.Snapshot()

	r.Counter("c").Add(100)
	r.Counter("new").Inc()
	r.Histogram("h").Observe(time.Hour)
	r.Histogram("h2").Observe(time.Second)

	if got := snap.Counters["c"]; got != 5 {
		t.Fatalf("snapshot counter mutated: %d", got)
	}
	if _, ok := snap.Counters["new"]; ok {
		t.Fatal("counter created after snapshot leaked in")
	}
	h := snap.Histograms["h"]
	if h.Count != 1 || h.Max != 10*time.Millisecond {
		t.Fatalf("snapshot histogram mutated: %+v", h)
	}
	if _, ok := snap.Histograms["h2"]; ok {
		t.Fatal("histogram created after snapshot leaked in")
	}
}

// TestDeterministicFiltersWallPrefix: the wall/ subtree — and only the
// wall/ subtree — is dropped for cross-worker-count comparisons.
func TestDeterministicFiltersWallPrefix(t *testing.T) {
	r := NewRegistry()
	r.Counter("scanner/probes").Add(10)
	r.Counter("wall/scanner/busy_ns").Add(12345)
	r.Histogram("scanner/vlatency/daily|ticket").Observe(time.Second)
	r.Histogram("wall/scanner/latency/daily|ticket").Observe(time.Millisecond)

	d := r.Snapshot().Deterministic()
	if _, ok := d.Counters["wall/scanner/busy_ns"]; ok {
		t.Fatal("wall/ counter survived Deterministic")
	}
	if _, ok := d.Histograms["wall/scanner/latency/daily|ticket"]; ok {
		t.Fatal("wall/ histogram survived Deterministic")
	}
	if d.Counters["scanner/probes"] != 10 {
		t.Fatal("deterministic counter dropped")
	}
	if d.Histograms["scanner/vlatency/daily|ticket"].Count != 1 {
		t.Fatal("deterministic histogram dropped")
	}
}

// TestSpanJSONLRoundTrip pins the span schema: Encode then DecodeSpans
// must reproduce the records field for field.
func TestSpanJSONLRoundTrip(t *testing.T) {
	in := []Span{
		{Phase: "lifetime-id", Day: -1, Days: 8, VirtualDate: "2016-01-01T00:00:00Z",
			Domains: 150, Failures: 2, Handshakes: 300, Retries: 4,
			WallNanos: 1234567, Workers: 8, Utilization: 0.71},
		{Phase: "day", Day: 3, Days: 8, VirtualDate: "2016-01-04T00:00:00Z",
			Domains: 200, Failures: 1, PairFailures: 2, Handshakes: 520,
			Retries: 9, WallNanos: 987654, Workers: 8, Utilization: 0.93},
		{Phase: "cross-domain", Day: -1, Days: 8, Domains: 150, Handshakes: 900},
	}
	var buf bytes.Buffer
	for i := range in {
		if err := in[i].Encode(&buf); err != nil {
			t.Fatalf("encode span %d: %v", i, err)
		}
	}
	if lines := strings.Count(buf.String(), "\n"); lines != len(in) {
		t.Fatalf("expected %d JSONL lines, got %d", len(in), lines)
	}
	out, err := DecodeSpans(&buf)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("round trip mismatch:\n in  %+v\n out %+v", in, out)
	}
}

// TestHistogramQuantiles sanity-checks the bucket-upper-bound estimate.
func TestHistogramQuantiles(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("q")
	for i := 0; i < 99; i++ {
		h.Observe(2 * time.Microsecond) // bucket le=4µs
	}
	h.Observe(10 * time.Second) // far tail
	s := r.Snapshot().Histograms["q"]
	if got := s.Quantile(0.50); got != 4*time.Microsecond {
		t.Fatalf("p50 = %v, want 4µs", got)
	}
	if got := s.Quantile(1.0); got < 10*time.Second {
		t.Fatalf("p100 = %v, want >= 10s", got)
	}
	if s.Mean() <= 2*time.Microsecond {
		t.Fatalf("mean = %v, want > 2µs", s.Mean())
	}
}

// TestMergeHistograms: merging a prefixed family must sum counts and
// buckets and keep the overflow bucket ordered last.
func TestMergeHistograms(t *testing.T) {
	r := NewRegistry()
	r.Histogram("wall/lat/a").Observe(time.Millisecond)
	r.Histogram("wall/lat/a").Observe(100 * time.Hour) // overflow bucket
	r.Histogram("wall/lat/b").Observe(2 * time.Millisecond)
	r.Histogram("other").Observe(time.Second)

	m := r.Snapshot().MergeHistograms("wall/lat/")
	if m.Count != 3 {
		t.Fatalf("merged count = %d, want 3", m.Count)
	}
	if m.Max != 100*time.Hour {
		t.Fatalf("merged max = %v", m.Max)
	}
	if last := m.Buckets[len(m.Buckets)-1]; last.LE != -1 {
		t.Fatalf("overflow bucket not last: %+v", m.Buckets)
	}
}

// TestGlobalInstallRestore: SetGlobal must swap the process registry
// and hand back an exact restore.
func TestGlobalInstallRestore(t *testing.T) {
	orig := Global()
	r := NewRegistry()
	restore := SetGlobal(r)
	if Global() != r {
		t.Fatal("SetGlobal did not install")
	}
	Global().Counter("g").Inc()
	restore()
	if Global() != orig {
		t.Fatal("restore did not reinstate the previous registry")
	}
	if r.Value("g") != 1 {
		t.Fatal("write through Global lost")
	}
}

// TestRenderDeterministic: Render must produce identical output across
// calls (sorted keys, fixed alignment) despite map iteration order.
func TestRenderDeterministic(t *testing.T) {
	r := NewRegistry()
	for _, n := range []string{"z/last", "a/first", "m/middle", "wall/x", "simnet/dials"} {
		r.Counter(n).Add(uint64(len(n)))
	}
	r.Histogram("lat/one").Observe(time.Millisecond)
	r.Histogram("lat/two").Observe(time.Second)
	s := r.Snapshot()
	first := s.Render()
	for i := 0; i < 20; i++ {
		if got := s.Render(); got != first {
			t.Fatalf("Render not deterministic:\n%s\nvs\n%s", first, got)
		}
	}
	if !strings.Contains(first, "a/first") || strings.Index(first, "a/first") > strings.Index(first, "z/last") {
		t.Fatalf("keys not sorted:\n%s", first)
	}
}

// TestMergeSnapshots pins the shard-merge semantics: counters sum,
// histogram buckets align on the shared ladder (the same alignment
// MergeHistograms depends on), Max takes the largest shard's, and the
// merged snapshot feeds MergeHistograms exactly like a monolithic one.
func TestMergeSnapshots(t *testing.T) {
	mk := func(obs ...time.Duration) *Snapshot {
		r := NewRegistry()
		for _, d := range obs {
			r.Counter("scanner/probes").Inc()
			r.Histogram("scanner/vlatency/daily|ticket").Observe(d)
		}
		return r.Snapshot()
	}
	a := mk(2*time.Microsecond, 10*time.Millisecond)
	b := mk(3*time.Microsecond, time.Hour*100) // overflow bucket
	mono := mk(2*time.Microsecond, 10*time.Millisecond, 3*time.Microsecond, time.Hour*100)

	m := MergeSnapshots(a, b, nil)
	if got := m.Counters["scanner/probes"]; got != 4 {
		t.Fatalf("merged counter = %d, want 4", got)
	}
	mh := m.Histograms["scanner/vlatency/daily|ticket"]
	wh := mono.Histograms["scanner/vlatency/daily|ticket"]
	if !reflect.DeepEqual(mh, wh) {
		t.Fatalf("merged histogram differs from monolithic:\n  got  %+v\n  want %+v", mh, wh)
	}
	if mh.Buckets[len(mh.Buckets)-1].LE != -1 {
		t.Fatalf("overflow bucket must sort last: %+v", mh.Buckets)
	}
	if got, want := m.MergeHistograms("scanner/vlatency/"), mono.MergeHistograms("scanner/vlatency/"); !reflect.DeepEqual(got, want) {
		t.Fatalf("MergeHistograms over merged snapshot differs:\n  got  %+v\n  want %+v", got, want)
	}
}

// TestQuantileMeanEdgeCases pins the histogram-snapshot estimators on
// the degenerate inputs the cross-shard aggregator feeds them: empty
// histograms (a shard that never observed the family), q at and outside
// the [0,1] ends, and single-bucket distributions.
func TestQuantileMeanEdgeCases(t *testing.T) {
	var empty HistogramSnapshot
	if got := empty.Quantile(0.5); got != 0 {
		t.Fatalf("empty p50 = %v, want 0", got)
	}
	if got := empty.Quantile(1); got != 0 {
		t.Fatalf("empty p100 = %v, want 0", got)
	}
	if got := empty.Mean(); got != 0 {
		t.Fatalf("empty mean = %v, want 0", got)
	}

	r := NewRegistry()
	h := r.Histogram("one")
	for i := 0; i < 7; i++ {
		h.Observe(3 * time.Microsecond) // single bucket, le=4µs
	}
	s := r.Snapshot().Histograms["one"]
	if len(s.Buckets) != 1 {
		t.Fatalf("want single bucket, got %+v", s.Buckets)
	}
	// q<=0 is defined as 0; every in-range q lands in the only bucket.
	if got := s.Quantile(0); got != 0 {
		t.Fatalf("q=0 = %v, want 0", got)
	}
	if got := s.Quantile(-1); got != 0 {
		t.Fatalf("q=-1 = %v, want 0", got)
	}
	for _, q := range []float64{0.0001, 0.5, 1} {
		if got := s.Quantile(q); got != 4*time.Microsecond {
			t.Fatalf("single-bucket q=%v = %v, want 4µs", q, got)
		}
	}
	// q>1 asks past the last observation; the estimator saturates at Max.
	if got := s.Quantile(2); got != s.Max {
		t.Fatalf("q=2 = %v, want Max %v", got, s.Max)
	}
	if got := s.Mean(); got != 3*time.Microsecond {
		t.Fatalf("single-value mean = %v, want 3µs", got)
	}

	// Overflow-only distribution: every quantile resolves to Max, not to
	// the sentinel -1 bound.
	r2 := NewRegistry()
	r2.Histogram("ovf").Observe(400 * time.Hour)
	o := r2.Snapshot().Histograms["ovf"]
	if got := o.Quantile(0.5); got != 400*time.Hour {
		t.Fatalf("overflow p50 = %v, want 400h", got)
	}
}

// TestMergeSnapshotsAssociative: the cross-shard aggregator merges in
// whatever order peers answer, so merge(a, merge(b, c)) must equal
// merge(merge(a, b), c) — and both must equal the flat three-way merge.
func TestMergeSnapshotsAssociative(t *testing.T) {
	mk := func(seed int, obs ...time.Duration) *Snapshot {
		r := NewRegistry()
		r.Counter("scanner/probes").Add(uint64(seed))
		r.Counter("wall/scanner/busy_ns").Add(uint64(seed) * 17)
		for _, d := range obs {
			r.Histogram("scanner/vlatency/daily|ticket").Observe(d)
		}
		return r.Snapshot()
	}
	a := mk(3, 2*time.Microsecond)
	b := mk(5, 900*time.Millisecond, 100*time.Hour)
	c := mk(11, 3*time.Microsecond, time.Minute)

	left := MergeSnapshots(MergeSnapshots(a, b), c)
	right := MergeSnapshots(a, MergeSnapshots(b, c))
	flat := MergeSnapshots(a, b, c)
	if !reflect.DeepEqual(left, right) {
		t.Fatalf("merge not associative:\n  (a·b)·c %+v\n  a·(b·c) %+v", left, right)
	}
	if !reflect.DeepEqual(left, flat) {
		t.Fatalf("nested merge differs from flat merge:\n  nested %+v\n  flat   %+v", left, flat)
	}
	// Identity: merging a single snapshot is a deep copy.
	solo := MergeSnapshots(a)
	if !reflect.DeepEqual(solo.Counters, a.Counters) || !reflect.DeepEqual(solo.Histograms, a.Histograms) {
		t.Fatalf("single-snapshot merge not an identity:\n  got  %+v\n  want %+v", solo, a)
	}
}

// TestMergeSnapshotsKeyed: deterministic metrics sum across shards,
// wall/ metrics survive per shard under wall/<key>/ and never sum.
func TestMergeSnapshotsKeyed(t *testing.T) {
	mk := func(probes, busy uint64) *Snapshot {
		r := NewRegistry()
		r.Counter("scanner/probes").Add(probes)
		r.Counter("wall/scanner/busy_ns").Add(busy)
		r.Histogram("wall/scanner/latency/daily|ticket").Observe(time.Millisecond)
		r.Histogram("scanner/vlatency/daily|ticket").Observe(time.Second)
		return r.Snapshot()
	}
	m := MergeSnapshotsKeyed(map[string]*Snapshot{
		"shard0": mk(10, 100),
		"shard1": mk(20, 999),
	})
	if got := m.Counters["scanner/probes"]; got != 30 {
		t.Fatalf("deterministic counter = %d, want 30", got)
	}
	if _, ok := m.Counters["wall/scanner/busy_ns"]; ok {
		t.Fatal("wall counter was summed across shards")
	}
	if got := m.Counters["wall/shard0/scanner/busy_ns"]; got != 100 {
		t.Fatalf("shard0 wall counter = %d, want 100", got)
	}
	if got := m.Counters["wall/shard1/scanner/busy_ns"]; got != 999 {
		t.Fatalf("shard1 wall counter = %d, want 999", got)
	}
	if h := m.Histograms["scanner/vlatency/daily|ticket"]; h.Count != 2 {
		t.Fatalf("deterministic histogram count = %d, want 2", h.Count)
	}
	if h := m.Histograms["wall/shard1/scanner/latency/daily|ticket"]; h.Count != 1 {
		t.Fatalf("shard1 wall histogram count = %d, want 1", h.Count)
	}
}

// TestPrefixCounters: suffix keying, zero omission, nil safety.
func TestPrefixCounters(t *testing.T) {
	r := NewRegistry()
	r.Counter(CounterErrorPrefix + "timeout").Add(3)
	r.Counter(CounterErrorPrefix + "dial").Add(0) // zero: omitted
	r.Counter("scanner/probes").Add(9)
	got := r.Snapshot().PrefixCounters(CounterErrorPrefix)
	want := map[string]uint64{"timeout": 3}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("PrefixCounters = %v, want %v", got, want)
	}
	if (*Snapshot)(nil).PrefixCounters("x") != nil {
		t.Fatal("nil snapshot must yield nil")
	}
}
