// Command tlsobserve is the analysis and aggregation face of the
// campaign observability plane. It consumes flight-recorder journals
// written by studyrun -journal (one per shard) and serves or prints
// correlated views of them:
//
//	tlsobserve serve -listen :9100 -peers http://h1:9090,http://h2:9090
//	    standalone aggregator: /cluster and /cluster/metrics merge the
//	    peers' live /metrics and /progress into one view
//
//	tlsobserve timeline [-k 5] shard0.jsonl shard1.jsonl ...
//	    correlated timeline: per-shard lanes aligned on virtual day,
//	    the top-K slowest phases, and the error-class x day table
//
//	tlsobserve diff [-tolerance 0.25] runA.jsonl runB.jsonl
//	    compare two runs in benchgate-compatible terms: deterministic
//	    journal metrics must match exactly (any drift is a failure),
//	    wall-time metrics get the loose tolerance. Each run may be a
//	    comma-separated list of shard journals, merged before the
//	    comparison. Exits 1 on regression or drift.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"strings"
	"time"

	"tlsshortcuts/internal/obsv"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "serve":
		err = runServe(os.Args[2:])
	case "timeline":
		err = runTimeline(os.Stdout, os.Args[2:])
	case "diff":
		err = runDiff(os.Args[2:])
	case "-h", "-help", "--help", "help":
		usage()
		return
	default:
		fmt.Fprintf(os.Stderr, "tlsobserve: unknown command %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "tlsobserve: %v\n", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  tlsobserve serve -listen ADDR -peers URL[,URL...]
  tlsobserve timeline [-k K] JOURNAL.jsonl [JOURNAL.jsonl ...]
  tlsobserve diff [-tolerance FRAC] RUN_A RUN_B
        (a RUN is a journal path, or comma-separated shard journals)`)
}

// runServe starts a standalone aggregator: an obsv.Server with no local
// registry whose /cluster endpoints merge the configured peers.
func runServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	listen := fs.String("listen", ":9100", "address to serve the aggregator on")
	peers := fs.String("peers", "", "comma-separated base URLs of shard obsv servers")
	interval := fs.Duration("interval", time.Second, "progress sampling interval")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *peers == "" {
		return fmt.Errorf("serve: -peers is required")
	}
	srv := obsv.NewServer(obsv.Config{
		Peers:    splitList(*peers),
		Interval: *interval,
		Logf:     func(format string, a ...interface{}) { fmt.Fprintf(os.Stderr, format+"\n", a...) },
	})
	srv.Start()
	defer srv.Close()
	hs := &http.Server{Addr: *listen, Handler: srv}
	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "tlsobserve: aggregating %d peers on %s\n", len(splitList(*peers)), *listen)
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
		defer cancel()
		return hs.Shutdown(shutdownCtx)
	}
}

// loadRun reads and validates one or more (comma-joined) shard journals
// and merges them into a single deterministic journal. The second
// return is the run's total phase wall time in seconds, summed over the
// raw (pre-normalization) journals — the merge strips wall fields, but
// diff still compares the aggregate as a loose-tolerance metric.
func loadRun(spec string) ([]obsv.Event, float64, error) {
	paths := splitList(spec)
	journals := make([][]obsv.Event, 0, len(paths))
	var wall float64
	for _, p := range paths {
		evs, err := obsv.ReadJournal(p)
		if err != nil {
			return nil, 0, err
		}
		for _, ev := range evs {
			if ev.Type == obsv.EventPhaseEnd {
				wall += float64(ev.WallNanos) / 1e9
			}
		}
		journals = append(journals, evs)
	}
	merged, err := obsv.MergeJournalsDeterministic(journals...)
	if err != nil {
		return nil, 0, fmt.Errorf("%s: %w", spec, err)
	}
	return merged, wall, nil
}

func splitList(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

// laneKey labels one journal's lane in the timeline: its shard
// coordinate when recorded, else the file name.
func laneKey(path string, evs []obsv.Event) string {
	for _, ev := range evs {
		if ev.Shard != "" {
			return ev.Shard
		}
	}
	base := path
	if i := strings.LastIndexByte(base, '/'); i >= 0 {
		base = base[i+1:]
	}
	return base
}

// trafficPhase reports whether a phase belongs to the traffic plane
// (studyrun emits "traffic-day" phase spans when -traffic is on). Traffic
// phases get their own timeline lane instead of riding the scan lanes:
// the scan phase sequence must align positionally across shards whether
// or not traffic ran.
func trafficPhase(phase string) bool {
	return strings.HasPrefix(phase, "traffic")
}

// runTimeline prints the correlated cross-shard timeline.
func runTimeline(w io.Writer, args []string) error {
	fs := flag.NewFlagSet("timeline", flag.ExitOnError)
	topK := fs.Int("k", 5, "number of slowest phases to list")
	if err := fs.Parse(args); err != nil {
		return err
	}
	paths := fs.Args()
	if len(paths) == 0 {
		return fmt.Errorf("timeline: at least one journal required")
	}
	type lane struct {
		key string
		evs []obsv.Event
	}
	lanes := make([]lane, 0, len(paths))
	for _, p := range paths {
		evs, err := obsv.ReadJournal(p)
		if err != nil {
			return err
		}
		if err := obsv.ValidateJournal(evs); err != nil {
			return fmt.Errorf("%s: %w", p, err)
		}
		lanes = append(lanes, lane{key: laneKey(p, evs), evs: evs})
	}

	// Header: campaign identity from the first journal's start event.
	start := lanes[0].evs[0]
	fmt.Fprintf(w, "campaign: %d domains x %d days, seed %d — %d shard journal(s)\n",
		start.ListSize, start.Days, start.Seed, len(lanes))
	terminal := lanes[0].evs[len(lanes[0].evs)-1]
	switch terminal.Type {
	case obsv.EventCampaignEnd:
		fmt.Fprintf(w, "status: completed, dataset sha256 %s\n", terminal.DatasetSHA256)
	case obsv.EventCampaignAborted:
		fmt.Fprintf(w, "status: ABORTED — %s\n", terminal.Err)
	default:
		fmt.Fprintf(w, "status: in progress (journal ends with %s)\n", terminal.Type)
	}

	// Index phase_end events per lane. Scan phases align positionally
	// across shards; traffic-day phases are keyed by day and rendered in
	// a per-journal ":traffic" lane on the matching scan-day row.
	perLane := make([][]obsv.Event, len(lanes))
	perTraffic := make([]map[int]obsv.Event, len(lanes))
	for i, ln := range lanes {
		for _, ev := range ln.evs {
			if ev.Type != obsv.EventPhaseEnd {
				continue
			}
			if trafficPhase(ev.Phase) {
				if perTraffic[i] == nil {
					perTraffic[i] = map[int]obsv.Event{}
				}
				perTraffic[i][ev.Day] = ev
			} else {
				perLane[i] = append(perLane[i], ev)
			}
		}
	}

	// Correlated lanes: every scan phase_end, aligned positionally across
	// shards (shards emit identical phase sequences; a divergence is
	// itself a finding, so it is printed rather than fatal).
	fmt.Fprintf(w, "\ntimeline (aligned on virtual day):\n")
	fmt.Fprintf(w, "%-16s %-4s %-21s", "phase", "day", "virtual")
	for i, ln := range lanes {
		fmt.Fprintf(w, "  %-28s", ln.key)
		if perTraffic[i] != nil {
			fmt.Fprintf(w, "  %-28s", ln.key+":traffic")
		}
	}
	fmt.Fprintln(w)
	rows := 0
	for _, l := range perLane {
		if len(l) > rows {
			rows = len(l)
		}
	}
	for r := 0; r < rows; r++ {
		var ref *obsv.Event
		for i := range perLane {
			if r < len(perLane[i]) {
				ref = &perLane[i][r]
				break
			}
		}
		fmt.Fprintf(w, "%-16s %-4d %-21s", ref.Phase, ref.Day, ref.VirtualDate)
		for i := range perLane {
			if r >= len(perLane[i]) {
				fmt.Fprintf(w, "  %-28s", "-")
			} else {
				ev := perLane[i][r]
				cell := fmt.Sprintf("hs=%d fail=%d %s", ev.Handshakes, ev.Failures, fmtWall(ev.WallNanos))
				if ev.Phase != ref.Phase || ev.Day != ref.Day {
					cell = fmt.Sprintf("DIVERGED(%s/%d)", ev.Phase, ev.Day)
				}
				fmt.Fprintf(w, "  %-28s", cell)
			}
			if perTraffic[i] == nil {
				continue
			}
			// Traffic cells ride the scan "day" rows: the traffic plane
			// runs inside each scan day on the same virtual date.
			cell := "-"
			if ev, ok := perTraffic[i][ref.Day]; ok && ref.Phase == "day" {
				cell = fmt.Sprintf("vis=%d fail=%d %s", ev.Handshakes, ev.Failures, fmtWall(ev.WallNanos))
			}
			fmt.Fprintf(w, "  %-28s", cell)
		}
		fmt.Fprintln(w)
	}

	// Top-K slowest phases across all shards (scan and traffic alike).
	type slow struct {
		lane string
		ev   obsv.Event
	}
	var slows []slow
	for i, ln := range lanes {
		for _, ev := range perLane[i] {
			slows = append(slows, slow{lane: ln.key, ev: ev})
		}
		for _, ev := range perTraffic[i] {
			slows = append(slows, slow{lane: ln.key, ev: ev})
		}
	}
	sort.Slice(slows, func(a, b int) bool {
		if slows[a].ev.WallNanos != slows[b].ev.WallNanos {
			return slows[a].ev.WallNanos > slows[b].ev.WallNanos
		}
		if slows[a].lane != slows[b].lane {
			return slows[a].lane < slows[b].lane
		}
		return slows[a].ev.Seq < slows[b].ev.Seq
	})
	if *topK > len(slows) {
		*topK = len(slows)
	}
	fmt.Fprintf(w, "\ntop %d slowest phases:\n", *topK)
	for _, s := range slows[:*topK] {
		fmt.Fprintf(w, "  %10s  %-16s day %-3d %-11s  handshakes %-7d util %.2f\n",
			fmtWall(s.ev.WallNanos), s.ev.Phase, s.ev.Day, s.lane, s.ev.Handshakes, s.ev.Utilization)
	}

	// Error-class x day failure table, summed across shards (traffic
	// failures are classified through the same faults taxonomy, so the
	// traffic-day spans merge into the same table).
	classSet := map[string]bool{}
	byDay := map[int]map[string]uint64{}
	var days []int
	addClasses := func(ev obsv.Event) {
		if len(ev.FailureClasses) == 0 {
			return
		}
		m := byDay[ev.Day]
		if m == nil {
			m = map[string]uint64{}
			byDay[ev.Day] = m
			days = append(days, ev.Day)
		}
		for class, n := range ev.FailureClasses {
			classSet[class] = true
			m[class] += n
		}
	}
	for i := range perLane {
		for _, ev := range perLane[i] {
			addClasses(ev)
		}
		for _, ev := range perTraffic[i] {
			addClasses(ev)
		}
	}
	classes := make([]string, 0, len(classSet))
	for c := range classSet {
		classes = append(classes, c)
	}
	sort.Strings(classes)
	sort.Ints(days)
	fmt.Fprintf(w, "\nfailures by error class and day (all shards):\n")
	if len(classes) == 0 {
		fmt.Fprintln(w, "  (no probe failures recorded)")
		return nil
	}
	fmt.Fprintf(w, "%-6s", "day")
	for _, c := range classes {
		fmt.Fprintf(w, " %10s", c)
	}
	fmt.Fprintf(w, " %10s\n", "total")
	for _, d := range days {
		label := fmt.Sprintf("%d", d)
		if d < 0 {
			label = "pre"
		}
		fmt.Fprintf(w, "%-6s", label)
		var total uint64
		for _, c := range classes {
			fmt.Fprintf(w, " %10d", byDay[d][c])
			total += byDay[d][c]
		}
		fmt.Fprintf(w, " %10d\n", total)
	}
	return nil
}

// fmtWall renders a nanosecond span compactly.
func fmtWall(ns int64) string {
	return time.Duration(ns).Round(time.Microsecond).String()
}

// runSummary is diff's comparison unit: the run's deterministic totals
// plus its (noisy) total wall time.
type runSummary struct {
	det  map[string]float64 // metric -> value; must match exactly
	wall float64            // total phase wall seconds; loose tolerance
}

func summarize(events []obsv.Event) runSummary {
	s := runSummary{det: map[string]float64{}}
	for _, ev := range events {
		if ev.Type != obsv.EventPhaseEnd {
			continue
		}
		s.det["handshakes"] += float64(ev.Handshakes)
		s.det["retries"] += float64(ev.Retries)
		s.det["probe_failures"] += float64(ev.Failures)
		s.det["pair_failures"] += float64(ev.PairFailures)
		for class, n := range ev.FailureClasses {
			s.det["fail/"+class] += float64(n)
		}
		for kind, n := range ev.Faults {
			s.det["fault/"+kind] += float64(n)
		}
	}
	return s
}

// runDiff compares two runs in benchgate-compatible terms. Any drift in
// a deterministic metric is a failure (the runs measured different
// things); wall time regresses only past the loose tolerance.
func runDiff(args []string) error {
	fs := flag.NewFlagSet("diff", flag.ExitOnError)
	tol := fs.Float64("tolerance", 0.25, "wall-time regression tolerance (fraction over baseline)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 2 {
		return fmt.Errorf("diff: want exactly two runs, got %d", fs.NArg())
	}
	base, baseWall, err := loadRun(fs.Arg(0))
	if err != nil {
		return err
	}
	cur, curWall, err := loadRun(fs.Arg(1))
	if err != nil {
		return err
	}
	bs, cs := summarize(base), summarize(cur)
	bs.wall, cs.wall = baseWall, curWall

	names := map[string]bool{}
	for n := range bs.det {
		names[n] = true
	}
	for n := range cs.det {
		names[n] = true
	}
	sorted := make([]string, 0, len(names))
	for n := range names {
		sorted = append(sorted, n)
	}
	sort.Strings(sorted)

	fail := false
	for _, name := range sorted {
		baseV, curV := bs.det[name], cs.det[name]
		status := "ok"
		if baseV != curV {
			status = "DRIFT"
			fail = true
		}
		fmt.Printf("%-18s baseline %14.4g  current %14.4g  delta %+7.1f%%  (tolerance +%.0f%%)  %s\n",
			name, baseV, curV, 100*ratio(baseV, curV), 0.0, status)
	}
	status := "ok"
	if cs.wall > bs.wall*(1+*tol) {
		status = "REGRESSION"
		fail = true
	}
	fmt.Printf("%-18s baseline %14.4g  current %14.4g  delta %+7.1f%%  (tolerance +%.0f%%)  %s\n",
		"wall_seconds", bs.wall, cs.wall, 100*ratio(bs.wall, cs.wall), 100**tol, status)

	if fail {
		fmt.Println("tlsobserve: FAIL — runs diverged past tolerance")
		fmt.Println("tlsobserve: deterministic drift means the runs measured different campaigns; check seed/options")
		os.Exit(1)
	}
	fmt.Println("tlsobserve: OK — runs equivalent within tolerance")
	return nil
}

func ratio(base, cur float64) float64 {
	if base == 0 {
		if cur == 0 {
			return 0
		}
		return 1
	}
	return (cur - base) / base
}
