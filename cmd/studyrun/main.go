// Command studyrun executes the full nine-week measurement campaign against
// a freshly generated synthetic population and writes the dataset to disk.
//
// Usage:
//
//	studyrun -listsize 5000 -days 64 -seed 1 -out dataset.json
//
// Sharding (CI splits a campaign across machines and recombines):
//
//	studyrun -listsize 5000 -days 64 -seed 1 -shard 0/3 -out shard0.json
//	studyrun -listsize 5000 -days 64 -seed 1 -shard 1/3 -out shard1.json
//	studyrun -listsize 5000 -days 64 -seed 1 -shard 2/3 -out shard2.json
//	studyrun -merge -out dataset.json shard0.json shard1.json shard2.json
//
// The merged dataset is byte-identical to the monolithic run's (the CI
// determinism job enforces this against a committed golden hash).
//
// Simulated user traffic (adds a Traffic section to dataset and report;
// provably inert to the scanner's observations — with the flag off the
// dataset is byte-identical to a run that never had the feature):
//
//	studyrun -traffic                        # listsize/2 users, ~6 visits/user-day
//	studyrun -traffic -traffic-users 200     # explicit user population
//
// Observability (all off by default; none of it perturbs the dataset):
//
//	studyrun -progress                       # live stderr ticker: day N/M, handshakes/s, failure rate
//	studyrun -telemetry-out telemetry.json   # final metrics snapshot as JSON
//	studyrun -trace trace.jsonl              # one JSONL span per scan phase
//	studyrun -journal flight.jsonl           # flight-recorder event journal (internal/obsv)
//	studyrun -obsv 127.0.0.1:9090            # /metrics /progress /journal /healthz HTTP plane
//	studyrun -obsv-peers http://h2:9090      # merge sibling shards into /cluster
//	studyrun -pprof 127.0.0.1:6060           # net/http/pprof + /debug/vars expvar export
//
// On any fatal error the observability sinks are finalized, not lost: the
// trace file is flushed to a parseable state and the journal ends with a
// campaign_aborted event recording the failure.
//
// The dataset feeds cmd/report, which regenerates every table and figure.
package main

import (
	"bufio"
	"crypto/sha256"
	"encoding/json"
	"expvar"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	_ "net/http/pprof"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"tlsshortcuts/internal/faults"
	"tlsshortcuts/internal/obsv"
	"tlsshortcuts/internal/study"
	"tlsshortcuts/internal/telemetry"
	"tlsshortcuts/internal/traffic"
)

func main() {
	var (
		listSize = flag.Int("listsize", 5000, "scaled Top Million list size")
		days     = flag.Int("days", 64, "study length in days (paper: Mar 2 - May 4 2016)")
		seed     = flag.Int64("seed", 1, "deterministic world/scan seed")
		workers  = flag.Int("workers", runtime.NumCPU(),
			"scan concurrency (default NumCPU: probes are CPU-bound on the in-process simnet, never blocked on real I/O; NumCPU*2 measured ~3% slower on a 1-CPU host, 2.41s vs 2.35s for a 150x6 campaign)")
		out    = flag.String("out", "dataset.json", "output dataset path")
		report = flag.Bool("report", true, "print the full report after the run")
		quiet  = flag.Bool("quiet", false, "suppress progress logging")

		shard = flag.String("shard", "", "run one campaign slice, as i/N (e.g. 0/3); merge with -merge")
		merge = flag.Bool("merge", false, "merge shard dataset files (given as args) into -out instead of running")

		weakCrypto = flag.Bool("weak-crypto", false, "seed weak-STEK / shared-key-name / export-DH operators and run the cryptanalysis pass")

		trafficOn     = flag.Bool("traffic", false, "run the simulated-user traffic plane alongside the campaign")
		trafficUsers  = flag.Int("traffic-users", 0, "simulated user population (default listsize/2)")
		trafficSeed   = flag.Int64("traffic-seed", 0, "traffic workload seed (defaults to -seed)")
		trafficVisits = flag.Float64("traffic-visits", 0, "mean visits per user per day (default 6)")

		probeTimeout = flag.Duration("probe-timeout", 0, "per-connection deadline (0 = scanner default, <0 disables)")
		retries      = flag.Int("retries", 0, "transient-failure retries (0 = scanner default, <0 disables)")
		faultSeed    = flag.Int64("fault-seed", 0, "fault plan seed (defaults to -seed)")
		faultRefuse  = flag.Float64("fault-refuse", 0, "per-dial refusal probability")
		faultReset   = flag.Float64("fault-reset", 0, "per-dial mid-handshake reset probability")
		faultStall   = flag.Float64("fault-stall", 0, "per-dial stalled-server probability")
		faultFlap    = flag.Float64("fault-flap", 0, "per-(backend,day) outage probability")
		faultChurn   = flag.Float64("fault-churn", 0, "per-domain churn-window probability")
		churnDays    = flag.Int("fault-churn-days", 3, "max churn window length in days")

		telemetryOut = flag.String("telemetry-out", "", "write the final telemetry snapshot JSON to this path")
		traceOut     = flag.String("trace", "", "write one JSONL telemetry span per scan phase to this path")
		journalOut   = flag.String("journal", "", "write the flight-recorder event journal (JSONL) to this path")
		obsvAddr     = flag.String("obsv", "", "serve the observability plane (/metrics /progress /journal /healthz) on this address")
		obsvPeers    = flag.String("obsv-peers", "", "comma-separated base URLs of sibling shards' -obsv servers, merged into /cluster")
		progress     = flag.Bool("progress", false, "live stderr ticker: day N/M, handshakes/s, failure rate")
		pprofAddr    = flag.String("pprof", "", "serve net/http/pprof and expvar on this address (e.g. 127.0.0.1:6060)")

		abortAfterDay = flag.Int("abort-after-day", -1, "abort the campaign after this day completes (fault-injection test hook)")
	)
	flag.Parse()

	logf := func(format string, args ...interface{}) {
		if !*quiet {
			log.Printf(format, args...)
		}
	}
	if *merge {
		if err := runMerge(flag.Args(), *out, *report, logf); err != nil {
			log.Fatalf("studyrun: %v", err)
		}
		return
	}
	var fo *faults.Options
	if *faultRefuse > 0 || *faultReset > 0 || *faultStall > 0 || *faultFlap > 0 || *faultChurn > 0 {
		fs := *faultSeed
		if fs == 0 {
			fs = *seed
		}
		fo = &faults.Options{
			Seed:         fs,
			Refuse:       *faultRefuse,
			Reset:        *faultReset,
			Stall:        *faultStall,
			Flap:         *faultFlap,
			Churn:        *faultChurn,
			ChurnMaxDays: *churnDays,
		}
	}
	var to *traffic.Options
	if *trafficOn || *trafficUsers > 0 {
		tu := *trafficUsers
		if tu <= 0 {
			tu = *listSize / 2
			if tu < 1 {
				tu = 1
			}
		}
		to = &traffic.Options{Users: tu, Seed: *trafficSeed, MeanVisits: *trafficVisits}
	}
	cfg := runConfig{
		opts: study.Options{
			ListSize:     *listSize,
			Days:         *days,
			Seed:         *seed,
			Workers:      *workers,
			Logf:         logf,
			Faults:       fo,
			ProbeTimeout: *probeTimeout,
			Retries:      *retries,
			WeakCrypto:   *weakCrypto,
			Traffic:      to,
		},
		shard:         *shard,
		out:           *out,
		report:        *report,
		telemetryOut:  *telemetryOut,
		tracePath:     *traceOut,
		journalPath:   *journalOut,
		obsvAddr:      *obsvAddr,
		obsvPeers:     splitList(*obsvPeers),
		progress:      *progress,
		pprofAddr:     *pprofAddr,
		abortAfterDay: *abortAfterDay,
		logf:          logf,
		stdout:        os.Stdout,
	}
	// All sink finalization (trace flush, journal campaign_aborted,
	// telemetry snapshot) happens inside runStudy's defers, so exiting
	// on error here cannot lose observability data.
	if err := runStudy(cfg); err != nil {
		log.Fatalf("studyrun: %v", err)
	}
}

// runConfig is everything runStudy needs; main builds it from flags and
// the fatal-path regression test builds it directly.
type runConfig struct {
	opts          study.Options // Telemetry/Trace/Observer are wired by runStudy
	shard         string
	out           string
	report        bool
	telemetryOut  string
	tracePath     string
	journalPath   string
	obsvAddr      string
	obsvPeers     []string
	progress      bool
	pprofAddr     string
	abortAfterDay int // <0 disables; >=0 forces an abort after that day
	logf          func(string, ...interface{})
	stdout        *os.File
}

// runStudy executes one campaign (or shard). Every observability sink is
// finalized on the way out regardless of success: the trace writer is
// flushed and closed, the journal is closed after recording campaign_end
// (success) or campaign_aborted (any error), and the telemetry snapshot
// is written if requested. Callers that log.Fatalf afterwards lose
// nothing.
func runStudy(cfg runConfig) (retErr error) {
	logf := cfg.logf
	if logf == nil {
		logf = func(string, ...interface{}) {}
	}
	opts := cfg.opts
	if cfg.shard != "" {
		spec, err := parseShard(cfg.shard)
		if err != nil {
			return fmt.Errorf("bad -shard: %v", err)
		}
		opts.Shard = spec
	}

	// Any observability flag turns the registry on; the campaign itself
	// is provably unaffected either way (telemetry observes, never
	// perturbs — see internal/telemetry and the inertness test).
	reg := opts.Telemetry
	if reg == nil && (cfg.telemetryOut != "" || cfg.tracePath != "" || cfg.journalPath != "" ||
		cfg.obsvAddr != "" || cfg.progress || cfg.pprofAddr != "") {
		reg = telemetry.NewRegistry()
		opts.Telemetry = reg
	}

	if cfg.tracePath != "" {
		f, err := os.Create(cfg.tracePath)
		if err != nil {
			return fmt.Errorf("creating trace file: %v", err)
		}
		trace := bufio.NewWriter(f)
		defer func() {
			// Flush before close even on the error path: a fatal exit
			// must leave the trace complete up to the last finished
			// phase, not truncated mid-buffer.
			if err := trace.Flush(); err != nil && retErr == nil {
				retErr = fmt.Errorf("flushing trace: %v", err)
			}
			f.Close()
		}()
		opts.Trace = trace
	}

	var journal *obsv.Journal
	if cfg.journalPath != "" {
		j, err := obsv.CreateJournal(cfg.journalPath)
		if err != nil {
			return fmt.Errorf("creating journal: %v", err)
		}
		journal = j
		journal.SetShard(cfg.shard)
		journal.CampaignStart(opts.ListSize, opts.Days, opts.Seed, opts.Workers, cfg.shard)
		opts.Observer = journal
		defer func() {
			if retErr != nil {
				journal.Abort(retErr)
			}
			if err := journal.Close(); err != nil && retErr == nil {
				retErr = fmt.Errorf("journal: %v", err)
			}
		}()
	}
	if cfg.abortAfterDay >= 0 {
		opts.Observer = &abortAfterDay{inner: opts.Observer, day: cfg.abortAfterDay}
	}

	if cfg.telemetryOut != "" {
		defer func() {
			// Written on the error path too: the snapshot of a failed
			// campaign is exactly the telemetry worth keeping.
			b, err := json.MarshalIndent(reg.Snapshot(), "", "  ")
			if err == nil {
				err = os.WriteFile(cfg.telemetryOut, append(b, '\n'), 0o644)
			}
			if err != nil && retErr == nil {
				retErr = fmt.Errorf("writing telemetry: %v", err)
			} else if err == nil {
				logf("telemetry snapshot written to %s", cfg.telemetryOut)
			}
		}()
	}

	var obsvServer *obsv.Server
	if cfg.obsvAddr != "" {
		ln, err := net.Listen("tcp", cfg.obsvAddr)
		if err != nil {
			return fmt.Errorf("obsv listen: %v", err)
		}
		obsvServer = obsv.NewServer(obsv.Config{
			Registry: reg,
			Days:     opts.Days,
			ListSize: opts.ListSize,
			Shard:    cfg.shard,
			Workers:  opts.Workers,
			Journal:  journal,
			Peers:    cfg.obsvPeers,
			Logf:     logf,
		})
		obsvServer.Start()
		defer obsvServer.Close()
		go func() {
			logf("observability plane on http://%s/progress", ln.Addr())
			if err := http.Serve(ln, obsvServer); err != nil {
				logf("obsv server: %v", err)
			}
		}()
		defer ln.Close()
	}
	if cfg.pprofAddr != "" {
		// net/http/pprof and expvar register on the default mux; the
		// registry snapshot is republished as the "telemetry" expvar, so
		// /debug/vars carries live campaign counters.
		expvar.Publish("telemetry", expvar.Func(func() interface{} { return reg.Snapshot() }))
		go func() {
			logf("pprof+expvar listening on http://%s/debug/pprof/", cfg.pprofAddr)
			if err := http.ListenAndServe(cfg.pprofAddr, nil); err != nil {
				log.Printf("pprof server: %v", err)
			}
		}()
	}
	var progressDone chan struct{}
	if cfg.progress {
		progressDone = make(chan struct{})
		go progressLoop(reg, opts.Days, progressDone)
	}

	logf("building %d-domain world and running %d-day campaign (seed %d, %d workers)",
		opts.ListSize, opts.Days, opts.Seed, opts.Workers)
	start := time.Now()
	ds, err := study.Run(opts)
	if progressDone != nil {
		progressDone <- struct{}{}
		<-progressDone // closed once the ticker's final newline is out
	}
	if err != nil {
		return fmt.Errorf("study failed: %v", err)
	}
	logf("campaign finished in %v; writing %s", time.Since(start).Round(time.Second), cfg.out)
	if len(ds.Failures) > 0 {
		total := 0
		for _, f := range ds.Failures {
			total += f.Count
		}
		logf("scan failures: %d across %d (scan, class) cells; %d domains with missed days",
			total, len(ds.Failures), len(ds.MissedDays))
	}
	if err := ds.Save(cfg.out); err != nil {
		return fmt.Errorf("saving dataset: %v", err)
	}
	if journal != nil {
		journal.CampaignEnd(datasetHash(ds))
	}
	if cfg.report && cfg.stdout != nil {
		fmt.Fprintln(cfg.stdout, study.BuildReport(ds).String())
		if reg != nil {
			fmt.Fprintln(cfg.stdout, study.TelemetrySection(reg.Snapshot()))
		}
	}
	return nil
}

// datasetHash is the canonical dataset fingerprint the journal records:
// sha256 over the JSON encoding, matching the determinism suite's.
func datasetHash(ds *study.Dataset) string {
	b, err := json.Marshal(ds)
	if err != nil {
		return ""
	}
	return fmt.Sprintf("%x", sha256.Sum256(b))
}

// abortAfterDay is the fault-injection observer behind -abort-after-day:
// it delegates to the real observer (so the journal records everything up
// to the failure) and then fails the campaign after day N's phase ends —
// exercising the same abort path a mid-campaign error would take.
type abortAfterDay struct {
	inner study.CampaignObserver
	day   int
}

func (a *abortAfterDay) OnPhase(ev telemetry.PhaseEvent) error {
	if a.inner != nil {
		if err := a.inner.OnPhase(ev); err != nil {
			return err
		}
	}
	if !ev.Start && ev.Span.Phase == "day" && ev.Span.Day >= a.day {
		return fmt.Errorf("injected abort after day %d (-abort-after-day)", ev.Span.Day)
	}
	return nil
}

func splitList(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

// parseShard parses "i/N" into a validated ShardSpec.
func parseShard(s string) (*study.ShardSpec, error) {
	i := strings.IndexByte(s, '/')
	if i < 0 {
		return nil, fmt.Errorf("want i/N, got %q", s)
	}
	idx, err := strconv.Atoi(s[:i])
	if err != nil {
		return nil, fmt.Errorf("shard index: %v", err)
	}
	count, err := strconv.Atoi(s[i+1:])
	if err != nil {
		return nil, fmt.Errorf("shard count: %v", err)
	}
	spec := &study.ShardSpec{Index: idx, Count: count}
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	return spec, nil
}

// runMerge loads the shard dataset files named in args, recombines them
// with study.MergeDatasets, and writes the monolithic-equivalent dataset.
func runMerge(paths []string, out string, report bool, logf func(string, ...interface{})) error {
	if len(paths) == 0 {
		return fmt.Errorf("-merge needs shard dataset files as arguments")
	}
	shards := make([]*study.Dataset, 0, len(paths))
	for _, p := range paths {
		ds, err := study.Load(p)
		if err != nil {
			return fmt.Errorf("loading shard %s: %v", p, err)
		}
		shards = append(shards, ds)
	}
	merged, err := study.MergeDatasets(shards...)
	if err != nil {
		return fmt.Errorf("merging shards: %v", err)
	}
	logf("merged %d shards; writing %s", len(shards), out)
	if err := merged.Save(out); err != nil {
		return fmt.Errorf("saving dataset: %v", err)
	}
	if report {
		fmt.Fprintln(os.Stdout, study.BuildReport(merged).String())
	}
	return nil
}

// progressLoop renders a once-per-second stderr ticker from registry
// deltas: scan day, instantaneous handshake rate, cumulative failure
// rate. It owns the final newline: the caller sends on done and waits
// for the channel close before printing anything else.
func progressLoop(reg *telemetry.Registry, days int, done chan struct{}) {
	tick := time.NewTicker(time.Second)
	defer tick.Stop()
	var lastStarted uint64
	last := time.Now()
	for {
		select {
		case <-done:
			fmt.Fprintln(os.Stderr)
			close(done)
			return
		case <-tick.C:
			started := reg.Value(telemetry.CounterHandshakesStarted)
			probes := reg.Value(telemetry.CounterProbes)
			fails := reg.Value(telemetry.CounterProbeFailures)
			day := reg.Value(telemetry.CounterDaysCompleted)
			now := time.Now()
			rate := float64(started-lastStarted) / now.Sub(last).Seconds()
			lastStarted, last = started, now
			failPct := 0.0
			if probes > 0 {
				failPct = 100 * float64(fails) / float64(probes)
			}
			fmt.Fprintf(os.Stderr, "\rday %d/%d  %8.0f handshakes/s  %5.2f%% probes failed",
				day, days, rate, failPct)
		}
	}
}
