package study

import (
	"runtime"
	"sync/atomic"
	"testing"
	"time"
)

// samplePeakHeap runs fn while a background sampler records the largest
// live heap (HeapAlloc) it sees, returning that peak in bytes. Coarse —
// GC pacing and sampling cadence both blur it — so callers compare
// peaks against each other with generous margins, not to exact bytes.
func samplePeakHeap(fn func()) uint64 {
	runtime.GC()
	var peak atomic.Uint64
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		var ms runtime.MemStats
		t := time.NewTicker(5 * time.Millisecond)
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case <-t.C:
				runtime.ReadMemStats(&ms)
				for {
					old := peak.Load()
					if ms.HeapAlloc <= old || peak.CompareAndSwap(old, ms.HeapAlloc) {
						break
					}
				}
			}
		}
	}()
	fn()
	close(stop)
	<-done
	return peak.Load()
}

// TestCampaignMemoryBounded pins the incremental aggregator's O(domains)
// residency: quadrupling the campaign's day count must not grow peak
// live heap proportionally, because each day's observations are folded
// into per-domain aggregates and their buffers reused. Per-domain state
// (span maps, lifetime rows) grows mildly with days, so the bound is a
// 2x ratio against a 4x day increase — a regression back to retaining
// per-day slices would blow well past it.
func TestCampaignMemoryBounded(t *testing.T) {
	if testing.Short() {
		t.Skip("runs two campaigns")
	}
	run := func(days int) uint64 {
		var ds *Dataset
		peak := samplePeakHeap(func() {
			var err error
			ds, err = Run(Options{ListSize: 200, Days: days, Seed: 7, Workers: 8})
			if err != nil {
				t.Fatalf("Run(%d days): %v", days, err)
			}
		})
		runtime.KeepAlive(ds)
		return peak
	}
	short := run(4)
	long := run(16)
	t.Logf("peak live heap: 4 days %d bytes, 16 days %d bytes", short, long)
	if long > 2*short {
		t.Fatalf("peak heap grows with days: 4d=%d 16d=%d (>2x)", short, long)
	}
}
