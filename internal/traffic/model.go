package traffic

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"

	"tlsshortcuts/internal/drbg"
)

// The workload model. Every draw is a pure function of (traffic seed,
// user id[, day]), made through dedicated DRBG streams:
//
//	(seed, "u|<id>",    "profile")  — policy, activity, favorites
//	(seed, "u|<id>",    "day|<d>")  — that day's visit schedule
//
// so a user's behaviour is identical no matter which worker or shard
// executes it, and schedules can be redrawn cheaply instead of stored.

// profile is a user's sampled identity: which browser policy they run,
// how active they are, and their favorite sites.
type profile struct {
	policy   int     // index into the policy table
	activity float64 // visits/day multiplier, log-uniform in [1/4, 4)
	favs     []int32 // favorite domain indices (rank order positions)
}

// favoriteBias is the probability a visit goes to one of the user's
// favorites rather than a fresh popularity-sampled site. Revisit-heavy
// behaviour is what builds resumption chains.
const favoriteBias = 0.7

// rndU64 draws a uniform uint64 from the stream.
func rndU64(r *drbg.Reader) uint64 {
	var b [8]byte
	if _, err := r.Read(b[:]); err != nil {
		panic("traffic: drbg read: " + err.Error())
	}
	return binary.BigEndian.Uint64(b[:])
}

// rndFloat draws a uniform float64 in [0, 1).
func rndFloat(r *drbg.Reader) float64 {
	return float64(rndU64(r)>>11) / (1 << 53)
}

// rndInt draws a uniform int in [0, n).
func rndInt(r *drbg.Reader, n int) int {
	if n <= 1 {
		return 0
	}
	return int(rndU64(r) % uint64(n))
}

// zipfIdx samples a site index in [0, n) with density roughly 1/(x+1)
// — the heavy-headed popularity curve of real browsing: rank-0 sites
// soak up most visits while the tail still gets occasional traffic.
func zipfIdx(r *drbg.Reader, n int) int {
	if n <= 1 {
		return 0
	}
	idx := int(math.Exp(rndFloat(r)*math.Log(float64(n)+1))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= n {
		idx = n - 1
	}
	return idx
}

// userProfile draws user u's profile. policies weights are normalized
// over the table; totalWeight is their precomputed sum.
func (e *Engine) userProfile(u int) profile {
	r := drbg.NewParts(e.seed, fmt.Sprintf("u|%d", u), "profile")
	var p profile

	// Policy: inverse-CDF over normalized weights.
	f := rndFloat(r) * e.totalWeight
	p.policy = len(e.policies) - 1
	for i := range e.policies {
		if f < e.policies[i].Weight {
			p.policy = i
			break
		}
		f -= e.policies[i].Weight
	}

	// Activity: log-uniform over [1/4, 4) — a few heavy users dominate
	// visit volume, which is what makes small cache caps actually evict.
	p.activity = math.Exp((rndFloat(r)*2 - 1) * math.Log(4))

	// Favorites: 4–11 sites, popularity-sampled (dedup keeps them
	// distinct; a favorite list hits the same hostnames daily, building
	// the long chains).
	n := 4 + rndInt(r, 8)
	seen := make(map[int32]bool, n)
	for len(p.favs) < n {
		d := int32(zipfIdx(r, len(e.domains)))
		if seen[d] {
			// Collisions redraw; the stream advances either way, so the
			// result is still a pure function of (seed, user).
			d = int32(rndInt(r, len(e.domains)))
		}
		if !seen[d] {
			seen[d] = true
			p.favs = append(p.favs, d)
		}
	}
	return p
}

// visit is one scheduled connection: hour slot, destination site, and
// whether the user would offer a same-operator sibling session when
// holding none for the destination.
type visit struct {
	slot  int8
	cross bool
	dom   int32
}

// daySchedule draws user u's visits for one campaign day, appended to
// buf, sorted by hour slot (stable: draw order preserved within a
// slot). The draw is stateless per (user, day) so any shard or worker
// reproduces it exactly.
func (e *Engine) daySchedule(u int, p *profile, day int, buf []visit) []visit {
	r := drbg.NewParts(e.seed, fmt.Sprintf("u|%d", u), fmt.Sprintf("day|%d", day))
	mean := e.opts.meanVisits() * p.activity
	// Uniform on [0, 2*mean] keeps the configured mean while giving
	// zero-visit days a real probability.
	n := rndInt(r, int(2*mean)+1)
	start := len(buf)
	for i := 0; i < n; i++ {
		v := visit{slot: int8(rndInt(r, 24))}
		if rndFloat(r) < favoriteBias && len(p.favs) > 0 {
			v.dom = p.favs[rndInt(r, len(p.favs))]
		} else {
			v.dom = int32(zipfIdx(r, len(e.domains)))
		}
		v.cross = rndFloat(r) < e.opts.crossHost()
		buf = append(buf, v)
	}
	sched := buf[start:]
	sort.SliceStable(sched, func(i, j int) bool { return sched[i].slot < sched[j].slot })
	return buf
}
