// Package prf implements the TLS 1.2 pseudo-random function (RFC 5246
// §5, P_SHA256 only) and the standard key derivations built on it.
package prf

import (
	"crypto/hmac"
	"crypto/sha256"
)

// PHash is P_SHA256(secret, seed) expanded to n bytes.
func PHash(secret, seed []byte, n int) []byte {
	out := make([]byte, 0, n)
	mac := func(data ...[]byte) []byte {
		h := hmac.New(sha256.New, secret)
		for _, d := range data {
			h.Write(d)
		}
		return h.Sum(nil)
	}
	a := mac(seed) // A(1)
	for len(out) < n {
		out = append(out, mac(a, seed)...)
		a = mac(a)
	}
	return out[:n]
}

// PRF is the TLS 1.2 PRF: P_SHA256(secret, label || seed).
func PRF(secret []byte, label string, seed []byte, n int) []byte {
	ls := make([]byte, 0, len(label)+len(seed))
	ls = append(ls, label...)
	ls = append(ls, seed...)
	return PHash(secret, ls, n)
}

// MasterSecret derives the 48-byte master secret from a premaster secret
// and the two hello randoms.
func MasterSecret(premaster, clientRandom, serverRandom []byte) []byte {
	seed := make([]byte, 0, 64)
	seed = append(seed, clientRandom...)
	seed = append(seed, serverRandom...)
	return PRF(premaster, "master secret", seed, 48)
}

// KeyBlock derives n bytes of key material (note the server-random-first
// seed order, per RFC 5246 §6.3).
func KeyBlock(master, serverRandom, clientRandom []byte, n int) []byte {
	seed := make([]byte, 0, 64)
	seed = append(seed, serverRandom...)
	seed = append(seed, clientRandom...)
	return PRF(master, "key expansion", seed, n)
}

// FinishedHash computes the 12-byte verify_data for a Finished message.
func FinishedHash(master []byte, label string, transcriptHash []byte) []byte {
	return PRF(master, label, transcriptHash, 12)
}
