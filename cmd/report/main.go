// Command report regenerates the paper's tables and figures from a dataset
// written by cmd/studyrun.
//
// Usage:
//
//	report -in dataset.json            # everything, paper order
//	report -in dataset.json -only fig8 # one section
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"

	"tlsshortcuts/internal/study"
)

func main() {
	var (
		in   = flag.String("in", "dataset.json", "dataset path")
		only = flag.String("only", "", "one section: table1..table7, fig1..fig8")
	)
	flag.Parse()

	ds, err := study.Load(*in)
	if err != nil {
		log.Fatalf("loading dataset: %v", err)
	}
	rep := study.BuildReport(ds)
	if *only == "" {
		fmt.Println(rep.String())
		return
	}
	sections := map[string]func() string{
		"table1": rep.Table1,
		"table2": rep.Table2,
		"table3": rep.Table3,
		"table4": rep.Table4,
		"table5": rep.Table5,
		"table6": rep.Table6,
		"table7": rep.Table7,
		"fig1":   rep.Figure1,
		"fig2":   rep.Figure2,
		"fig3":   rep.Figure3,
		"fig4":   rep.Figure4,
		"fig5":   rep.Figure5,
		"fig6":   rep.Figure6,
		"fig7":   rep.Figure7,
		"fig8":   rep.Figure8,
		"tls13":  rep.TLS13Outlook,
	}
	f, ok := sections[strings.ToLower(*only)]
	if !ok {
		keys := make([]string, 0, len(sections))
		for k := range sections {
			keys = append(keys, k)
		}
		log.Fatalf("unknown section %q; available: %s", *only, strings.Join(keys, " "))
	}
	fmt.Println(f())
}
