package main

import (
	"bufio"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"tlsshortcuts/internal/obsv"
	"tlsshortcuts/internal/study"
	"tlsshortcuts/internal/telemetry"
)

// studyOptions is a small, fast campaign shape shared by the sink tests.
func studyOptions(t *testing.T) study.Options {
	t.Helper()
	return study.Options{
		ListSize: 60,
		Days:     4,
		Seed:     7,
		Workers:  4,
	}
}

// TestAbortFinalizesSinks is the lost-on-error telemetry regression
// test: a campaign that dies mid-run (forced via the -abort-after-day
// fault hook) must still leave a complete, parseable trace file and a
// journal that ends with campaign_aborted. Before runStudy existed,
// studyrun's log.Fatalf path dropped the bufio-buffered tail of both.
func TestAbortFinalizesSinks(t *testing.T) {
	dir := t.TempDir()
	tracePath := filepath.Join(dir, "trace.jsonl")
	journalPath := filepath.Join(dir, "flight.jsonl")
	telemetryPath := filepath.Join(dir, "telemetry.json")

	cfg := runConfig{
		opts: studyOptions(t),
		out:  filepath.Join(dir, "dataset.json"),

		tracePath:     tracePath,
		journalPath:   journalPath,
		telemetryOut:  telemetryPath,
		abortAfterDay: 1, // die after day 1 of 4, mid-campaign
	}
	err := runStudy(cfg)
	if err == nil {
		t.Fatal("runStudy succeeded; want the injected day-1 abort")
	}
	if !strings.Contains(err.Error(), "injected abort after day 1") {
		t.Fatalf("unexpected abort error: %v", err)
	}
	if _, statErr := os.Stat(cfg.out); statErr == nil {
		t.Error("aborted campaign wrote a dataset file")
	}

	// The trace must be complete and parseable: every line valid JSON,
	// and the day-1 span (the last finished phase) present.
	f, openErr := os.Open(tracePath)
	if openErr != nil {
		t.Fatalf("trace file missing after abort: %v", openErr)
	}
	defer f.Close()
	var spans []telemetry.Span
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		var span telemetry.Span
		if jsonErr := json.Unmarshal(sc.Bytes(), &span); jsonErr != nil {
			t.Fatalf("trace line %d not parseable after abort: %v (%q)", len(spans), jsonErr, sc.Text())
		}
		spans = append(spans, span)
	}
	if scanErr := sc.Err(); scanErr != nil {
		t.Fatalf("reading trace: %v", scanErr)
	}
	sawDay1 := false
	for _, span := range spans {
		if span.Phase == "day" && span.Day == 1 {
			sawDay1 = true
		}
	}
	if !sawDay1 {
		t.Errorf("trace lost the day-1 span (the abort trigger); got %d spans", len(spans))
	}

	// The journal must validate (contiguous seqs, campaign_start first,
	// single terminal event) and end with campaign_aborted naming the
	// failure.
	events, readErr := obsv.ReadJournal(journalPath)
	if readErr != nil {
		t.Fatalf("journal not parseable after abort: %v", readErr)
	}
	if valErr := obsv.ValidateJournal(events); valErr != nil {
		t.Fatalf("journal invalid after abort: %v", valErr)
	}
	last := events[len(events)-1]
	if last.Type != obsv.EventCampaignAborted {
		t.Fatalf("journal ends with %s, want %s", last.Type, obsv.EventCampaignAborted)
	}
	if !strings.Contains(last.Err, "injected abort after day 1") {
		t.Errorf("campaign_aborted err = %q, want the injected abort reason", last.Err)
	}

	// The telemetry snapshot of the failed campaign is written too.
	b, telErr := os.ReadFile(telemetryPath)
	if telErr != nil {
		t.Fatalf("telemetry snapshot missing after abort: %v", telErr)
	}
	var snap telemetry.Snapshot
	if jsonErr := json.Unmarshal(b, &snap); jsonErr != nil {
		t.Fatalf("telemetry snapshot not parseable: %v", jsonErr)
	}
	if snap.Counters[telemetry.CounterProbes] == 0 {
		t.Error("telemetry snapshot has zero probes; pre-abort counters were lost")
	}
}

// TestRunStudyCompletes pins the happy path through the same plumbing:
// journal ends with campaign_end carrying the dataset hash, and the
// hash matches a recomputation from the saved dataset.
func TestRunStudyCompletes(t *testing.T) {
	dir := t.TempDir()
	journalPath := filepath.Join(dir, "flight.jsonl")
	cfg := runConfig{
		opts:          studyOptions(t),
		out:           filepath.Join(dir, "dataset.json"),
		journalPath:   journalPath,
		abortAfterDay: -1,
	}
	if err := runStudy(cfg); err != nil {
		t.Fatalf("runStudy: %v", err)
	}
	events, err := obsv.ReadJournal(journalPath)
	if err != nil {
		t.Fatalf("reading journal: %v", err)
	}
	if err := obsv.ValidateJournal(events); err != nil {
		t.Fatalf("journal invalid: %v", err)
	}
	last := events[len(events)-1]
	if last.Type != obsv.EventCampaignEnd {
		t.Fatalf("journal ends with %s, want %s", last.Type, obsv.EventCampaignEnd)
	}
	if last.DatasetSHA256 == "" {
		t.Fatal("campaign_end missing the dataset hash")
	}
}
