package main

import (
	"context"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"sort"
	"strings"
	"testing"
	"time"

	"tlsshortcuts/internal/obsv"
	"tlsshortcuts/internal/population"
	"tlsshortcuts/internal/simclock"
	"tlsshortcuts/internal/telemetry"
	"tlsshortcuts/internal/tlsclient"
	"tlsshortcuts/internal/tlsserver"
	"tlsshortcuts/internal/wire"
)

// TestMetricsSmoke drives simweb's -metrics mount end to end with the
// obsv client: a real TCP handshake against a terminator whose registry
// is installed globally, then /healthz, /metrics (both formats), and
// /progress over that registry.
func TestMetricsSmoke(t *testing.T) {
	reg := telemetry.NewRegistry()
	defer telemetry.SetGlobal(reg)()

	world, err := population.Build(population.Options{
		ListSize: 200,
		Seed:     1,
		Clock:    simclock.System(),
		Start:    time.Now(),
	})
	if err != nil {
		t.Fatalf("building world: %v", err)
	}
	// Deterministically pick a served domain, as simweb -domain would.
	var domains []string
	for d, info := range world.Domains {
		if info != nil && len(info.Terms) > 0 {
			domains = append(domains, d)
		}
	}
	if len(domains) == 0 {
		t.Fatal("no served domains in the world")
	}
	sort.Strings(domains)
	domain := domains[0]
	cfg := world.Domains[domain].Terms[0].Config

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	defer ln.Close()
	go func() {
		// One-shot accept: the test makes a single handshake.
		c, err := ln.Accept()
		if err != nil {
			return
		}
		_ = tlsserver.Serve(c, cfg)
	}()

	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatalf("dial terminator: %v", err)
	}
	defer conn.Close()
	_ = conn.SetDeadline(time.Now().Add(5 * time.Second))
	if _, err := tlsclient.Handshake(conn, &tlsclient.Config{
		ServerName:  domain,
		Suites:      []uint16{wire.SuiteECDHE, wire.SuiteDHE, wire.SuiteRSA},
		OfferTicket: true,
		Clock:       world.Clock,
		Roots:       world.Roots,
	}); err != nil {
		t.Fatalf("handshake against %s: %v", domain, err)
	}

	hts := httptest.NewServer(metricsHandler(reg))
	defer hts.Close()
	client := obsv.NewClient(hts.URL)
	ctx := context.Background()

	if err := client.Healthz(ctx); err != nil {
		t.Fatalf("healthz: %v", err)
	}
	snap, err := client.Snapshot(ctx)
	if err != nil {
		t.Fatalf("snapshot: %v", err)
	}
	var total uint64
	for _, v := range snap.Counters {
		total += v
	}
	if total == 0 {
		t.Error("terminator registry empty after a successful handshake")
	}

	resp, err := http.Get(hts.URL + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("/metrics content type = %q", ct)
	}
	if !strings.Contains(string(body), "# TYPE tls_") {
		t.Errorf("/metrics is not Prometheus text exposition:\n%.300s", body)
	}
}
