package faults

import (
	"errors"
	"fmt"
	"io"
	"os"
	"testing"
	"time"

	"tlsshortcuts/internal/simclock"
)

func TestZeroOptionsCompileToNilPlan(t *testing.T) {
	clock := simclock.NewManual(simclock.Epoch)
	if p := NewPlan(Options{Seed: 42}, clock); p != nil {
		t.Fatalf("zero options should compile to nil plan, got %+v", p)
	}
	var p *Plan
	if p.Active() {
		t.Fatal("nil plan must be inactive")
	}
	if f := p.Decide("a.example", "x", 0, 1); f.Kind != None {
		t.Fatalf("nil plan decided %v", f.Kind)
	}
	if _, _, ok := p.ChurnWindow("a.example"); ok {
		t.Fatal("nil plan assigned a churn window")
	}
}

func TestDecideDeterministicAndSeedSensitive(t *testing.T) {
	clock := simclock.NewManual(simclock.Epoch)
	o := Options{Seed: 7, Refuse: 0.1, Reset: 0.1, Stall: 0.1, Flap: 0.05, Churn: 0.2, Days: 16}
	a, b := NewPlan(o, clock), NewPlan(o, clock)
	o2 := o
	o2.Seed = 8
	c := NewPlan(o2, clock)
	differs := false
	for dom := 0; dom < 20; dom++ {
		domain := fmt.Sprintf("site-%03d.example", dom)
		for probe := 0; probe < 10; probe++ {
			label := fmt.Sprintf("daily|ticket|%d|1", probe)
			fa, fb := a.Decide(domain, label, 0, 0), b.Decide(domain, label, 0, 0)
			if fa != fb {
				t.Fatalf("same seed diverged on (%s, %s): %v vs %v", domain, label, fa, fb)
			}
			if fa != c.Decide(domain, label, 0, 0) {
				differs = true
			}
		}
	}
	if !differs {
		t.Fatal("different seeds produced identical decisions everywhere")
	}
}

func TestRatesRealized(t *testing.T) {
	clock := simclock.NewManual(simclock.Epoch)
	if f := NewPlan(Options{Seed: 1, Refuse: 1}, clock).Decide("a.example", "l", 0, 0); f.Kind != Refuse {
		t.Fatalf("Refuse=1 decided %v", f.Kind)
	}
	if f := NewPlan(Options{Seed: 1, Reset: 1}, clock).Decide("a.example", "l", 0, 0); f.Kind != Reset {
		t.Fatalf("Reset=1 decided %v", f.Kind)
	} else if f.AllowWrites < 0 || f.AllowWrites > 2 {
		t.Fatalf("AllowWrites out of range: %d", f.AllowWrites)
	}
	if f := NewPlan(Options{Seed: 1, Stall: 1}, clock).Decide("a.example", "l", 0, 0); f.Kind != Stall {
		t.Fatalf("Stall=1 decided %v", f.Kind)
	}
	if f := NewPlan(Options{Seed: 1, Flap: 1}, clock).Decide("a.example", "l", 0, 0); f.Kind != Flap {
		t.Fatalf("Flap=1 decided %v", f.Kind)
	}
	// A moderate rate should fault some probes and pass others.
	p := NewPlan(Options{Seed: 3, Refuse: 0.2}, clock)
	faulted, passed := 0, 0
	for i := 0; i < 200; i++ {
		if p.Decide("a.example", fmt.Sprintf("l%d", i), 0, 0).Kind == Refuse {
			faulted++
		} else {
			passed++
		}
	}
	if faulted == 0 || passed == 0 {
		t.Fatalf("Refuse=0.2 over 200 probes: %d faulted, %d passed", faulted, passed)
	}
}

func TestChurnWindowBoundsAndDayMapping(t *testing.T) {
	clock := simclock.NewManual(simclock.Epoch)
	o := Options{Seed: 5, Churn: 1, Days: 10, ChurnMaxDays: 3, Base: simclock.Epoch}
	p := NewPlan(o, clock)
	start, end, ok := p.ChurnWindow("site-001.example")
	if !ok {
		t.Fatal("Churn=1 assigned no window")
	}
	if start < 0 || end > o.Days || end-start < 1 || end-start > o.ChurnMaxDays {
		t.Fatalf("window [%d,%d) out of bounds for Days=%d max=%d", start, end, o.Days, o.ChurnMaxDays)
	}
	for day := 0; day < o.Days; day++ {
		clock.Set(simclock.Epoch.Add(time.Duration(day) * 24 * time.Hour))
		got := p.Decide("site-001.example", "l", 0, 0).Kind
		want := got != Churn
		if day >= start && day < end {
			want = got == Churn
		}
		if !want {
			t.Fatalf("day %d (window [%d,%d)): decided %v", day, start, end, got)
		}
	}
}

func TestStallDomains(t *testing.T) {
	clock := simclock.NewManual(simclock.Epoch)
	p := NewPlan(Options{Seed: 1, StallDomains: []string{"yahoo.com"}}, clock)
	for i := 0; i < 5; i++ {
		if f := p.Decide("yahoo.com", fmt.Sprintf("l%d", i), 0, 0); f.Kind != Stall {
			t.Fatalf("stall domain decided %v", f.Kind)
		}
	}
	if f := p.Decide("google.com", "l", 0, 0); f.Kind != None {
		t.Fatalf("non-stall domain decided %v", f.Kind)
	}
}

type fakeAlert struct{ code uint8 }

func (f *fakeAlert) Error() string    { return "alert" }
func (f *fakeAlert) AlertCode() uint8 { return f.code }

func TestClassify(t *testing.T) {
	cases := []struct {
		err  error
		want ErrClass
	}{
		{nil, ClassNone},
		{&DialError{Domain: "a", Reason: "refused"}, ClassDial},
		{fmt.Errorf("wrap: %w", &DialError{Domain: "a", Reason: "x"}), ClassDial},
		{os.ErrDeadlineExceeded, ClassTimeout},
		{fmt.Errorf("read: %w", os.ErrDeadlineExceeded), ClassTimeout},
		{io.EOF, ClassReset},
		{io.ErrUnexpectedEOF, ClassReset},
		{io.ErrClosedPipe, ClassReset},
		{&fakeAlert{40}, ClassAlert},
		{errors.New("tls: bad record MAC"), ClassProtocol},
	}
	for _, c := range cases {
		if got := Classify(c.err); got != c.want {
			t.Errorf("Classify(%v) = %q, want %q", c.err, got, c.want)
		}
	}
	for _, c := range []ErrClass{ClassDial, ClassTimeout, ClassReset} {
		if !Transient(c) {
			t.Errorf("Transient(%q) = false", c)
		}
	}
	for _, c := range []ErrClass{ClassNone, ClassAlert, ClassProtocol} {
		if Transient(c) {
			t.Errorf("Transient(%q) = true", c)
		}
	}
}
