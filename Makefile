GO ?= go

.PHONY: build test test-faults test-telemetry race bench bench-campaign fmt

build:
	$(GO) build ./...

test:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then echo "gofmt needed on:"; echo "$$out"; exit 1; fi
	$(GO) vet ./...
	$(GO) test -short ./...

# Lossy-network robustness suite: fault plan determinism, scan deadlines
# and retries, the error taxonomy, cache sweeping, and the empty-plan
# golden-hash inertness proof.
test-faults:
	$(GO) test -run 'Fault|Stall|Refus|Reset|Retry|Transient|Classify|Churn|Decide|Sweep|Len|Expire|NoRoute|Clearing|Golden' \
		./internal/faults ./internal/simnet ./internal/scanner ./internal/session ./internal/study

# Telemetry suite: registry/histogram correctness under -race, span
# schema round-trip, dial/label collectors, report-rendering determinism,
# and the tentpole proof — the golden 200x8 campaign re-run with
# telemetry fully enabled must still match the committed hash, and a
# faulted campaign's deterministic metrics must be identical across
# worker counts.
test-telemetry:
	$(GO) test -race ./internal/telemetry
	$(GO) test -run 'Telemetry|Span|ReportRendering' \
		./internal/scanner ./internal/simnet ./internal/study

race:
	$(GO) test -race ./...

bench:
	$(GO) test -run=NONE -bench=. -benchtime=1x ./...

# Full-scale campaign benchmark (1000 domains x 44 days, 16 workers);
# refreshes the committed BENCH_campaign.json trajectory point.
bench-campaign:
	BENCH_CAMPAIGN_FULL=1 BENCH_CAMPAIGN_OUT=BENCH_campaign.json \
		$(GO) test -run=NONE -bench=CampaignE2E -benchtime=1x .

fmt:
	gofmt -l -w .
