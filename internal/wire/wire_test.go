package wire

import (
	"bytes"
	"testing"
	"time"
)

// TestAppendMatchesMarshal pins the append-style fast paths (used by the
// pooled handshake engines) to the builder-based Marshal they replaced:
// for every message type, AppendTo must produce the byte-identical
// framing, and parsing the result must round-trip the fields. The
// campaign golden hash depends on this equivalence.
func TestAppendMatchesMarshal(t *testing.T) {
	ch := &ClientHello{
		Suites:      []uint16{SuiteECDHE, SuiteDHE},
		ServerName:  "example.com",
		OfferTicket: true,
		SessionID:   []byte{1, 2, 3, 4},
		Ticket:      []byte("opaque-ticket-bytes"),
	}
	for i := range ch.Random {
		ch.Random[i] = byte(i)
	}
	if got, want := ch.AppendTo(nil), ch.Marshal().Marshal(); !bytes.Equal(got, want) {
		t.Errorf("ClientHello.AppendTo differs from Marshal:\n  got  %x\n  want %x", got, want)
	}
	// No-extension variant exercises the empty-vector backfill.
	plain := &ClientHello{Suites: []uint16{SuiteDHE}}
	if got, want := plain.AppendTo(nil), plain.Marshal().Marshal(); !bytes.Equal(got, want) {
		t.Errorf("bare ClientHello.AppendTo differs from Marshal:\n  got  %x\n  want %x", got, want)
	}

	sh := &ServerHello{Suite: SuiteECDHE, SessionID: []byte{9, 8, 7}, TicketAck: true}
	for i := range sh.Random {
		sh.Random[i] = byte(0xff - i)
	}
	if got, want := sh.AppendTo(nil), sh.Marshal().Marshal(); !bytes.Equal(got, want) {
		t.Errorf("ServerHello.AppendTo differs from Marshal:\n  got  %x\n  want %x", got, want)
	}

	for _, ske := range []*SKE{
		{Kex: KexECDHE, Public: []byte{4, 1, 2, 3}, Sig: []byte("sig")},
		{Kex: KexDHE, P: []byte{0xfe, 0xed}, G: []byte{2}, Public: []byte{5, 6}, Sig: []byte("sg2")},
	} {
		if got, want := ske.AppendTo(nil), ske.Marshal().Marshal(); !bytes.Equal(got, want) {
			t.Errorf("SKE(%v).AppendTo differs from Marshal:\n  got  %x\n  want %x", ske.Kex, got, want)
		}
		cr, sr := []byte("client-random-32................"), []byte("server-random-32................")
		if got, want := ske.AppendSignedParams(nil, cr, sr), ske.SignedParams(cr, sr); !bytes.Equal(got, want) {
			t.Errorf("SKE(%v).AppendSignedParams differs from SignedParams", ske.Kex)
		}
	}

	for _, kex := range []Kex{KexECDHE, KexDHE} {
		pub := []byte{10, 20, 30, 40}
		if got, want := AppendCKE(nil, kex, pub), MarshalCKE(kex, pub).Marshal(); !bytes.Equal(got, want) {
			t.Errorf("AppendCKE(%v) differs from MarshalCKE:\n  got  %x\n  want %x", kex, got, want)
		}
	}

	nst := &NewSessionTicket{LifetimeHint: 2 * time.Hour, Ticket: []byte("ticket-blob")}
	if got, want := nst.AppendTo(nil), nst.Marshal().Marshal(); !bytes.Equal(got, want) {
		t.Errorf("NewSessionTicket.AppendTo differs from Marshal:\n  got  %x\n  want %x", got, want)
	}
}

// TestParseIntoReuse pins the pooled-destination parsers: repeated
// ParseClientHelloInto/ParseServerHelloInto calls into the same struct
// must fully reset state from the previous message.
func TestParseIntoReuse(t *testing.T) {
	full := &ClientHello{
		Suites:      []uint16{SuiteECDHE, SuiteDHE},
		ServerName:  "a.example",
		OfferTicket: true,
		SessionID:   []byte{1, 2},
		Ticket:      []byte("tkt"),
	}
	bare := &ClientHello{Suites: []uint16{SuiteDHE}}

	var dst ClientHello
	if err := ParseClientHelloInto(&dst, full.AppendTo(nil)[4:]); err != nil {
		t.Fatal(err)
	}
	if dst.ServerName != "a.example" || !dst.OfferTicket || len(dst.Suites) != 2 {
		t.Fatalf("full parse lost fields: %+v", dst)
	}
	if err := ParseClientHelloInto(&dst, bare.AppendTo(nil)[4:]); err != nil {
		t.Fatal(err)
	}
	if dst.ServerName != "" || dst.OfferTicket || len(dst.Ticket) != 0 || len(dst.SessionID) != 0 {
		t.Fatalf("reused destination kept stale fields: %+v", dst)
	}
	if len(dst.Suites) != 1 || dst.Suites[0] != SuiteDHE {
		t.Fatalf("suites not reset: %v", dst.Suites)
	}

	shFull := &ServerHello{Suite: SuiteECDHE, SessionID: []byte{1}, TicketAck: true}
	shBare := &ServerHello{Suite: SuiteDHE}
	var sh ServerHello
	if err := ParseServerHelloInto(&sh, shFull.AppendTo(nil)[4:]); err != nil {
		t.Fatal(err)
	}
	if err := ParseServerHelloInto(&sh, shBare.AppendTo(nil)[4:]); err != nil {
		t.Fatal(err)
	}
	if sh.TicketAck || len(sh.SessionID) != 0 || sh.Suite != SuiteDHE {
		t.Fatalf("reused ServerHello kept stale fields: %+v", sh)
	}
}
