// Package tlsserver is the from-scratch TLS 1.2 server state machine: full
// handshakes (ECDHE/DHE), session-ID resumption, RFC 5077 ticket
// resumption with reissue, SNI virtual hosting, and the configurable
// shortcut policies the paper measures — session-cache lifetime, STEK
// rotation, and KEX value reuse.
package tlsserver

import (
	"crypto"
	"crypto/ecdh"
	crand "crypto/rand"
	"crypto/sha256"
	"errors"
	"fmt"
	"hash"
	"io"
	"math/big"
	"net"
	"sync"
	"time"

	"tlsshortcuts/internal/drbg"
	"tlsshortcuts/internal/ffdh"
	"tlsshortcuts/internal/keyex"
	"tlsshortcuts/internal/perf"
	"tlsshortcuts/internal/pki"
	"tlsshortcuts/internal/prf"
	"tlsshortcuts/internal/record"
	"tlsshortcuts/internal/session"
	"tlsshortcuts/internal/simclock"
	"tlsshortcuts/internal/ticket"
	"tlsshortcuts/internal/wire"
)

// Config is one SSL terminator's behavior. The zero value of the policy
// fields is the safest configuration (fresh KEX values, no cache, no
// tickets); the population wires in the shortcuts.
type Config struct {
	Clock simclock.Clock

	// Certificates: SNI name -> cert, with DefaultCert as fallback.
	DefaultCert *pki.Certificate
	Certs       map[string]*pki.Certificate

	// Session tickets. A nil Tickets manager disables tickets entirely.
	Tickets    ticket.Manager
	TicketHint time.Duration

	// Session-ID cache; nil disables ID resumption. Shared instances
	// model cross-domain cache groups.
	Cache *session.Cache

	// Cipher support and KEX reuse policies.
	DisableECDHE bool
	DisableDHE   bool
	ECDHEPolicy  *keyex.Policy
	DHEPolicy    *keyex.Policy

	// RestartBase anchors process-lifetime state (informational).
	RestartBase time.Time

	// Rand supplies all server entropy (hello randoms, IVs, session
	// IDs); nil means crypto/rand.
	Rand io.Reader

	// RandSeed, when non-nil and Rand is nil, makes the terminator's
	// entropy deterministic: each connection draws from a drbg stream
	// keyed by (RandSeed, ClientHello.Random). Campaigns set this so the
	// same study seed replays byte-identical datasets.
	RandSeed []byte

	// Respond maps one application-data record to a response; nil gives
	// a canned HTTP 200.
	Respond func([]byte) []byte
}

func (c *Config) now() time.Time {
	if c.Clock != nil {
		return c.Clock.Now()
	}
	return time.Now()
}

func (c *Config) rand() io.Reader {
	if c.Rand != nil {
		return c.Rand
	}
	return crand.Reader
}

// connRand returns the entropy source for one connection. With RandSeed
// set it is a fresh deterministic stream per ClientHello (the client
// random salts it, so concurrent connections never share a stream).
func (c *Config) connRand(clientRandom []byte) io.Reader {
	if c.Rand != nil {
		return c.Rand
	}
	if c.RandSeed != nil {
		return drbg.New(c.RandSeed, clientRandom)
	}
	return crand.Reader
}

func (c *Config) certFor(sni string) *pki.Certificate {
	if c.Certs != nil {
		if crt, ok := c.Certs[sni]; ok {
			return crt
		}
	}
	return c.DefaultCert
}

// hsConn couples the record layer with a handshake-message reader and the
// running transcript hash.
type hsConn struct {
	rc   *record.Conn
	buf  []byte
	hash hash.Hash // running transcript digest
}

// transcript returns the hash of the handshake messages so far. Sum does
// not disturb the running state, so no copy of the digest is needed.
func (h *hsConn) transcript() []byte {
	return h.hash.Sum(nil)
}

func (h *hsConn) writeMsg(m *wire.Msg) error {
	return h.writeRaw(m.Marshal())
}

// writeRaw sends pre-marshaled handshake bytes (the cert-chain message is
// marshaled once per certificate, not once per connection).
func (h *hsConn) writeRaw(b []byte) error {
	h.hash.Write(b)
	return h.rc.WriteRecord(record.TypeHandshake, b)
}

// readMsg returns the next handshake message; ccs is true when a
// ChangeCipherSpec record arrived instead.
func (h *hsConn) readMsg() (m *wire.Msg, ccs bool, err error) {
	for {
		if len(h.buf) >= 4 {
			n := int(h.buf[1])<<16 | int(h.buf[2])<<8 | int(h.buf[3])
			if len(h.buf) >= 4+n {
				raw := h.buf[:4+n]
				h.buf = h.buf[4+n:]
				h.hash.Write(raw)
				return &wire.Msg{Type: raw[0], Body: raw[4:]}, false, nil
			}
		}
		rec, err := h.rc.ReadRecord()
		if err != nil {
			return nil, false, err
		}
		switch rec.Type {
		case record.TypeHandshake:
			h.buf = append(h.buf, rec.Payload...)
		case record.TypeChangeCipherSpec:
			return nil, true, nil
		case record.TypeAlert:
			return nil, false, alertError(rec.Payload)
		default:
			return nil, false, fmt.Errorf("tls: unexpected record type %d during handshake", rec.Type)
		}
	}
}

func alertError(p []byte) error {
	if len(p) == 2 {
		return fmt.Errorf("tls: received alert %d", p[1])
	}
	return errors.New("tls: received malformed alert")
}

// Serve runs one server-side connection to completion: handshake, then an
// application-data echo loop until the peer closes.
func Serve(conn net.Conn, cfg *Config) error {
	hc := &hsConn{rc: record.NewConn(conn), hash: sha256.New()}
	st, err := handshake(hc, cfg)
	if err != nil {
		return err
	}
	_ = st
	return appLoop(hc.rc, cfg)
}

func appLoop(rc *record.Conn, cfg *Config) error {
	for {
		rec, err := rc.ReadRecord()
		if err != nil {
			if errors.Is(err, io.EOF) || errors.Is(err, io.ErrClosedPipe) || errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		switch rec.Type {
		case record.TypeAppData:
			resp := []byte("HTTP/1.1 200 OK\r\ncontent-length: 3\r\n\r\nok\n")
			if cfg.Respond != nil {
				resp = cfg.Respond(rec.Payload)
			}
			if err := rc.WriteRecord(record.TypeAppData, resp); err != nil {
				return err
			}
		case record.TypeAlert:
			return nil // close_notify
		default:
			return fmt.Errorf("tls: unexpected record type %d", rec.Type)
		}
	}
}

func handshake(hc *hsConn, cfg *Config) (*session.State, error) {
	msg, _, err := hc.readMsg()
	if err != nil {
		return nil, err
	}
	if msg.Type != wire.TypeClientHello {
		return nil, fmt.Errorf("tls: expected ClientHello, got %d", msg.Type)
	}
	ch, err := wire.ParseClientHello(msg.Body)
	if err != nil {
		return nil, err
	}
	now := cfg.now()

	// Ticket resumption?
	if len(ch.Ticket) > 0 && cfg.Tickets != nil {
		if st := cfg.Tickets.OpenTicket(ch.Ticket, now); st != nil && suiteOffered(ch.Suites, st.Suite) {
			return st, resume(hc, cfg, ch, st, now)
		}
	}
	// Session-ID resumption?
	if len(ch.SessionID) > 0 && cfg.Cache != nil {
		if st := cfg.Cache.Get(ch.SessionID, now); st != nil && suiteOffered(ch.Suites, st.Suite) {
			return st, resume(hc, cfg, ch, st, now)
		}
	}
	return full(hc, cfg, ch, now)
}

func suiteOffered(offer []uint16, s uint16) bool {
	for _, o := range offer {
		if o == s {
			return true
		}
	}
	return false
}

func (c *Config) pickSuite(offer []uint16) uint16 {
	for _, s := range offer {
		switch s {
		case wire.SuiteECDHE:
			if !c.DisableECDHE {
				return s
			}
		case wire.SuiteDHE:
			if !c.DisableDHE {
				return s
			}
		}
	}
	return 0
}

func full(hc *hsConn, cfg *Config, ch *wire.ClientHello, now time.Time) (*session.State, error) {
	suite := cfg.pickSuite(ch.Suites)
	if suite == 0 {
		hc.rc.WriteAlert(record.AlertHandshakeFailure)
		return nil, errors.New("tls: no mutually supported cipher suite")
	}
	crt := cfg.certFor(ch.ServerName)
	if crt == nil {
		hc.rc.WriteAlert(record.AlertHandshakeFailure)
		return nil, errors.New("tls: no certificate configured")
	}
	rnd := cfg.connRand(ch.Random[:])

	sh := &wire.ServerHello{Suite: suite}
	if _, err := io.ReadFull(rnd, sh.Random[:]); err != nil {
		return nil, err
	}
	if cfg.Cache != nil {
		sh.SessionID = make([]byte, 32)
		if _, err := io.ReadFull(rnd, sh.SessionID); err != nil {
			return nil, err
		}
	}
	issueTicket := cfg.Tickets != nil && ch.OfferTicket
	sh.TicketAck = issueTicket
	if err := hc.writeMsg(sh.Marshal()); err != nil {
		return nil, err
	}
	if err := hc.writeRaw(certMsgBytes(crt)); err != nil {
		return nil, err
	}

	// ServerKeyExchange with the policy-selected ephemeral value.
	var premasterFn func(clientPub []byte) ([]byte, error)
	ske := &wire.SKE{Kex: wire.SuiteKex(suite)}
	switch ske.Kex {
	case wire.KexECDHE:
		priv, pub, err := keyex.ECDHEKeyPub(cfg.ECDHEPolicy, now, rnd)
		if err != nil {
			return nil, err
		}
		ske.Public = pub
		premasterFn = func(clientPub []byte) ([]byte, error) {
			pk, err := ecdh.P256().NewPublicKey(clientPub)
			if err != nil {
				return nil, err
			}
			return priv.ECDH(pk)
		}
	case wire.KexDHE:
		g := ffdh.TestGroup512()
		priv, pub, err := keyex.DHEKey(g, cfg.DHEPolicy, now, rnd)
		if err != nil {
			return nil, err
		}
		ske.P, ske.G = g.ParamBytes()
		ske.Public = pub
		premasterFn = func(clientPub []byte) ([]byte, error) {
			return g.Shared(priv, new(big.Int).SetBytes(clientPub))
		}
	default:
		hc.rc.WriteAlert(record.AlertHandshakeFailure)
		return nil, fmt.Errorf("tls: unsupported key exchange for suite %04x", suite)
	}
	digest := sha256.Sum256(ske.SignedParams(ch.Random[:], sh.Random[:]))
	sig, err := crt.Key.Sign(rnd, digest[:], crypto.SHA256)
	if err != nil {
		return nil, err
	}
	ske.Sig = sig
	if err := hc.writeMsg(ske.Marshal()); err != nil {
		return nil, err
	}
	if err := hc.writeMsg(&wire.Msg{Type: wire.TypeServerHelloDone}); err != nil {
		return nil, err
	}

	// ClientKeyExchange.
	msg, _, err := hc.readMsg()
	if err != nil {
		return nil, err
	}
	if msg.Type != wire.TypeClientKeyExchange {
		return nil, fmt.Errorf("tls: expected ClientKeyExchange, got %d", msg.Type)
	}
	clientPub, err := wire.ParseCKE(ske.Kex, msg.Body)
	if err != nil {
		return nil, err
	}
	premaster, err := premasterFn(clientPub)
	if err != nil {
		return nil, err
	}
	master := prf.MasterSecret(premaster, ch.Random[:], sh.Random[:])
	ex := prf.NewExpander(master)

	// Client CCS + Finished. Only the read direction is armed here: the
	// NewSessionTicket must still go out in plaintext before our CCS.
	kb := ex.PRF("key expansion", kbSeed(sh.Random[:], ch.Random[:]), 40)
	preFinished := hc.transcript()
	if _, ccs, err := hc.readMsg(); err != nil {
		return nil, err
	} else if !ccs {
		return nil, errors.New("tls: expected ChangeCipherSpec")
	}
	if err := hc.rc.ArmRead(kb[0:16], kb[32:36]); err != nil {
		return nil, err
	}
	fin, _, err := hc.readMsg()
	if err != nil {
		return nil, err
	}
	want := ex.PRF("client finished", preFinished, 12)
	if fin.Type != wire.TypeFinished || !bytesEqual(fin.Body, want) {
		hc.rc.WriteAlert(record.AlertHandshakeFailure)
		return nil, errors.New("tls: bad client Finished")
	}

	st := &session.State{Version: wire.VersionTLS12, Suite: suite, CreatedAt: now}
	copy(st.MasterSecret[:], master)

	if issueTicket {
		if err := sendTicket(hc, cfg, st, now, rnd); err != nil {
			return nil, err
		}
	}
	if cfg.Cache != nil {
		cfg.Cache.Put(sh.SessionID, st, now)
	}
	if err := finishServer(hc, ex, kb); err != nil {
		return nil, err
	}
	return st, nil
}

// resume completes an abbreviated handshake from cached/ticket state.
func resume(hc *hsConn, cfg *Config, ch *wire.ClientHello, st *session.State, now time.Time) error {
	rnd := cfg.connRand(ch.Random[:])
	sh := &wire.ServerHello{Suite: st.Suite, SessionID: ch.SessionID}
	if _, err := io.ReadFull(rnd, sh.Random[:]); err != nil {
		return err
	}
	reissue := cfg.Tickets != nil && ch.OfferTicket
	sh.TicketAck = reissue
	if err := hc.writeMsg(sh.Marshal()); err != nil {
		return err
	}
	if reissue {
		if err := sendTicket(hc, cfg, st, now, rnd); err != nil {
			return err
		}
	}
	ex := prf.NewExpander(st.MasterSecret[:])
	// Server Finished first on resumption.
	preFinished := hc.transcript()
	if err := hc.rc.WriteRecord(record.TypeChangeCipherSpec, []byte{1}); err != nil {
		return err
	}
	kb := ex.PRF("key expansion", kbSeed(sh.Random[:], ch.Random[:]), 40)
	if err := hc.rc.ArmWrite(kb[16:32], kb[36:40]); err != nil {
		return err
	}
	finMsg := &wire.Msg{Type: wire.TypeFinished, Body: ex.PRF("server finished", preFinished, 12)}
	if err := hc.writeMsg(finMsg); err != nil {
		return err
	}
	// Client CCS + Finished.
	if _, ccs, err := hc.readMsg(); err != nil {
		return err
	} else if !ccs {
		return errors.New("tls: expected ChangeCipherSpec")
	}
	if err := hc.rc.ArmRead(kb[0:16], kb[32:36]); err != nil {
		return err
	}
	preClient := hc.transcript()
	fin, _, err := hc.readMsg()
	if err != nil {
		return err
	}
	want := ex.PRF("client finished", preClient, 12)
	if fin.Type != wire.TypeFinished || !bytesEqual(fin.Body, want) {
		return errors.New("tls: bad client Finished on resumption")
	}
	return nil
}

func sendTicket(hc *hsConn, cfg *Config, st *session.State, now time.Time, rnd io.Reader) error {
	k := cfg.Tickets.IssuingKey(now)
	tkt, err := k.Seal(st, rnd)
	if err != nil {
		return err
	}
	hint := cfg.TicketHint
	if hint == 0 {
		hint = 2 * time.Hour
	}
	nst := &wire.NewSessionTicket{LifetimeHint: hint, Ticket: tkt}
	return hc.writeMsg(nst.Marshal())
}

func finishServer(hc *hsConn, ex *prf.Expander, kb []byte) error {
	preFinished := hc.transcript()
	if err := hc.rc.WriteRecord(record.TypeChangeCipherSpec, []byte{1}); err != nil {
		return err
	}
	if err := hc.rc.ArmWrite(kb[16:32], kb[36:40]); err != nil {
		return err
	}
	fin := &wire.Msg{Type: wire.TypeFinished, Body: ex.PRF("server finished", preFinished, 12)}
	return hc.writeMsg(fin)
}

// kbSeed builds the key-expansion seed (server random first, RFC 5246
// §6.3).
func kbSeed(serverRandom, clientRandom []byte) []byte {
	seed := make([]byte, 0, 64)
	seed = append(seed, serverRandom...)
	return append(seed, clientRandom...)
}

// certMsgCache memoizes the marshaled Certificate handshake message per
// certificate pointer. The chain never changes after pki builds it, so
// the bytes are identical on every full handshake that serves it.
var certMsgCache sync.Map // *pki.Certificate -> []byte

func certMsgBytes(crt *pki.Certificate) []byte {
	if !perf.CryptoCaches() {
		return wire.MarshalCertificate(crt.Chain).Marshal()
	}
	if v, ok := certMsgCache.Load(crt); ok {
		return v.([]byte)
	}
	b := wire.MarshalCertificate(crt.Chain).Marshal()
	certMsgCache.Store(crt, b)
	return b
}

func bytesEqual(a, b []byte) bool {
	if len(a) != len(b) {
		return false
	}
	var v byte
	for i := range a {
		v |= a[i] ^ b[i]
	}
	return v == 0
}
