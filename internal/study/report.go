package study

import (
	"fmt"
	"math/bits"
	"sort"
	"strings"
	"sync"
	"time"

	"tlsshortcuts/internal/perf"
	"tlsshortcuts/internal/telemetry"
	"tlsshortcuts/internal/vulnwindow"
)

// Tracker answers span/run questions for one mechanism's secret
// observations (the paper's first-seen/last-seen span metric versus the
// naive consecutive-run metric). Construction precomputes both metrics
// per domain — the report layer queries the same domain once per table,
// figure, and exposure pass.
type Tracker struct {
	spans   map[string]map[string]uint64
	maxSpan map[string]int
	maxRun  map[string]int
}

func newTracker(spans map[string]map[string]uint64) *Tracker {
	t := &Tracker{
		spans:   spans,
		maxSpan: make(map[string]int, len(spans)),
		maxRun:  make(map[string]int, len(spans)),
	}
	for d, ids := range spans {
		t.maxSpan[d] = maxSpanOf(ids)
		t.maxRun[d] = maxRunOf(ids)
	}
	return t
}

func maxSpanOf(ids map[string]uint64) int {
	best := -1
	for _, b := range ids {
		if b == 0 {
			continue
		}
		first := bits.TrailingZeros64(b)
		last := 63 - bits.LeadingZeros64(b)
		if span := last - first; span > best {
			best = span
		}
	}
	return best
}

func maxRunOf(ids map[string]uint64) int {
	best := -1
	for _, b := range ids {
		if b == 0 {
			continue
		}
		// x &= x<<1 clears the tail of every run; the iteration count is
		// the longest run length.
		run := 0
		for x := b; x != 0; x &= x << 1 {
			run++
		}
		if run-1 > best {
			best = run - 1
		}
	}
	return best
}

// MaxSpanDays is the longest last-seen minus first-seen span, in days,
// over the domain's secrets (-1 if the domain was never observed).
func (t *Tracker) MaxSpanDays(domain string) int {
	if v, ok := t.maxSpan[domain]; ok {
		return v
	}
	return maxSpanOf(t.spans[domain])
}

// MaxRunDays is the longest consecutive-day run minus one, over the
// domain's secrets. Always <= MaxSpanDays.
func (t *Tracker) MaxRunDays(domain string) int {
	if v, ok := t.maxRun[domain]; ok {
		return v
	}
	return maxRunOf(t.spans[domain])
}

// CountAtLeast counts domains in pop whose max span is at least days.
func (t *Tracker) CountAtLeast(pop []string, days int) int {
	n := 0
	for _, d := range pop {
		if t.MaxSpanDays(d) >= days {
			n++
		}
	}
	return n
}

// Report is the analysis layer: every paper table/figure regenerates from
// it, plus the §6 exposure classification.
type Report struct {
	DS             *Dataset
	Exposures      []vulnwindow.Exposure
	Classification vulnwindow.Classification

	trackers     map[string]*Tracker
	ticketAccept map[string]time.Duration // measured acceptance tail
	cacheLife    map[string]time.Duration // measured session-ID lifetime
	core         []string                 // consistent core (see ConsistentCore)
}

// reportMemo caches the Report built for a Dataset pointer: analysis
// binaries call BuildReport once per rendering pass, and the build walks
// every span map. Bounded; reset when full.
var (
	reportMu   sync.Mutex
	reportMemo = map[*Dataset]*Report{}
)

const maxReportMemo = 16

// BuildReport computes exposures and windows from a dataset. Repeat calls
// with the same *Dataset return the memoized Report (callers must not
// mutate the dataset afterwards; disable via perf.SetReportMemoized).
func BuildReport(ds *Dataset) *Report {
	if perf.ReportMemoized() {
		reportMu.Lock()
		r, ok := reportMemo[ds]
		reportMu.Unlock()
		if ok {
			return r
		}
	}
	r := buildReport(ds)
	if perf.ReportMemoized() {
		reportMu.Lock()
		if len(reportMemo) >= maxReportMemo {
			reportMemo = map[*Dataset]*Report{}
		}
		reportMemo[ds] = r
		reportMu.Unlock()
	}
	return r
}

func buildReport(ds *Dataset) *Report {
	r := &Report{
		DS: ds,
		trackers: map[string]*Tracker{
			"stek":  newTracker(ds.STEKSpans),
			"dhe":   newTracker(ds.DHESpans),
			"ecdhe": newTracker(ds.ECDHESpans),
		},
		ticketAccept: make(map[string]time.Duration),
		cacheLife:    make(map[string]time.Duration),
		core:         consistentCore(ds),
	}
	for _, pr := range ds.TicketLifetime {
		if pr.OK && pr.ResumedAt1s {
			d := pr.MaxDelay
			if d < time.Second {
				d = time.Second
			}
			r.ticketAccept[pr.Domain] = d
		}
	}
	for _, pr := range ds.IDLifetime {
		if pr.OK && pr.ResumedAt1s {
			d := pr.MaxDelay
			if d < time.Second {
				d = time.Second
			}
			r.cacheLife[pr.Domain] = d
		}
	}
	for _, domain := range r.core {
		n := 0
		if span := r.Tracker("stek").MaxSpanDays(domain); span >= 0 || r.ticketAccept[domain] > 0 {
			if span < 0 {
				span = 0
			}
			r.Exposures = append(r.Exposures, vulnwindow.Exposure{
				Domain: domain, Mechanism: vulnwindow.MechTicket,
				Window: vulnwindow.TicketWindow(span, r.ticketAccept[domain]),
			})
			n++
		}
		if life, ok := r.cacheLife[domain]; ok {
			r.Exposures = append(r.Exposures, vulnwindow.Exposure{
				Domain: domain, Mechanism: vulnwindow.MechCache,
				Window: vulnwindow.CacheWindow(life),
			})
			n++
		}
		for _, mech := range []vulnwindow.Mechanism{vulnwindow.MechDHE, vulnwindow.MechECDHE} {
			if span := r.Tracker(string(mech)).MaxSpanDays(domain); span >= 1 {
				r.Exposures = append(r.Exposures, vulnwindow.Exposure{
					Domain: domain, Mechanism: mech, Window: vulnwindow.KexWindow(span),
				})
				n++
			}
		}
		if n == 0 {
			// No shortcut observed: zero-width window, still classified.
			r.Exposures = append(r.Exposures, vulnwindow.Exposure{
				Domain: domain, Mechanism: vulnwindow.MechCache, Window: 0,
			})
		}
	}
	// Weak-crypto exposures: traffic decryptable without any compromise
	// event (cracked STEK, known-weak prime) is harmed for the full
	// observation, whatever the domain's rotation hygiene says.
	if ds.Crypt != nil {
		for _, domain := range r.core {
			if _, ok := ds.Crypt.Cracked[domain]; ok {
				r.Exposures = append(r.Exposures, vulnwindow.Exposure{
					Domain: domain, Mechanism: vulnwindow.MechWeakSTEK,
					Window: vulnwindow.WeakWindow(ds.Days),
				})
			}
			if _, ok := ds.Crypt.WeakPrime[domain]; ok {
				r.Exposures = append(r.Exposures, vulnwindow.Exposure{
					Domain: domain, Mechanism: vulnwindow.MechFFDHPrime,
					Window: vulnwindow.WeakWindow(ds.Days),
				})
			}
		}
	}
	r.Classification = vulnwindow.Classify(r.Exposures)
	return r
}

// consistentCore filters the trusted core down to the domains whose daily
// ticket scan succeeded on every campaign day — the paper's §3 denominator
// discipline: longevity numbers are computed over domains observed every
// scan day, not over whatever answered on a given day. On a fault-free
// run MissedDays is empty and the consistent core IS the trusted core.
func consistentCore(ds *Dataset) []string {
	if len(ds.MissedDays) == 0 {
		return ds.TrustedCore
	}
	out := make([]string, 0, len(ds.TrustedCore))
	for _, d := range ds.TrustedCore {
		if ds.MissedDays[d] == 0 {
			out = append(out, d)
		}
	}
	return out
}

// ConsistentCore returns the domains observed on every scan day — the
// population every span table, exceedance figure, and exposure
// classification is computed over.
func (r *Report) ConsistentCore() []string { return r.core }

// Tracker returns the named mechanism tracker ("stek", "dhe", "ecdhe").
func (r *Report) Tracker(kind string) *Tracker {
	t, ok := r.trackers[kind]
	if !ok {
		return &Tracker{}
	}
	return t
}

// TLS13Classification projects exposure onto TLS 1.3 draft resumption
// semantics (§8.1): psk_dhe_ke (earlyData=false) removes the
// ticket-driven retrospective windows; 0-RTT early data (earlyData=true)
// keeps today's exposure for the replayed data.
func (r *Report) TLS13Classification(earlyData bool) vulnwindow.Classification {
	if earlyData {
		return r.Classification
	}
	var exps []vulnwindow.Exposure
	seen := make(map[string]bool)
	for _, e := range r.Exposures {
		if e.Mechanism == vulnwindow.MechTicket {
			e.Window = 0
		}
		exps = append(exps, e)
		seen[e.Domain] = true
	}
	return vulnwindow.Classify(exps)
}

// ---- rendering helpers ----

func pct(n, total int) string {
	if total == 0 {
		return "0.0%"
	}
	return fmt.Sprintf("%.1f%%", 100*float64(n)/float64(total))
}

type rankedRow struct {
	domain string
	op     string
	days   int
	rank   int
}

// topSpans lists domains by descending span (ties rank order), over the
// consistent core — a domain missing scan days cannot be credited with a
// continuous span.
func (r *Report) topSpans(kind string, limit int) []rankedRow {
	var rows []rankedRow
	for _, d := range r.core {
		if span := r.Tracker(kind).MaxSpanDays(d); span >= 1 {
			rows = append(rows, rankedRow{d, r.DS.Operators[d], span, r.DS.Ranks[d]})
		}
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].days != rows[j].days {
			return rows[i].days > rows[j].days
		}
		return rows[i].rank < rows[j].rank
	})
	if len(rows) > limit {
		rows = rows[:limit]
	}
	return rows
}

func renderRows(b *strings.Builder, rows []rankedRow) {
	for _, row := range rows {
		fmt.Fprintf(b, "  %-28s rank %-5d operator %-14s span %d days\n",
			row.domain, row.rank, row.op, row.days)
	}
}

// groupLabel is a group's majority operator.
func (r *Report) groupLabel(g []string) string {
	counts := make(map[string]int)
	for _, d := range g {
		counts[r.DS.Operators[d]]++
	}
	best, bestN := "mixed", 0
	for op, n := range counts {
		if n > bestN {
			best, bestN = op, n
		}
	}
	return best
}

func (r *Report) renderGroups(b *strings.Builder, groups [][]string, limit int) {
	for i, g := range groups {
		if i >= limit {
			fmt.Fprintf(b, "  ... %d more groups\n", len(groups)-limit)
			break
		}
		fmt.Fprintf(b, "  group %-2d %5d domains (%s of population)  operator: %s\n",
			i+1, len(g), pct(len(g), len(r.DS.TrustedCore)), r.groupLabel(g))
	}
}

// ---- tables ----

// Table1 is the shortcut-support census.
func (r *Report) Table1() string {
	b := &strings.Builder{}
	ds := r.DS
	fmt.Fprintf(b, "Table 1: crypto shortcut support (day 0, %d domains scanned)\n", ds.TicketSnapshot.Scanned)
	fmt.Fprintf(b, "  Browser trusted:     %d (%s)\n", ds.TicketSnapshot.Trusted, pct(ds.TicketSnapshot.Trusted, ds.TicketSnapshot.Scanned))
	fmt.Fprintf(b, "  Session Tickets:     %d (%s of trusted)\n", ds.TicketSnapshot.Support, pct(ds.TicketSnapshot.Support, ds.TicketSnapshot.Trusted))
	fmt.Fprintf(b, "  Ticket STEK repeat:  %d (%s of trusted)\n", ds.TicketSnapshot.Reuse2x, pct(ds.TicketSnapshot.Reuse2x, ds.TicketSnapshot.Trusted))
	resumed := len(r.cacheLife)
	fmt.Fprintf(b, "  Session ID cache:    %d (%s of trusted core)\n", resumed, pct(resumed, len(ds.TrustedCore)))
	fmt.Fprintf(b, "  DHE support:         %d (%s of trusted)\n", ds.DHESnapshot.Support, pct(ds.DHESnapshot.Support, ds.DHESnapshot.Trusted))
	fmt.Fprintf(b, "  DHE value repeat:    %d\n", ds.DHESnapshot.Reuse2x)
	fmt.Fprintf(b, "  ECDHE support:       %d (%s of trusted)\n", ds.ECDHESnapshot.Support, pct(ds.ECDHESnapshot.Support, ds.ECDHESnapshot.Trusted))
	fmt.Fprintf(b, "  ECDHE value repeat:  %d\n", ds.ECDHESnapshot.Reuse2x)
	if pf := ds.TicketSnapshot.PairFailed + ds.DHESnapshot.PairFailed + ds.ECDHESnapshot.PairFailed; pf > 0 {
		fmt.Fprintf(b, "  pairs excluded (2nd connection failed): ticket %d, dhe %d, ecdhe %d\n",
			ds.TicketSnapshot.PairFailed, ds.DHESnapshot.PairFailed, ds.ECDHESnapshot.PairFailed)
	}
	return b.String()
}

// Table2 ranks the longest-lived STEKs.
func (r *Report) Table2() string {
	b := &strings.Builder{}
	fmt.Fprintln(b, "Table 2: top domains by STEK lifetime (observed span)")
	renderRows(b, r.topSpans("stek", 20))
	return b.String()
}

// Table3 ranks DHE value reuse.
func (r *Report) Table3() string {
	b := &strings.Builder{}
	fmt.Fprintln(b, "Table 3: top domains by DHE key-exchange value reuse")
	renderRows(b, r.topSpans("dhe", 20))
	return b.String()
}

// Table4 ranks ECDHE value reuse.
func (r *Report) Table4() string {
	b := &strings.Builder{}
	fmt.Fprintln(b, "Table 4: top domains by ECDHE key-exchange value reuse")
	renderRows(b, r.topSpans("ecdhe", 20))
	return b.String()
}

// Table5 lists cross-domain session cache groups.
func (r *Report) Table5() string {
	b := &strings.Builder{}
	fmt.Fprintf(b, "Table 5: shared session cache groups (5+5 probe budget): %d groups\n", len(r.DS.CacheGroups))
	r.renderGroups(b, r.DS.CacheGroups, 10)
	return b.String()
}

// Table6 lists shared-STEK groups.
func (r *Report) Table6() string {
	b := &strings.Builder{}
	fmt.Fprintf(b, "Table 6: shared STEK groups: %d groups\n", len(r.DS.STEKGroups))
	r.renderGroups(b, r.DS.STEKGroups, 10)
	return b.String()
}

// Table7 lists shared DH value groups.
func (r *Report) Table7() string {
	b := &strings.Builder{}
	fmt.Fprintf(b, "Table 7: shared DH value groups: %d groups, %d reused-value singletons\n",
		len(r.DS.DHGroups), r.DS.DHSingleton)
	r.renderGroups(b, r.DS.DHGroups, 10)
	return b.String()
}

// ---- figures ----

// Figure1 is the session-ID resumption lifetime distribution.
func (r *Report) Figure1() string {
	b := &strings.Builder{}
	ok, at1s := 0, 0
	buckets := []time.Duration{15 * time.Minute, time.Hour, 6 * time.Hour, 12 * time.Hour, 24 * time.Hour}
	counts := make([]int, len(buckets))
	for _, pr := range r.DS.IDLifetime {
		if !pr.OK {
			continue
		}
		ok++
		if pr.ResumedAt1s {
			at1s++
			for i, th := range buckets {
				if pr.MaxDelay >= th {
					counts[i]++
				}
			}
		}
	}
	fmt.Fprintf(b, "Figure 1: session ID resumption lifetime (%d domains with session IDs)\n", ok)
	fmt.Fprintf(b, "  resumed @1s: %d (%s)\n", at1s, pct(at1s, ok))
	for i, th := range buckets {
		fmt.Fprintf(b, "  still resumable after %-6s %d (%s)\n", th, counts[i], pct(counts[i], ok))
	}
	return b.String()
}

// Figure2 is ticket acceptance lifetime versus the advertised hint.
func (r *Report) Figure2() string {
	b := &strings.Builder{}
	ok, at1s, hinted, beyond := 0, 0, 0, 0
	buckets := []time.Duration{6 * time.Hour, 18 * time.Hour, 24 * time.Hour, 30 * time.Hour}
	counts := make([]int, len(buckets))
	for _, pr := range r.DS.TicketLifetime {
		if !pr.OK {
			continue
		}
		ok++
		if pr.Hint > 0 {
			hinted++
			if pr.MaxDelay > pr.Hint {
				beyond++
			}
		}
		if pr.ResumedAt1s {
			at1s++
			for i, th := range buckets {
				if pr.MaxDelay >= th {
					counts[i]++
				}
			}
		}
	}
	fmt.Fprintf(b, "Figure 2: ticket acceptance lifetime (%d ticket domains)\n", ok)
	fmt.Fprintf(b, "  resumed @1s: %d (%s); lifetime hint advertised by %d, exceeded by %d\n",
		at1s, pct(at1s, ok), hinted, beyond)
	for i, th := range buckets {
		fmt.Fprintf(b, "  accepted after %-6s %d (%s)\n", th, counts[i], pct(counts[i], ok))
	}
	return b.String()
}

// Figure3 is the STEK lifetime exceedance curve.
func (r *Report) Figure3() string {
	b := &strings.Builder{}
	pop := r.core
	tr := r.Tracker("stek")
	fmt.Fprintf(b, "Figure 3: STEK observed lifetime over %d domains\n", len(pop))
	for _, d := range []int{1, 7, 14, 30} {
		n := tr.CountAtLeast(pop, d)
		fmt.Fprintf(b, "  span >= %2dd: %d (%s)\n", d, n, pct(n, len(pop)))
	}
	return b.String()
}

// Figure4 is STEK lifetime by list-rank tier.
func (r *Report) Figure4() string {
	b := &strings.Builder{}
	pop := r.core
	tr := r.Tracker("stek")
	n := len(pop)
	tiers := []struct {
		label string
		lo    int
		hi    int
	}{
		{"Top 100 (scaled)", 0, n / 10},
		{"Mid tier", n / 10, n / 2},
		{"Tail", n / 2, n},
	}
	fmt.Fprintln(b, "Figure 4: 7-day STEK reuse by list rank")
	for _, t := range tiers {
		if t.hi <= t.lo {
			continue
		}
		seg := pop[t.lo:t.hi]
		c := tr.CountAtLeast(seg, 7)
		fmt.Fprintf(b, "  %-18s %d/%d (%s)\n", t.label, c, len(seg), pct(c, len(seg)))
	}
	return b.String()
}

// Figure5 is key-exchange value reuse exceedance.
func (r *Report) Figure5() string {
	b := &strings.Builder{}
	pop := r.core
	fmt.Fprintf(b, "Figure 5: key-exchange value reuse over %d domains\n", len(pop))
	for _, kind := range []string{"dhe", "ecdhe"} {
		tr := r.Tracker(kind)
		fmt.Fprintf(b, "  %-6s >=1d: %d, >=7d: %d, >=30d: %d\n", strings.ToUpper(kind),
			tr.CountAtLeast(pop, 1), tr.CountAtLeast(pop, 7), tr.CountAtLeast(pop, 30))
	}
	return b.String()
}

// Figure6 is the STEK-group treemap (textual).
func (r *Report) Figure6() string {
	b := &strings.Builder{}
	fmt.Fprintln(b, "Figure 6: STEK sharing treemap (group share of population)")
	r.renderGroups(b, r.DS.STEKGroups, 8)
	return b.String()
}

// Figure7 is the cache- and DH-group treemaps (textual).
func (r *Report) Figure7() string {
	b := &strings.Builder{}
	fmt.Fprintln(b, "Figure 7a: session cache sharing treemap")
	r.renderGroups(b, r.DS.CacheGroups, 8)
	fmt.Fprintln(b, "Figure 7b: DH value sharing treemap")
	r.renderGroups(b, r.DS.DHGroups, 8)
	return b.String()
}

// Figure8 is the combined vulnerability-window classification.
func (r *Report) Figure8() string {
	b := &strings.Builder{}
	c := r.Classification
	fmt.Fprintf(b, "Figure 8: combined vulnerability windows (%d domains)\n", c.Total)
	fmt.Fprintf(b, "  window > 24h: %d (%s)\n", c.Over24h, pct(c.Over24h, c.Total))
	fmt.Fprintf(b, "  window > 7d:  %d (%s)\n", c.Over7d, pct(c.Over7d, c.Total))
	fmt.Fprintf(b, "  window > 30d: %d (%s)\n", c.Over30d, pct(c.Over30d, c.Total))
	byMech := make(map[vulnwindow.Mechanism]int)
	for _, e := range r.Exposures {
		if e.Window > 24*time.Hour {
			byMech[e.Mechanism]++
		}
	}
	fmt.Fprintf(b, "  >24h by mechanism: ticket %d, cache %d, dhe %d, ecdhe %d\n",
		byMech[vulnwindow.MechTicket], byMech[vulnwindow.MechCache],
		byMech[vulnwindow.MechDHE], byMech[vulnwindow.MechECDHE])
	return b.String()
}

// FailureTable renders the campaign's scan-failure taxonomy and the
// consistent-core denominator — the §3 discipline of computing longevity
// over domains observed on every scan day, made visible.
func (r *Report) FailureTable() string {
	b := &strings.Builder{}
	ds := r.DS
	fmt.Fprintln(b, "Scan robustness: failure taxonomy and consistent core")
	fmt.Fprintf(b, "  consistent core: %d of %d trusted domains observed on all %d days (%s)\n",
		len(r.core), len(ds.TrustedCore), ds.Days, pct(len(r.core), len(ds.TrustedCore)))
	if fp := ds.FaultPlan; fp != nil {
		fmt.Fprintf(b, "  fault plan: seed %d, refuse %.3f, reset %.3f, stall %.3f, flap %.3f, churn %.3f (<=%dd windows)\n",
			fp.Seed, fp.Refuse, fp.Reset, fp.Stall, fp.Flap, fp.Churn, fp.ChurnMaxDays)
	}
	if len(ds.Failures) == 0 && ds.XDStats == nil {
		fmt.Fprintln(b, "  no scan failures recorded")
		return b.String()
	}
	// Daily first-connection scans have a well-defined attempt count, so
	// those rows carry a rate; pair/lifetime rows are bare counts.
	attempts := map[string]int{
		"ticket": len(ds.Operators) * ds.Days,
		"dhe":    len(ds.TrustedCore) * ds.Days,
		"ecdhe":  len(ds.TrustedCore) * ds.Days,
	}
	// Column widths derive from the rows (not fixed guesses), so every
	// row stays aligned however long the scan and class names grow.
	wScan, wClass := 0, 0
	for _, f := range ds.Failures {
		if len(f.Scan) > wScan {
			wScan = len(f.Scan)
		}
		if len(f.Class) > wClass {
			wClass = len(f.Class)
		}
	}
	for _, f := range ds.Failures {
		if n := attempts[f.Scan]; n > 0 {
			fmt.Fprintf(b, "  %-*s %-*s %6d (%s of %d probes)\n", wScan, f.Scan, wClass, f.Class, f.Count, pct(f.Count, n), n)
		} else {
			fmt.Fprintf(b, "  %-*s %-*s %6d\n", wScan, f.Scan, wClass, f.Class, f.Count)
		}
	}
	if xd := ds.XDStats; xd != nil {
		fmt.Fprintf(b, "  cross-domain: %d probed, %d sessioned, %d init failed, %d probe connections failed\n",
			xd.Probed, xd.Sessioned, xd.InitFailed, xd.ProbeFailed)
	}
	return b.String()
}

// TelemetrySection renders a campaign telemetry snapshot for the end of
// the report: sorted keys, aligned columns, deterministic output for a
// given snapshot regardless of map iteration order. It is a package
// function rather than a Report method because telemetry is run
// instrumentation, not a measurement — it lives beside the Dataset, in
// a telemetry.Registry, never inside it.
func TelemetrySection(s *telemetry.Snapshot) string {
	b := &strings.Builder{}
	fmt.Fprintln(b, "Campaign telemetry (run instrumentation, not a measurement)")
	b.WriteString(s.Render())
	return b.String()
}

// TLS13Outlook summarizes the §8.1 projection.
func (r *Report) TLS13Outlook() string {
	b := &strings.Builder{}
	now := r.Classification
	dhe := r.TLS13Classification(false)
	early := r.TLS13Classification(true)
	fmt.Fprintln(b, "TLS 1.3 outlook (draft-15 resumption semantics):")
	fmt.Fprintf(b, "  today:                >24h window for %d domains (%s)\n", now.Over24h, pct(now.Over24h, now.Total))
	fmt.Fprintf(b, "  psk_dhe_ke (no 0-RTT): %d domains (%s) — ticket windows collapse\n", dhe.Over24h, pct(dhe.Over24h, dhe.Total))
	fmt.Fprintf(b, "  with 0-RTT early data: %d domains (%s) — replayed data keeps today's exposure\n", early.Over24h, pct(early.Over24h, early.Total))
	return b.String()
}

// String renders the full report in paper order.
func (r *Report) String() string {
	sections := []func() string{
		r.FailureTable, r.Table1, r.Figure1, r.Figure2, r.Figure3, r.Figure4, r.Table2,
		r.Figure5, r.Table3, r.Table4, r.Table5, r.Table6, r.Table7,
		r.Figure6, r.Figure7, r.Figure8, r.TLS13Outlook,
	}
	// The cryptanalysis section exists only for weak-crypto campaigns, so
	// baseline reports render byte-identically to pre-cryptanalysis ones.
	if r.DS.Crypt != nil {
		sections = append(sections, r.Cryptanalysis)
	}
	// Likewise the traffic section exists only for traffic-plane runs.
	if r.DS.Traffic != nil {
		sections = append(sections, r.Traffic)
	}
	parts := make([]string, len(sections))
	for i, f := range sections {
		parts[i] = f()
	}
	return strings.Join(parts, "\n")
}
