// Package pki provides the simulated CA hierarchy and root store: real
// x509 certificates (ECDSA P-256 by default, RSA supported) issued by
// simulated roots, and the "browser-trusted" predicate the study's trust
// filter applies (§3 of the paper).
package pki

import (
	"crypto"
	"crypto/ecdsa"
	"crypto/elliptic"
	"crypto/rand"
	"crypto/rsa"
	"crypto/sha256"
	"crypto/x509"
	"crypto/x509/pkix"
	"fmt"
	"io"
	"math/big"
	"sync"
	"time"
)

// Alg selects the leaf/CA signature algorithm.
type Alg int

const (
	ECDSAP256 Alg = iota
	RSA2048
)

// DefaultRand is the entropy source used when callers have no seeded
// stream of their own.
var DefaultRand io.Reader = rand.Reader

// Certificate bundles a leaf with its chain and private key — everything a
// terminator needs to serve it.
type Certificate struct {
	Leaf  *x509.Certificate
	Chain [][]byte // DER, leaf first
	Key   crypto.Signer
}

// RootCA can issue leaves.
type RootCA struct {
	Cert *x509.Certificate
	Key  crypto.Signer

	serial int64
	mu     sync.Mutex
}

func genKey(alg Alg, rnd io.Reader) (crypto.Signer, error) {
	switch alg {
	case RSA2048:
		return rsa.GenerateKey(rnd, 2048)
	default:
		return ecdsa.GenerateKey(elliptic.P256(), rnd)
	}
}

// NewRootCA creates a self-signed root.
func NewRootCA(name string, alg Alg, rnd io.Reader) (*RootCA, error) {
	key, err := genKey(alg, rnd)
	if err != nil {
		return nil, err
	}
	tmpl := &x509.Certificate{
		SerialNumber:          big.NewInt(1),
		Subject:               pkix.Name{CommonName: name},
		NotBefore:             time.Date(2010, 1, 1, 0, 0, 0, 0, time.UTC),
		NotAfter:              time.Date(2040, 1, 1, 0, 0, 0, 0, time.UTC),
		IsCA:                  true,
		BasicConstraintsValid: true,
		KeyUsage:              x509.KeyUsageCertSign,
	}
	der, err := x509.CreateCertificate(rnd, tmpl, tmpl, key.Public(), key)
	if err != nil {
		return nil, err
	}
	cert, err := x509.ParseCertificate(der)
	if err != nil {
		return nil, err
	}
	return &RootCA{Cert: cert, Key: key}, nil
}

// IssueLeaf issues a server certificate for names, valid [nb, na).
func (r *RootCA) IssueLeaf(names []string, alg Alg, nb, na time.Time, rnd io.Reader) (*Certificate, error) {
	if len(names) == 0 {
		return nil, fmt.Errorf("pki: no names")
	}
	key, err := genKey(alg, rnd)
	if err != nil {
		return nil, err
	}
	r.mu.Lock()
	r.serial++
	serial := r.serial
	r.mu.Unlock()
	tmpl := &x509.Certificate{
		SerialNumber: big.NewInt(serial + 1000),
		Subject:      pkix.Name{CommonName: names[0]},
		DNSNames:     names,
		NotBefore:    nb,
		NotAfter:     na,
		KeyUsage:     x509.KeyUsageDigitalSignature,
		ExtKeyUsage:  []x509.ExtKeyUsage{x509.ExtKeyUsageServerAuth},
	}
	der, err := x509.CreateCertificate(rnd, tmpl, r.Cert, key.Public(), r.Key)
	if err != nil {
		return nil, err
	}
	leaf, err := x509.ParseCertificate(der)
	if err != nil {
		return nil, err
	}
	return &Certificate{Leaf: leaf, Chain: [][]byte{der, r.Cert.Raw}, Key: key}, nil
}

// RootStore is the simulated browser trust store.
type RootStore struct {
	pool  *x509.CertPool
	cache sync.Map // [32]byte chain+name fingerprint -> bool
}

// NewRootStore builds a store trusting the given roots.
func NewRootStore(roots ...*RootCA) *RootStore {
	p := x509.NewCertPool()
	for _, r := range roots {
		p.AddCert(r.Cert)
	}
	return &RootStore{pool: p}
}

// Verify reports whether the DER chain is browser-trusted for name at the
// given time. Results are memoized by (leaf, name) — the study re-checks
// the same chain tens of thousands of times.
func (s *RootStore) Verify(chain [][]byte, name string, now time.Time) bool {
	if len(chain) == 0 {
		return false
	}
	h := sha256.New()
	h.Write(chain[0])
	h.Write([]byte(name))
	var key [32]byte
	h.Sum(key[:0])
	if v, ok := s.cache.Load(key); ok {
		return v.(bool)
	}
	ok := s.verify(chain, name, now)
	s.cache.Store(key, ok)
	return ok
}

func (s *RootStore) verify(chain [][]byte, name string, now time.Time) bool {
	leaf, err := x509.ParseCertificate(chain[0])
	if err != nil {
		return false
	}
	inter := x509.NewCertPool()
	for _, der := range chain[1:] {
		if c, err := x509.ParseCertificate(der); err == nil {
			inter.AddCert(c)
		}
	}
	_, err = leaf.Verify(x509.VerifyOptions{
		DNSName:       name,
		Roots:         s.pool,
		Intermediates: inter,
		CurrentTime:   now,
		KeyUsages:     []x509.ExtKeyUsage{x509.ExtKeyUsageServerAuth},
	})
	return err == nil
}
