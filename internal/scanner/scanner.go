// Package scanner implements the measurement client of §3: daily
// two-connection ticket scans (STEK identity via key-name prefixing),
// single-connection key-exchange scans, binary-search-free lifetime
// probes in lockstep virtual time, and the cross-domain session
// resumption probes that map shared session caches.
package scanner

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"io"
	"math/rand"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"tlsshortcuts/internal/drbg"
	"tlsshortcuts/internal/faults"
	"tlsshortcuts/internal/perf"
	"tlsshortcuts/internal/pki"
	"tlsshortcuts/internal/simclock"
	"tlsshortcuts/internal/telemetry"
	"tlsshortcuts/internal/ticket"
	"tlsshortcuts/internal/tlsclient"
	"tlsshortcuts/internal/wire"
)

// Dialer is anything that can open a connection to a domain (in the
// simulation, *simnet.Net).
type Dialer interface {
	Dial(domain string) (net.Conn, error)
}

// ProbeDialer is a Dialer that also accepts the probe's identity label,
// letting the network key per-dial decisions (fault injection, balancer
// choice under a fault plan) on the probe rather than on racy global
// dial order. The scanner uses it when available.
type ProbeDialer interface {
	DialProbe(domain, label string) (net.Conn, error)
}

// StableDialer keys the balancer choice on (domain, label) even with no
// fault plan active. Post-campaign passes use it so the backend they
// land on does not depend on how many dials the campaign already issued
// to the domain — a count that differs between monolithic and sharded
// runs of the same campaign.
type StableDialer interface {
	DialProbeStable(domain, label string) (net.Conn, error)
}

// Topology exposes the AS/IP neighbor lists the cross-domain probes walk.
type Topology interface {
	SameAS(domain string) []string
	SameIP(domain string) []string
}

// Scanner drives measurement connections through a worker pool.
type Scanner struct {
	Dialer  Dialer
	Roots   *pki.RootStore
	Clock   simclock.Clock
	Workers int

	// Seed, when non-nil, makes every connection's client entropy a
	// deterministic function of (Seed, domain, probe label), so a
	// campaign replays byte-identically. nil keeps crypto/rand.
	Seed []byte

	// Timeout bounds each connection in wall time: the scanner arms the
	// conn's read/write deadline so a stalled backend surfaces as a
	// timeout instead of deadlocking a campaign worker forever.
	// 0 means DefaultTimeout; negative disables deadlines.
	Timeout time.Duration

	// Retries is how many times a transiently failed probe (dial /
	// timeout / reset — never alert or protocol, which are deterministic
	// answers) is re-attempted with fresh entropy and a seed-
	// deterministic virtual-clock backoff. 0 means DefaultRetries;
	// negative disables retries.
	Retries int

	// Telemetry, when non-nil, receives per-probe counters and latency
	// histograms. Telemetry observes, never perturbs: a nil registry
	// takes the pre-instrumentation code paths untouched, and an
	// enabled one changes no probe behavior (see internal/telemetry).
	Telemetry *telemetry.Registry

	// latNames caches the rendered per-family histogram names
	// ("wall/scanner/latency/<family>", "scanner/vlatency/<family>");
	// families are bounded but probes are not, and concatenating the
	// names on every probe is a measurable slice of a campaign's
	// allocations.
	latNames sync.Map // metric family -> [2]string{wall, virtual}

	// arenas holds one connection arena per worker slot, grown lazily by
	// ensureArenas before a pool spins up and reused across every scan
	// this Scanner runs. Indexed by the worker ID forEach hands out, so
	// no locking is needed inside a probe.
	arenas []*workerArena
}

// workerArena is one worker's recycled per-connection state: the Config
// rebuilt per probe, the two Captures a two-connection scan fills, and
// the reseedable client-entropy stream. Everything a probe retains past
// the connection (Sessions, Observation bytes) is copied out of the
// arena before the next probe overwrites it.
type workerArena struct {
	cfg  tlsclient.Config
	cap1 tlsclient.Capture
	cap2 tlsclient.Capture
	rng  drbg.Reader
}

// ensureArenas grows the arena table to the worker count. Called before
// goroutines spawn; not safe during a scan.
func (s *Scanner) ensureArenas() {
	for n := s.workers(); len(s.arenas) < n; {
		s.arenas = append(s.arenas, &workerArena{})
	}
}

// arena returns worker w's arena — or a fresh one per call when
// recycling is off, restoring the unpooled allocation behavior.
func (s *Scanner) arena(w int) *workerArena {
	if !perf.ConnRecycling() {
		return &workerArena{}
	}
	return s.arenas[w]
}

// Scan hardening defaults: generous wall-clock deadline (simnet
// handshakes finish in microseconds; only a stalled peer ever reaches
// it) and two retries, matching common active-scan practice.
const (
	DefaultTimeout = 5 * time.Second
	DefaultRetries = 2

	backoffBase = 250 * time.Millisecond
	backoffCap  = 8 * time.Second
)

func (s *Scanner) workers() int {
	if s.Workers > 0 {
		return s.Workers
	}
	return 8
}

func (s *Scanner) timeout() time.Duration {
	switch {
	case s.Timeout > 0:
		return s.Timeout
	case s.Timeout < 0:
		return 0
	}
	return DefaultTimeout
}

func (s *Scanner) retries() int {
	switch {
	case s.Retries > 0:
		return s.Retries
	case s.Retries < 0:
		return 0
	}
	return DefaultRetries
}

// forEach runs fn(w, i) for i in [0,n) on the worker pool, where w is the
// claiming worker's slot (for arena lookup). Workers claim index chunks
// from a shared atomic counter: no dispatcher goroutine, no channel send
// per item — one atomic add per chunk. Chunked claiming trades scheduling
// granularity for locality (a worker's arena stays hot across a run of
// adjacent domains) and fewer contended atomics; results are written to
// out[i] regardless of which worker claims i, so partitioning never shows
// in output — the campaign golden hash is identical for any worker count
// and either claiming mode.
func (s *Scanner) forEach(n int, fn func(w, i int)) {
	workers := s.workers()
	if workers > n {
		workers = n
	}
	s.ensureArenas()
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(0, i)
		}
		return
	}
	chunk := 1
	if perf.ChunkedScheduling() {
		chunk = n / (workers * 4)
		if chunk < 8 {
			chunk = 8
		}
		if chunk > 64 {
			chunk = 64
		}
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				base := int(next.Add(int64(chunk))) - chunk
				if base >= n {
					return
				}
				end := base + chunk
				if end > n {
					end = n
				}
				for i := base; i < end; i++ {
					fn(w, i)
				}
			}
		}()
	}
	wg.Wait()
}

// connect opens one scan connection, retrying transient failures with a
// bounded, seed-deterministic backoff applied on the virtual clock. label
// names the probe (scan kind, day, connection number) so that with a
// seeded scanner each connection — including each retry, which gets a
// "|r<k>" suffix — draws from its own reproducible entropy stream
// regardless of worker scheduling. The returned class is the LAST
// attempt's failure classification (ClassNone on success).
func (s *Scanner) connect(ar *workerArena, dst *tlsclient.Capture, domain, label string, cfg *tlsclient.Config) (faults.ErrClass, error) {
	tel := s.Telemetry
	var mlabel string
	var start time.Time
	if tel != nil {
		mlabel = metricLabel(label)
		tel.Counter(telemetry.CounterProbes).Inc()
		start = time.Now()
	}
	callerRand := cfg.Rand
	var wait time.Duration
	for attempt := 0; ; attempt++ {
		alabel := label
		if attempt > 0 {
			alabel = fmt.Sprintf("%s|r%d", label, attempt)
		}
		if tel != nil {
			tel.Counter(telemetry.CounterHandshakesStarted).Inc()
		}
		class, err := s.connectOnce(ar, dst, domain, alabel, cfg, callerRand, wait)
		if err == nil || attempt >= s.retries() || !faults.Transient(class) {
			if tel != nil {
				elapsed := time.Since(start)
				tel.Counter(telemetry.CounterBusyNanos).Add(uint64(elapsed))
				// Two latency views per probe family: real elapsed time
				// (wall/, scheduling-dependent) and virtual time — the
				// accumulated retry backoff the probe waited out on the
				// virtual timeline, a deterministic function of the plan.
				names := s.latencyNames(mlabel)
				tel.Histogram(names[0]).Observe(elapsed)
				tel.Histogram(names[1]).Observe(wait)
				if err != nil {
					tel.Counter(telemetry.CounterProbeFailures).Inc()
					tel.Counter(telemetry.CounterErrorPrefix + string(class)).Inc()
				} else {
					tel.Counter(telemetry.CounterHandshakesCompleted).Inc()
				}
			}
			return class, err
		}
		if tel != nil {
			tel.Counter(telemetry.CounterRetries).Inc()
			tel.Counter(telemetry.CounterRetryClassPrefix + string(class)).Inc()
		}
		wait += s.backoff(domain, label, attempt)
	}
}

// latencyNames returns the cached histogram names for a probe family.
func (s *Scanner) latencyNames(family string) [2]string {
	if v, ok := s.latNames.Load(family); ok {
		return v.([2]string)
	}
	names := [2]string{"wall/scanner/latency/" + family, "scanner/vlatency/" + family}
	s.latNames.Store(family, names)
	return names
}

// metricLabel reduces a probe label to its first two |-separated
// segments ("daily|ticket|3|1" → "daily|ticket", "lt|id|poll|7200" →
// "lt|id") so per-family histograms stay bounded instead of growing one
// series per scan day and poll step.
func metricLabel(label string) string {
	sep := 0
	for i := 0; i < len(label); i++ {
		if label[i] == '|' {
			sep++
			if sep == 2 {
				return label[:i]
			}
		}
	}
	return label
}

// connectOnce opens a single connection attempt. wait is the accumulated
// retry backoff: rather than mutating the shared lockstep clock (which
// would race against other workers and shift every concurrent probe), the
// attempt sees a per-connection offset view of virtual time.
func (s *Scanner) connectOnce(ar *workerArena, dst *tlsclient.Capture, domain, label string, cfg *tlsclient.Config, callerRand io.Reader, wait time.Duration) (faults.ErrClass, error) {
	var conn net.Conn
	var err error
	if pd, ok := s.Dialer.(ProbeDialer); ok {
		conn, err = pd.DialProbe(domain, label)
	} else {
		conn, err = s.Dialer.Dial(domain)
	}
	if err != nil {
		return faults.ClassDial, err
	}
	defer conn.Close()
	if t := s.timeout(); t > 0 {
		_ = conn.SetDeadline(time.Now().Add(t))
	}
	cfg.ServerName = domain
	cfg.Clock = s.Clock
	if wait > 0 && s.Clock != nil {
		cfg.Clock = offsetClock{base: s.Clock, off: wait}
	}
	cfg.Roots = s.Roots
	cfg.ReuseKex = true
	cfg.Rand = callerRand
	if callerRand == nil && s.Seed != nil {
		if perf.ConnRecycling() {
			// Same stream as a fresh NewParts reader, reseeded in place.
			ar.rng.ReseedParts(s.Seed, domain, label)
			cfg.Rand = &ar.rng
		} else {
			cfg.Rand = drbg.NewParts(s.Seed, domain, label)
		}
	}
	if err := tlsclient.HandshakeInto(dst, conn, cfg); err != nil {
		return faults.Classify(err), err
	}
	return faults.ClassNone, nil
}

// backoff derives attempt k's virtual-time delay: exponential from
// backoffBase with seed-deterministic jitter, capped at backoffCap.
func (s *Scanner) backoff(domain, label string, attempt int) time.Duration {
	d := backoffBase << uint(attempt)
	if d > backoffCap {
		d = backoffCap
	}
	if s.Seed != nil {
		var jb [8]byte
		r := drbg.New(s.Seed, []byte(domain), []byte(label), []byte(fmt.Sprintf("backoff|%d", attempt)))
		_, _ = io.ReadFull(r, jb[:])
		d += time.Duration(binary.BigEndian.Uint64(jb[:]) % uint64(backoffBase))
	}
	return d
}

// offsetClock shifts a base clock by a fixed amount for one connection,
// so a retried probe "waits out" its backoff on the virtual timeline
// without touching the shared clock other workers are synchronized on.
type offsetClock struct {
	base simclock.Clock
	off  time.Duration
}

// Now returns the shifted virtual time.
func (c offsetClock) Now() time.Time { return c.base.Now().Add(c.off) }

// Observation is one domain's result from a daily scan.
type Observation struct {
	Domain       string
	Day          int
	OK           bool
	Trusted      bool
	Suite        uint16
	Kex          wire.Kex
	KEXValue     []byte // server key-exchange public value, first connection
	KEXValue2    []byte // second connection (key-exchange scans only)
	TicketIssued bool
	LifetimeHint time.Duration
	STEKID       []byte // stable ticket-key ID from the two-connection scan
	Err          error  `json:"-"`

	// ErrClass classifies the first connection's failure; ErrClass2 the
	// second (STEK-pair or KEX-reuse) connection's. A failed second
	// connection is NOT the same observation as "no reuse seen" — the
	// study excludes such pairs from reuse denominators.
	ErrClass  faults.ErrClass `json:",omitempty"`
	ErrClass2 faults.ErrClass `json:",omitempty"`

	// Inline backing arrays for KEXValue/KEXValue2/STEKID (heap fallback
	// for oversized values): the Captures those slices used to alias are
	// arena-recycled between probes. An Observation copied by value keeps
	// aliasing the source element's arrays, which is fine for the
	// fold-per-day aggregation (it hex-encodes what it keeps) but means
	// observations must be consumed before their slice is reused.
	kexb1, kexb2 [72]byte
	stekb        [20]byte
}

// obsBytes copies b into an observation's inline storage, falling back
// to the heap when oversized; nil stays nil.
func obsBytes(dst, b []byte) []byte {
	if b == nil {
		return nil
	}
	if len(b) <= len(dst) {
		return dst[:copy(dst, b)]
	}
	return append([]byte(nil), b...)
}

// Daily scans each domain once for the given virtual day. With
// offerTicket set it makes the paper's two back-to-back ticket
// connections and derives the STEK ID from the pair; with a non-nil
// suite list it restricts the offered suites (key-exchange scans) and
// makes two connections to detect server value reuse.
func (s *Scanner) Daily(domains []string, day int, suites []uint16, offerTicket bool) []Observation {
	return s.DailyInto(nil, domains, day, suites, offerTicket)
}

// DailyInto is Daily writing into dst's storage (grown as needed), so a
// campaign folding each day's observations as the day completes can
// reuse one buffer for the whole run instead of retaining per-day
// slices — the incremental-aggregation half of the sharding work.
func (s *Scanner) DailyInto(dst []Observation, domains []string, day int, suites []uint16, offerTicket bool) []Observation {
	kind := "plain"
	switch {
	case offerTicket:
		kind = "ticket"
	case len(suites) > 0:
		kind = fmt.Sprintf("kex%04x", suites[0])
	}
	// Forced-suite scans only record what precedes the client's second
	// flight, so they capture the SKE and disconnect (see perf.KexOnlyProbes).
	kexOnly := len(suites) > 0 && !offerTicket && perf.KexOnlyProbes()
	// Probe labels depend only on (kind, day), never on the domain — the
	// domain salts the entropy stream inside connect — so they are built
	// once per scan, not once per connection.
	l1 := fmt.Sprintf("daily|%s|%d|1", kind, day)
	l2 := fmt.Sprintf("daily|%s|%d|2", kind, day)
	out := dst[:0]
	if cap(out) < len(domains) {
		out = make([]Observation, len(domains))
	} else {
		out = out[:len(domains)]
		clear(out)
	}
	s.forEach(len(domains), func(w, i int) {
		ar := s.arena(w)
		o := &out[i]
		o.Domain = domains[i]
		o.Day = day
		cfg := &ar.cfg
		*cfg = tlsclient.Config{Suites: suites, OfferTicket: offerTicket, KexOnly: kexOnly}
		cap1 := &ar.cap1
		class, err := s.connect(ar, cap1, domains[i], l1, cfg)
		if err != nil {
			o.Err = err
			o.ErrClass = class
			return
		}
		o.OK = true
		o.Trusted = cap1.Trusted
		o.Suite = cap1.CipherSuite
		o.Kex = cap1.KexAlg
		o.KEXValue = obsBytes(o.kexb1[:], cap1.ServerKEXValue)
		o.TicketIssued = cap1.TicketIssued
		o.LifetimeHint = cap1.LifetimeHint
		if offerTicket && cap1.TicketIssued {
			*cfg = tlsclient.Config{Suites: suites, OfferTicket: true}
			class2, err := s.connect(ar, &ar.cap2, domains[i], l2, cfg)
			switch {
			case err != nil:
				o.ErrClass2 = class2
			case ar.cap2.TicketIssued:
				o.STEKID = obsBytes(o.stekb[:], ticket.DetectKeyID(cap1.Ticket, ar.cap2.Ticket))
			}
		} else if suites != nil {
			*cfg = tlsclient.Config{Suites: suites, KexOnly: kexOnly}
			class2, err := s.connect(ar, &ar.cap2, domains[i], l2, cfg)
			if err != nil {
				o.ErrClass2 = class2
			} else {
				o.KEXValue2 = obsBytes(o.kexb2[:], ar.cap2.ServerKEXValue)
			}
		}
	})
	return out
}

// ProbeResult is one domain's lifetime-probe outcome.
type ProbeResult struct {
	Domain      string
	OK          bool          // initial handshake succeeded and produced a session
	ResumedAt1s bool          // the 1-second sanity resumption succeeded
	MaxDelay    time.Duration // longest delay at which resumption still worked
	Hint        time.Duration // server's ticket lifetime hint, if any

	// ErrClass classifies the initial handshake's failure when OK is
	// false for a network reason (empty for a clean "no session issued").
	ErrClass faults.ErrClass `json:",omitempty"`
}

// LifetimeProbe measures how long sessions stay resumable (§3, Figures
// 1-2). All targets are probed in lockstep on the shared virtual clock:
// an initial handshake, a 1 s sanity resumption, then polls every poll up
// to max, stopping each domain at its first failed resumption. Resumption
// always replays the ORIGINAL session, so the result measures the
// server-side lifetime of the first secret, not a sliding refresh.
func (s *Scanner) LifetimeProbe(targets []string, useTicket bool, poll, max time.Duration) []ProbeResult {
	clock, ok := s.Clock.(*simclock.Manual)
	if !ok {
		panic("scanner: LifetimeProbe requires a *simclock.Manual clock")
	}
	mode := "id"
	if useTicket {
		mode = "ticket"
	}
	start := clock.Now()
	out := make([]ProbeResult, len(targets))
	sessions := make([]*tlsclient.Session, len(targets))
	s.forEach(len(targets), func(w, i int) {
		ar := s.arena(w)
		out[i].Domain = targets[i]
		cfg := &ar.cfg
		*cfg = tlsclient.Config{OfferTicket: useTicket}
		cap1 := &ar.cap1
		class, err := s.connect(ar, cap1, targets[i], "lt|"+mode+"|init", cfg)
		if err != nil {
			out[i].ErrClass = class
			return
		}
		if useTicket && !cap1.TicketIssued {
			return
		}
		if !useTicket && len(cap1.SessionID) == 0 {
			return
		}
		out[i].OK = true
		out[i].Hint = cap1.LifetimeHint
		// Sessions own their bytes and are heap-allocated per handshake,
		// so retaining them past the arena Capture's recycling is safe.
		sessions[i] = cap1.Session
	})

	alive := make([]bool, len(targets))
	probe := func(ar *workerArena, i int, label string) bool {
		cfg := &ar.cfg
		*cfg = tlsclient.Config{Resume: sessions[i], ResumeViaTicket: useTicket}
		_, err := s.connect(ar, &ar.cap2, targets[i], label, cfg)
		return err == nil && ar.cap2.Resumed
	}

	clock.Set(start.Add(time.Second))
	s.forEach(len(targets), func(w, i int) {
		if out[i].OK && probe(s.arena(w), i, "lt|"+mode+"|1s") {
			out[i].ResumedAt1s = true
			alive[i] = true
		}
	})
	for d := poll; d <= max; d += poll {
		clock.Set(start.Add(d))
		label := fmt.Sprintf("lt|%s|poll|%d", mode, int64(d/time.Second))
		any := false
		s.forEach(len(targets), func(w, i int) {
			if !alive[i] {
				return
			}
			if probe(s.arena(w), i, label) {
				out[i].MaxDelay = d
			} else {
				alive[i] = false
			}
		})
		for i := range alive {
			if alive[i] {
				any = true
				break
			}
		}
		if !any {
			break
		}
	}
	clock.Set(start)
	return out
}

// XDStats counts the cross-domain pass's denominators, so failed probes
// are distinguishable from genuinely unshared caches.
type XDStats struct {
	Probed      int // targets probed
	Sessioned   int // targets whose initial handshake produced a session ID
	InitFailed  int // targets whose initial handshake failed
	ProbeFailed int // candidate resumption connections that failed
}

// CrossDomainGroups maps shared session caches (§5, Table 5): for each
// target it establishes a session, then tries to resume it against up to
// nAS same-AS and nIP same-IP neighbors, unioning every pair that accepts
// a foreign session ID. Candidates are a prefix of a per-domain seeded
// shuffle, so a larger budget strictly extends a smaller one.
func (s *Scanner) CrossDomainGroups(targets []string, topo Topology, nAS, nIP int) (*UnionFind, XDStats) {
	return s.CrossDomainGroupsIn(targets, targets, topo, nAS, nIP)
}

// CrossDomainGroupsIn is CrossDomainGroups with the initiator set split
// from the candidate population: only initiators establish sessions and
// walk their neighbors, but candidacy is judged against pop. A sharded
// campaign passes its core slice as initiators and the FULL trusted core
// as pop, so a shard discovers exactly the edges whose initiating domain
// it owns — the union of all shards' edges is the monolithic edge set.
func (s *Scanner) CrossDomainGroupsIn(initiators, pop []string, topo Topology, nAS, nIP int) (*UnionFind, XDStats) {
	targets := initiators
	inPop := make(map[string]bool, len(pop))
	for _, d := range pop {
		inPop[d] = true
	}
	uf := NewUnionFind()
	st := XDStats{Probed: len(targets)}
	var mu sync.Mutex
	s.forEach(len(targets), func(w, i int) {
		ar := s.arena(w)
		domain := targets[i]
		cfg := &ar.cfg
		*cfg = tlsclient.Config{}
		if _, err := s.connect(ar, &ar.cap1, domain, "xd|init", cfg); err != nil {
			mu.Lock()
			st.InitFailed++
			mu.Unlock()
			return
		}
		if len(ar.cap1.SessionID) == 0 {
			return
		}
		mu.Lock()
		// Seed the union-find with every sessioned domain: Sets() then
		// includes singletons, so "shares with nobody" is a group of one
		// and is distinguishable from "handshake failed".
		uf.Find(domain)
		st.Sessioned++
		mu.Unlock()
		// The candidate probes below recycle cap1, so hold the session
		// (heap-allocated, owns its bytes) rather than the Capture.
		sess := ar.cap1.Session
		cands := seededPrefix(domain, topo.SameAS(domain), nAS)
		cands = append(cands, seededPrefix(domain, topo.SameIP(domain), nIP)...)
		seen := map[string]bool{domain: true}
		for _, cand := range cands {
			if seen[cand] || !inPop[cand] {
				continue
			}
			seen[cand] = true
			*cfg = tlsclient.Config{Resume: sess}
			if _, err := s.connect(ar, &ar.cap2, cand, "xd|probe|"+domain, cfg); err != nil {
				mu.Lock()
				st.ProbeFailed++
				mu.Unlock()
				continue
			}
			if ar.cap2.Resumed {
				mu.Lock()
				uf.Union(domain, cand)
				mu.Unlock()
			}
		}
	})
	return uf, st
}

// seededPrefix returns the first n elements of a deterministic per-domain
// shuffle of list. Only the first n draws of a Fisher-Yates pass run, so
// the cost is O(n) rather than O(len(list)); the selection is still a
// prefix of the same infinite shuffle, so a larger budget strictly
// extends a smaller one.
func seededPrefix(domain string, list []string, n int) []string {
	if len(list) == 0 || n <= 0 {
		return nil
	}
	h := fnv.New64a()
	h.Write([]byte(domain))
	rng := rand.New(rand.NewSource(int64(h.Sum64())))
	shuffled := append([]string(nil), list...)
	if n > len(shuffled) {
		n = len(shuffled)
	}
	for i := 0; i < n && i < len(shuffled)-1; i++ {
		j := i + rng.Intn(len(shuffled)-i)
		shuffled[i], shuffled[j] = shuffled[j], shuffled[i]
	}
	return shuffled[:n]
}

// UnionFind tracks connected components of domain names.
type UnionFind struct {
	parent map[string]string
	size   map[string]int
}

// NewUnionFind returns an empty structure.
func NewUnionFind() *UnionFind {
	return &UnionFind{parent: make(map[string]string), size: make(map[string]int)}
}

// Find returns the component representative, adding x if unseen. The walk
// is iterative with full path compression — the recursive version could
// exhaust the stack on adversarially long chains, and compressing keeps
// repeated queries near O(1).
func (u *UnionFind) Find(x string) string {
	if _, ok := u.parent[x]; !ok {
		u.parent[x] = x
		u.size[x] = 1
		return x
	}
	root := x
	for {
		p := u.parent[root]
		if p == root {
			break
		}
		root = p
	}
	for x != root {
		x, u.parent[x] = u.parent[x], root
	}
	return root
}

// Union merges the components of a and b, attaching the smaller tree
// under the larger (Sets canonicalizes output, so representative choice
// never shows in results).
func (u *UnionFind) Union(a, b string) {
	ra, rb := u.Find(a), u.Find(b)
	if ra == rb {
		return
	}
	if u.size[ra] < u.size[rb] {
		ra, rb = rb, ra
	}
	u.parent[rb] = ra
	u.size[ra] += u.size[rb]
}

// Sets returns the components, each sorted, largest first.
func (u *UnionFind) Sets() [][]string {
	groups := make(map[string][]string)
	for x := range u.parent {
		r := u.Find(x)
		groups[r] = append(groups[r], x)
	}
	out := make([][]string, 0, len(groups))
	for _, g := range groups {
		sort.Strings(g)
		out = append(out, g)
	}
	sort.Slice(out, func(i, j int) bool {
		if len(out[i]) != len(out[j]) {
			return len(out[i]) > len(out[j])
		}
		return out[i][0] < out[j][0]
	})
	return out
}
