package obsv

import (
	"sync"
	"sync/atomic"
)

// broadcaster fans progress payloads out to SSE subscribers without
// ever blocking the publisher: the scan loop's ticker publishes with a
// non-blocking send per subscriber, and a subscriber that cannot keep
// up loses events — each miss is counted, per subscriber and globally,
// so dropped work is accounted for rather than silently vanishing.
type broadcaster struct {
	mu        sync.Mutex
	subs      map[*subscriber]struct{}
	published atomic.Uint64
	dropped   atomic.Uint64
}

// subscriber is one attached stream consumer. targeted counts the
// publishes attempted at it while subscribed; delivered + dropped ==
// targeted always (the accounting the churn race test pins).
type subscriber struct {
	ch        chan []byte
	targeted  atomic.Uint64
	delivered atomic.Uint64
	dropped   atomic.Uint64
}

func newBroadcaster() *broadcaster {
	return &broadcaster{subs: make(map[*subscriber]struct{})}
}

// publish delivers msg to every current subscriber, dropping (and
// counting) for any whose buffer is full. Never blocks.
func (b *broadcaster) publish(msg []byte) {
	b.published.Add(1)
	b.mu.Lock()
	defer b.mu.Unlock()
	for s := range b.subs {
		s.targeted.Add(1)
		select {
		case s.ch <- msg:
			s.delivered.Add(1)
		default:
			s.dropped.Add(1)
			b.dropped.Add(1)
		}
	}
}

// subscribe attaches a new consumer with the given channel buffer.
func (b *broadcaster) subscribe(buf int) *subscriber {
	if buf < 1 {
		buf = 8
	}
	s := &subscriber{ch: make(chan []byte, buf)}
	b.mu.Lock()
	b.subs[s] = struct{}{}
	b.mu.Unlock()
	return s
}

// unsubscribe detaches s; its channel is left open (the reader drains
// or abandons it), so a concurrent publish can never panic on send.
func (b *broadcaster) unsubscribe(s *subscriber) {
	b.mu.Lock()
	delete(b.subs, s)
	b.mu.Unlock()
}

// counts reports the broadcaster's lifetime publish/drop totals and the
// current subscriber count.
func (b *broadcaster) counts() (published, dropped uint64, subscribers int) {
	b.mu.Lock()
	n := len(b.subs)
	b.mu.Unlock()
	return b.published.Load(), b.dropped.Load(), n
}
