package traffic

import (
	"fmt"
	"time"
)

// DomainTally is the per-domain traffic volume a policy's users put on
// the wire: completed connections and application bytes (request +
// response). It is the raw, mergeable unit the window join is computed
// from.
type DomainTally struct {
	Conns uint64
	Bytes uint64
}

// ChainLenBuckets labels the chain-length histogram cells of
// PolicyStats.ChainLen: how many connections one unbroken resumption
// lineage linked.
var ChainLenBuckets = [7]string{"1", "2", "3", "4", "5-8", "9-16", "17+"}

// ChainDurBuckets labels the tracking-duration histogram cells of
// PolicyStats.ChainDur (first to last linked connection, virtual time).
var ChainDurBuckets = [6]string{"<1h", "1-6h", "6-24h", "1-3d", "3-7d", ">=7d"}

func chainLenBucket(n uint64) int {
	switch {
	case n <= 4:
		return int(n) - 1
	case n <= 8:
		return 4
	case n <= 16:
		return 5
	default:
		return 6
	}
}

func chainDurBucket(d time.Duration) int {
	day := 24 * time.Hour
	switch {
	case d < time.Hour:
		return 0
	case d < 6*time.Hour:
		return 1
	case d < day:
		return 2
	case d < 3*day:
		return 3
	case d < 7*day:
		return 4
	default:
		return 5
	}
}

// PolicyStats aggregates everything the traffic plane measured for the
// users of one browser policy. All fields are sums or maxes over
// per-user sequential histories, so stats from disjoint user sets
// (workers, shards) merge by addition / max into exactly the monolithic
// result.
type PolicyStats struct {
	Policy Policy
	// Users is how many users of this shard drew the policy.
	Users int

	// Conns counts completed connections; Failed counts dial/handshake
	// failures (a failed visit leaves the user's session state alone).
	Conns  uint64
	Failed uint64
	// Bytes is application payload carried over completed connections.
	Bytes uint64

	// Full/Resumed split completed connections by handshake kind;
	// Resumed splits further by mechanism.
	Full          uint64
	Resumed       uint64
	ResumedTicket uint64
	ResumedID     uint64
	// CrossHostResumes counts resumptions where the offered session was
	// stored for a different hostname of the same operator and the
	// server accepted it — a cross-domain link event.
	CrossHostResumes uint64
	// Dropped counts stored sessions found dead on re-touch (expired by
	// policy lifetime or ticket hint, or LRU-evicted by the cache cap).
	Dropped uint64

	// Chains counts closed tracking chains. Every completed connection
	// belongs to exactly one chain (an unresumed visit is a chain of
	// length 1), so the ChainLen histogram masses sum to Conns.
	Chains uint64
	// CrossChains counts chains that spanned more than one hostname.
	CrossChains uint64
	ChainLen    [7]uint64
	ChainDur    [6]uint64
	// TrackSeconds sums each chain's tracked span (last minus first
	// linked connection); UnlinkSeconds adds the final session's
	// effective lifetime — the time-to-unlinkability of Sy et al.
	TrackSeconds  uint64
	UnlinkSeconds uint64
	MaxChainLen   uint64
	// MaxUnlinkSeconds is the longest single time-to-unlinkability.
	MaxUnlinkSeconds uint64

	// Domains is the per-domain connection/byte tally the vulnerability
	// window join consumes.
	Domains map[string]DomainTally
}

// add folds b's tallies into a (Policy and Users are the caller's
// concern). Addition/max only, so any grouping of disjoint user sets
// folds to the same totals.
func (a *PolicyStats) add(b *PolicyStats) {
	a.Conns += b.Conns
	a.Failed += b.Failed
	a.Bytes += b.Bytes
	a.Full += b.Full
	a.Resumed += b.Resumed
	a.ResumedTicket += b.ResumedTicket
	a.ResumedID += b.ResumedID
	a.CrossHostResumes += b.CrossHostResumes
	a.Dropped += b.Dropped
	a.Chains += b.Chains
	a.CrossChains += b.CrossChains
	for j := range a.ChainLen {
		a.ChainLen[j] += b.ChainLen[j]
	}
	for j := range a.ChainDur {
		a.ChainDur[j] += b.ChainDur[j]
	}
	a.TrackSeconds += b.TrackSeconds
	a.UnlinkSeconds += b.UnlinkSeconds
	if b.MaxChainLen > a.MaxChainLen {
		a.MaxChainLen = b.MaxChainLen
	}
	if b.MaxUnlinkSeconds > a.MaxUnlinkSeconds {
		a.MaxUnlinkSeconds = b.MaxUnlinkSeconds
	}
	if len(b.Domains) > 0 && a.Domains == nil {
		a.Domains = make(map[string]DomainTally, len(b.Domains))
	}
	for d, t := range b.Domains {
		at := a.Domains[d]
		at.Conns += t.Conns
		at.Bytes += t.Bytes
		a.Domains[d] = at
	}
}

// Buckets classifies a traffic volume (connections or bytes) against
// the per-domain combined vulnerability windows: how much landed at a
// domain with any window at all, and at domains whose window exceeds
// the paper's headline thresholds.
type Buckets struct {
	Total    uint64
	InWindow uint64
	Over24h  uint64
	Over7d   uint64
	Over30d  uint64
}

func (b *Buckets) add(n uint64, w time.Duration) {
	b.Total += n
	if w <= 0 {
		return
	}
	b.InWindow += n
	// Same strict cut points vulnwindow.Classification buckets by.
	if w > 24*time.Hour {
		b.Over24h += n
	}
	if w > 7*24*time.Hour {
		b.Over7d += n
	}
	if w > 30*24*time.Hour {
		b.Over30d += n
	}
}

// Frac returns n as a fraction of Total (0 when Total is 0).
func (b Buckets) Frac(n uint64) float64 {
	if b.Total == 0 {
		return 0
	}
	return float64(n) / float64(b.Total)
}

// PolicyJoin is one policy's share of the window join.
type PolicyJoin struct {
	Policy      string
	Connections Buckets
	Bytes       Buckets
}

// Join is the measured-exposure join: real traffic-plane connections
// and bytes classified against the per-domain combined vulnerability
// windows of the same campaign (§6's windows applied to measured rather
// than hypothetical traffic). It is recomputed from the raw Domains
// tallies wherever windows are known — per shard, and again after a
// shard merge against the merged windows — never merged directly.
type Join struct {
	Connections Buckets
	Bytes       Buckets
	PerPolicy   []PolicyJoin
}

// Results is the traffic plane's dataset contribution.
type Results struct {
	// Users/Days/Seed/MeanVisits/CrossHost echo the workload config so
	// shard merges can verify the shards ran the same workload.
	Users      int
	Days       int
	Seed       int64
	MeanVisits float64
	CrossHost  float64

	// Policies carries per-policy stats in policy-table order.
	Policies []PolicyStats

	// Join is filled in by ComputeJoin once vulnerability windows are
	// known; it is derived state, not merged.
	Join *Join `json:",omitempty"`
}

// Conns returns total completed connections across policies.
func (r *Results) Conns() uint64 {
	var n uint64
	for i := range r.Policies {
		n += r.Policies[i].Conns
	}
	return n
}

// Merge folds other (a disjoint user shard of the same workload) into
// r. Join is cleared: it must be recomputed against the merged
// campaign's windows.
func (r *Results) Merge(other *Results) error {
	if r.Users != other.Users || r.Days != other.Days || r.Seed != other.Seed ||
		r.MeanVisits != other.MeanVisits || r.CrossHost != other.CrossHost {
		return fmt.Errorf("traffic: merging shards with different workload configs")
	}
	if len(r.Policies) != len(other.Policies) {
		return fmt.Errorf("traffic: merging shards with different policy tables")
	}
	for i := range r.Policies {
		a, b := &r.Policies[i], &other.Policies[i]
		if a.Policy != b.Policy {
			return fmt.Errorf("traffic: policy table mismatch at %d: %q vs %q",
				i, a.Policy.Name, b.Policy.Name)
		}
		a.Users += b.Users
		a.add(b)
	}
	r.Join = nil
	return nil
}

// ComputeJoin classifies the measured per-domain traffic against the
// per-domain combined vulnerability windows (vulnwindow.Combine output)
// and stores the join on r. Joining is a pure function of the raw
// tallies and the window map, so a merged dataset's join equals the
// monolithic one.
func ComputeJoin(r *Results, windows map[string]time.Duration) {
	if r == nil {
		return
	}
	j := &Join{PerPolicy: make([]PolicyJoin, 0, len(r.Policies))}
	for i := range r.Policies {
		ps := &r.Policies[i]
		pj := PolicyJoin{Policy: ps.Policy.Name}
		for d, t := range ps.Domains {
			w := windows[d]
			pj.Connections.add(t.Conns, w)
			pj.Bytes.add(t.Bytes, w)
		}
		j.Connections.Total += pj.Connections.Total
		j.Connections.InWindow += pj.Connections.InWindow
		j.Connections.Over24h += pj.Connections.Over24h
		j.Connections.Over7d += pj.Connections.Over7d
		j.Connections.Over30d += pj.Connections.Over30d
		j.Bytes.Total += pj.Bytes.Total
		j.Bytes.InWindow += pj.Bytes.InWindow
		j.Bytes.Over24h += pj.Bytes.Over24h
		j.Bytes.Over7d += pj.Bytes.Over7d
		j.Bytes.Over30d += pj.Bytes.Over30d
		j.PerPolicy = append(j.PerPolicy, pj)
	}
	r.Join = j
}
