// Package telemetry is the campaign engine's zero-dependency
// observability layer: a Registry of atomic counters and fixed-bucket
// duration histograms that every pipeline stage (scanner, simnet,
// session/ticket/keyex, study) reports through, snapshot-able at any
// moment, plus the JSONL Span records study.Run emits per scan phase.
//
// The contract, in the house style of internal/perf and internal/faults:
// telemetry observes, never perturbs. A nil *Registry (and the nil
// *Counter / *Histogram handles it hands out) is valid and every method
// on it is a no-op, so uninstrumented runs take the existing code paths
// untouched. An enabled registry only adds atomic increments on the
// side — it draws no entropy and reads no clock the measurement depends
// on — and TestTelemetryObservationallyInert in internal/study proves
// the golden dataset hash is byte-identical either way.
//
// Metric names are "/"-separated. Names under the "wall/" prefix carry
// wall-clock or scheduling-dependent values (real latencies, sweep
// evictions, global-cache fills); every other metric is a pure function
// of (seed, fault plan, probe schedule) and must replay identically for
// any worker count. Snapshot.Deterministic strips the wall/ subtree so
// tests can pin exactly that property.
package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// WallPrefix marks metrics whose values depend on wall-clock time or
// goroutine scheduling. Snapshot.Deterministic drops this subtree.
const WallPrefix = "wall/"

// Names of the metrics shared across packages: the scanner writes them,
// study's span emitter and studyrun's -progress ticker read them.
const (
	// CounterProbes counts logical probes (one per scanner.connect
	// call, however many retry attempts it takes).
	CounterProbes = "scanner/probes"
	// CounterProbeFailures counts probes whose final attempt failed.
	CounterProbeFailures = "scanner/probe_failures"
	// CounterHandshakesStarted counts individual connection attempts,
	// including retries.
	CounterHandshakesStarted = "scanner/handshakes_started"
	// CounterHandshakesCompleted counts attempts that finished the
	// handshake successfully.
	CounterHandshakesCompleted = "scanner/handshakes_completed"
	// CounterRetries counts retry attempts (CounterHandshakesStarted
	// minus first attempts).
	CounterRetries = "scanner/retries"
	// CounterBusyNanos accumulates wall-clock nanoseconds workers spent
	// inside probes; with phase wall time it yields worker utilization.
	CounterBusyNanos = "wall/scanner/busy_ns"
	// CounterDaysCompleted counts finished scan days; the -progress
	// ticker renders it as "day N/M".
	CounterDaysCompleted = "study/days_completed"
	// CounterSTEKRotations counts observed ticket-key rotations (exactly
	// one per epoch transition per manager, whatever the interleaving).
	CounterSTEKRotations = "ticket/stek_rotations"

	// Traffic-plane counters: simulated-user visits driven by
	// internal/traffic. All are deterministic sums over per-user
	// sequential histories, so they survive Snapshot.Deterministic().

	// CounterTrafficVisits counts completed-or-failed user visits.
	CounterTrafficVisits = "traffic/visits"
	// CounterTrafficResumed counts visits that resumed a prior session
	// (by ID or ticket).
	CounterTrafficResumed = "traffic/resumed"
	// CounterTrafficFailures counts visits whose connection failed.
	CounterTrafficFailures = "traffic/failures"
	// CounterTrafficBytes accumulates application bytes exchanged by
	// user visits (request plus response).
	CounterTrafficBytes = "traffic/bytes"
	// CounterTrafficCrossHost counts resumptions accepted under a
	// different hostname of the same operator cache group.
	CounterTrafficCrossHost = "traffic/cross_host"
)

// Shared counter-name prefixes: instrumentation sites append a dynamic
// suffix (error class, fault kind), and readers — the obsv progress
// endpoint, the flight-recorder's per-phase deltas — select by prefix.
const (
	// CounterErrorPrefix + faults.ErrClass counts probes whose final
	// attempt failed with that class.
	CounterErrorPrefix = "scanner/errors/"
	// CounterRetryClassPrefix + faults.ErrClass counts retry attempts
	// provoked by that transient class.
	CounterRetryClassPrefix = "scanner/retries/"
	// CounterFaultPrefix + faults.Kind counts injected network faults.
	CounterFaultPrefix = "simnet/faults/"
	// CounterTrafficPolicyPrefix + policy name counts user visits under
	// that browser policy; the same prefix with "/resumed" appended to
	// the policy counts its resumptions.
	CounterTrafficPolicyPrefix = "traffic/policy/"
	// HistTrafficChainPrefix + policy name is the per-policy histogram
	// of resumption tracking-chain durations in virtual time.
	HistTrafficChainPrefix = "traffic/chain_vtime/"
)

// Counter is a monotonically increasing atomic counter. A nil Counter
// no-ops on writes and reads as zero, so instrumentation sites never
// need a registry nil-check of their own.
type Counter struct{ v atomic.Uint64 }

// Add increments the counter by n.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// bucketBounds is the fixed upper-bound ladder every histogram shares:
// powers of 4 from 1µs to ~4.8h, plus an implicit overflow bucket.
// Fixed buckets keep Observe allocation-free and make histograms from
// different runs directly comparable bucket-by-bucket.
var bucketBounds = func() [18]time.Duration {
	var b [18]time.Duration
	d := time.Microsecond
	for i := range b {
		b[i] = d
		d *= 4
	}
	return b
}()

const numBuckets = len(bucketBounds) + 1

// Histogram is a fixed-bucket duration histogram. Like Counter, a nil
// Histogram is a valid no-op receiver.
type Histogram struct {
	count   atomic.Uint64
	sum     atomic.Int64 // nanoseconds
	max     atomic.Int64 // nanoseconds
	buckets [numBuckets]atomic.Uint64
}

// Observe records one duration. Negative durations clamp to zero.
func (h *Histogram) Observe(d time.Duration) {
	if h == nil {
		return
	}
	if d < 0 {
		d = 0
	}
	h.count.Add(1)
	h.sum.Add(int64(d))
	for {
		old := h.max.Load()
		if int64(d) <= old || h.max.CompareAndSwap(old, int64(d)) {
			break
		}
	}
	h.buckets[bucketIndex(d)].Add(1)
}

func bucketIndex(d time.Duration) int {
	for i, b := range bucketBounds {
		if d <= b {
			return i
		}
	}
	return len(bucketBounds)
}

// Registry holds named counters and histograms. The zero value is not
// usable; call NewRegistry. A nil *Registry is valid everywhere and
// hands out nil (no-op) instruments.
type Registry struct {
	mu         sync.RWMutex
	counters   map[string]*Counter
	histograms map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		histograms: make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	c := r.counters[name]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c = r.counters[name]; c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	h := r.histograms[name]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h = r.histograms[name]; h == nil {
		h = &Histogram{}
		r.histograms[name] = h
	}
	return h
}

// Value reads the named counter without creating it.
func (r *Registry) Value(name string) uint64 {
	if r == nil {
		return 0
	}
	r.mu.RLock()
	c := r.counters[name]
	r.mu.RUnlock()
	return c.Value()
}

// BucketCount is one non-empty histogram bucket in a snapshot. LE is
// the bucket's inclusive upper bound; LE == -1 marks the overflow
// bucket (observations above the largest bound).
type BucketCount struct {
	LE time.Duration `json:"le_ns"`
	N  uint64        `json:"n"`
}

// HistogramSnapshot is a point-in-time copy of one histogram. Only
// non-empty buckets are kept, in ascending bound order.
type HistogramSnapshot struct {
	Count   uint64        `json:"count"`
	Sum     time.Duration `json:"sum_ns"`
	Max     time.Duration `json:"max_ns"`
	Buckets []BucketCount `json:"buckets,omitempty"`
}

// Mean returns the average observed duration, or 0 when empty.
func (h HistogramSnapshot) Mean() time.Duration {
	if h.Count == 0 {
		return 0
	}
	return h.Sum / time.Duration(h.Count)
}

// Quantile returns an upper-bound estimate of the q-quantile
// (0 < q <= 1): the bound of the bucket the quantile falls in, or Max
// for the overflow bucket. Coarse by design — the ladder is fixed so
// estimates stay comparable across runs.
func (h HistogramSnapshot) Quantile(q float64) time.Duration {
	if h.Count == 0 || q <= 0 {
		return 0
	}
	target := uint64(q * float64(h.Count))
	if target < 1 {
		target = 1
	}
	var cum uint64
	for _, b := range h.Buckets {
		cum += b.N
		if cum >= target {
			if b.LE < 0 {
				return h.Max
			}
			return b.LE
		}
	}
	return h.Max
}

// Snapshot is an immutable copy of a registry's state: mutating the
// registry after the call never changes an already-taken snapshot.
type Snapshot struct {
	Counters   map[string]uint64            `json:"counters,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// Snapshot copies the registry's current state. A nil registry yields
// an empty snapshot. Counters written concurrently with the snapshot
// land in it or don't, per instrument; a snapshot of a quiesced
// registry is exact.
func (r *Registry) Snapshot() *Snapshot {
	s := &Snapshot{
		Counters:   map[string]uint64{},
		Histograms: map[string]HistogramSnapshot{},
	}
	if r == nil {
		return s
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, h := range r.histograms {
		hs := HistogramSnapshot{
			Count: h.count.Load(),
			Sum:   time.Duration(h.sum.Load()),
			Max:   time.Duration(h.max.Load()),
		}
		for i := range h.buckets {
			n := h.buckets[i].Load()
			if n == 0 {
				continue
			}
			le := time.Duration(-1)
			if i < len(bucketBounds) {
				le = bucketBounds[i]
			}
			hs.Buckets = append(hs.Buckets, BucketCount{LE: le, N: n})
		}
		s.Histograms[name] = hs
	}
	return s
}

// Deterministic returns a copy of the snapshot without the wall/
// subtree. What remains must be a pure function of (seed, fault plan,
// probe schedule) — identical for any worker count — which is exactly
// what TestTelemetryObservationallyInert compares across runs.
func (s *Snapshot) Deterministic() *Snapshot {
	out := &Snapshot{
		Counters:   map[string]uint64{},
		Histograms: map[string]HistogramSnapshot{},
	}
	if s == nil {
		return out
	}
	for name, v := range s.Counters {
		if !strings.HasPrefix(name, WallPrefix) {
			out.Counters[name] = v
		}
	}
	for name, h := range s.Histograms {
		if !strings.HasPrefix(name, WallPrefix) {
			out.Histograms[name] = h
		}
	}
	return out
}

// MergeHistograms sums every histogram whose name starts with prefix
// into one combined snapshot (e.g. all wall/scanner/latency/* series
// into a single campaign-wide latency distribution).
func (s *Snapshot) MergeHistograms(prefix string) HistogramSnapshot {
	var out HistogramSnapshot
	if s == nil {
		return out
	}
	byLE := map[time.Duration]uint64{}
	for name, h := range s.Histograms {
		if !strings.HasPrefix(name, prefix) {
			continue
		}
		out.Count += h.Count
		out.Sum += h.Sum
		if h.Max > out.Max {
			out.Max = h.Max
		}
		for _, b := range h.Buckets {
			byLE[b.LE] += b.N
		}
	}
	for le, n := range byLE {
		out.Buckets = append(out.Buckets, BucketCount{LE: le, N: n})
	}
	sort.Slice(out.Buckets, func(i, j int) bool {
		a, b := out.Buckets[i].LE, out.Buckets[j].LE
		if a < 0 {
			return false
		}
		if b < 0 {
			return true
		}
		return a < b
	})
	return out
}

// MergeSnapshots sums per-shard telemetry snapshots into one
// campaign-wide view: counters add, histograms combine bucket-by-bucket
// (the fixed ladder makes buckets from different runs directly
// comparable — the same alignment MergeHistograms relies on), Max takes
// the largest shard's. Merging a single snapshot returns a deep copy.
func MergeSnapshots(shards ...*Snapshot) *Snapshot {
	out := &Snapshot{
		Counters:   map[string]uint64{},
		Histograms: map[string]HistogramSnapshot{},
	}
	for _, s := range shards {
		if s == nil {
			continue
		}
		for name, v := range s.Counters {
			out.Counters[name] += v
		}
		for name, h := range s.Histograms {
			out.Histograms[name] = addHistogramSnapshots(out.Histograms[name], h)
		}
	}
	return out
}

// MergeSnapshotsKeyed merges per-shard snapshots into one cross-shard
// view the way a live aggregator needs it: metrics outside the wall/
// subtree sum exactly as MergeSnapshots (they are deterministic and
// shard-additive), but wall/ metrics — real latencies, busy time,
// cache-fill counts — are per-process observations that would be
// meaningless summed across machines, so each shard's wall subtree is
// kept separate under "wall/<key>/<rest>". Keys must be unique.
func MergeSnapshotsKeyed(shards map[string]*Snapshot) *Snapshot {
	det := make([]*Snapshot, 0, len(shards))
	for _, s := range shards {
		det = append(det, s.Deterministic())
	}
	out := MergeSnapshots(det...)
	for key, s := range shards {
		if s == nil {
			continue
		}
		for name, v := range s.Counters {
			if strings.HasPrefix(name, WallPrefix) {
				out.Counters[WallPrefix+key+"/"+name[len(WallPrefix):]] = v
			}
		}
		for name, h := range s.Histograms {
			if strings.HasPrefix(name, WallPrefix) {
				out.Histograms[WallPrefix+key+"/"+name[len(WallPrefix):]] = h
			}
		}
	}
	return out
}

// PrefixCounters returns the counters under prefix, keyed by the name
// with the prefix stripped (e.g. PrefixCounters(CounterErrorPrefix)
// yields failure counts by error class). Zero-valued counters are
// omitted, matching what a delta reader wants.
func (s *Snapshot) PrefixCounters(prefix string) map[string]uint64 {
	if s == nil {
		return nil
	}
	var out map[string]uint64
	for name, v := range s.Counters {
		if v == 0 || !strings.HasPrefix(name, prefix) {
			continue
		}
		if out == nil {
			out = make(map[string]uint64)
		}
		out[name[len(prefix):]] = v
	}
	return out
}

// addHistogramSnapshots combines two snapshots of the shared bucket
// ladder, preserving ascending bound order with overflow (-1) last.
func addHistogramSnapshots(a, b HistogramSnapshot) HistogramSnapshot {
	out := HistogramSnapshot{
		Count: a.Count + b.Count,
		Sum:   a.Sum + b.Sum,
		Max:   a.Max,
	}
	if b.Max > out.Max {
		out.Max = b.Max
	}
	byLE := map[time.Duration]uint64{}
	for _, bc := range a.Buckets {
		byLE[bc.LE] += bc.N
	}
	for _, bc := range b.Buckets {
		byLE[bc.LE] += bc.N
	}
	for le, n := range byLE {
		out.Buckets = append(out.Buckets, BucketCount{LE: le, N: n})
	}
	sort.Slice(out.Buckets, func(i, j int) bool {
		x, y := out.Buckets[i].LE, out.Buckets[j].LE
		if x < 0 {
			return false
		}
		if y < 0 {
			return true
		}
		return x < y
	})
	return out
}

// Render formats the snapshot for humans: counters then histograms,
// keys sorted, columns aligned, each line indented two spaces. The
// output is deterministic for a given snapshot regardless of map
// iteration order.
func (s *Snapshot) Render() string {
	if s == nil || (len(s.Counters) == 0 && len(s.Histograms) == 0) {
		return "  (no telemetry recorded)\n"
	}
	var b strings.Builder

	names := make([]string, 0, len(s.Counters))
	width := 0
	for name := range s.Counters {
		names = append(names, name)
		if len(name) > width {
			width = len(name)
		}
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Fprintf(&b, "  %-*s %12d\n", width, name, s.Counters[name])
	}

	names = names[:0]
	width = 0
	for name := range s.Histograms {
		names = append(names, name)
		if len(name) > width {
			width = len(name)
		}
	}
	sort.Strings(names)
	for _, name := range names {
		h := s.Histograms[name]
		fmt.Fprintf(&b, "  %-*s %12d  p50 %-10v p99 %-10v max %v\n",
			width, name, h.Count, h.Quantile(0.50), h.Quantile(0.99), h.Max)
	}
	return b.String()
}

// global is the process-wide registry deep subsystems (session, ticket,
// keyex) report through; they have no per-campaign injection point, so
// study.Run installs its registry here for the duration of the run.
var global atomic.Pointer[Registry]

// Global returns the installed process-wide registry, or nil (meaning
// telemetry off — and nil is a valid no-op registry everywhere).
func Global() *Registry { return global.Load() }

// SetGlobal installs r as the process-wide registry and returns a
// function that restores the previous one:
//
//	defer telemetry.SetGlobal(reg)()
func SetGlobal(r *Registry) (restore func()) {
	old := global.Swap(r)
	return func() { global.Store(old) }
}

// Span is one scan phase's trace record: each lifetime-probe pass, each
// scan day, and the cross-domain pass emit one as a JSON line. Fields
// derived from wall time (WallNanos, Utilization) vary run to run;
// everything else is deterministic for a fixed (seed, fault plan).
type Span struct {
	// Phase is "lifetime-id", "lifetime-ticket", "day", or "cross-domain".
	Phase string `json:"phase"`
	// Day is the 0-based scan day for "day" spans, -1 otherwise.
	Day int `json:"day"`
	// Days is the campaign length in scan days.
	Days int `json:"days"`
	// VirtualDate is the simulated clock (RFC 3339) when the phase ended.
	VirtualDate string `json:"virtual_date,omitempty"`
	// Domains is the number of targets probed in this phase.
	Domains int `json:"domains"`
	// Failures counts probes whose final attempt failed; for "day"
	// spans these are first-connection (ticket-scan) failures.
	Failures int `json:"failures"`
	// PairFailures counts failed second connections (the DHE/ECDHE
	// reuse pairs of a scan day); 0 for non-day phases.
	PairFailures int `json:"pair_failures"`
	// Handshakes is the number of connection attempts, retries included.
	Handshakes uint64 `json:"handshakes"`
	// Retries is the number of those attempts that were retries.
	Retries uint64 `json:"retries"`
	// WallNanos is the real elapsed time of the phase.
	WallNanos int64 `json:"wall_ns"`
	// Workers is the scanner pool size the phase ran with.
	Workers int `json:"workers"`
	// Utilization is busy worker time / (wall time × workers), in [0,1].
	Utilization float64 `json:"utilization"`
}

// PhaseEvent is the campaign-phase lifecycle notification study.Run
// delivers to an attached observer (the obsv flight recorder listens
// through it). A Start event carries only the identifying span fields
// (Phase, Day, Days, VirtualDate, Domains, Workers); the end event adds
// the completed span plus the per-phase counter deltas a journal wants
// attributed to the phase they happened in.
type PhaseEvent struct {
	// Span identifies the phase; on end events every field is filled.
	Span Span
	// Start is true at phase entry, false at phase completion.
	Start bool
	// FailureClasses maps faults.ErrClass -> probes that ended the phase
	// failed with that class (delta over the phase; end events only).
	FailureClasses map[string]uint64
	// Faults maps injected-fault kind -> occurrences during the phase.
	Faults map[string]uint64
	// STEKRotations counts ticket-key rotations observed in the phase.
	// Deterministic across worker counts but NOT shard-additive: a
	// per-operator manager rotates lazily in every shard that touches
	// its domains, so cross-shard journal merges must normalize it out.
	STEKRotations uint64
}

// Encode writes the span as one JSON line.
func (s *Span) Encode(w io.Writer) error {
	b, err := json.Marshal(s)
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}

// DecodeSpans reads a JSONL span trace back into memory.
func DecodeSpans(r io.Reader) ([]Span, error) {
	dec := json.NewDecoder(r)
	var out []Span
	for {
		var s Span
		if err := dec.Decode(&s); err == io.EOF {
			return out, nil
		} else if err != nil {
			return nil, err
		}
		out = append(out, s)
	}
}
