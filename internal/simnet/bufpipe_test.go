package simnet

import (
	"bytes"
	"errors"
	"io"
	"net"
	"os"
	"testing"
	"time"
)

// pipeConformance runs the shared net.Pipe/NewBufferedPipe contract: the
// TLS engines must behave identically over either transport, so the
// semantics the record layer relies on are pinned against both here.
func pipeConformance(t *testing.T, mk func() (net.Conn, net.Conn)) {
	t.Run("DataIntegrity", func(t *testing.T) {
		a, b := mk()
		defer a.Close()
		defer b.Close()
		want := make([]byte, 64<<10)
		for i := range want {
			want[i] = byte(i * 31)
		}
		done := make(chan error, 1)
		go func() {
			// Vary write sizes to exercise buffering boundaries.
			sent := 0
			for _, n := range []int{1, 5, 1000, 4096, 17} {
				for sent < len(want) {
					end := sent + n
					if end > len(want) {
						end = len(want)
					}
					if _, err := a.Write(want[sent:end]); err != nil {
						done <- err
						return
					}
					sent = end
					if n != 17 {
						break
					}
				}
			}
			done <- nil
		}()
		got := make([]byte, len(want))
		if _, err := io.ReadFull(b, got); err != nil {
			t.Fatalf("read: %v", err)
		}
		if err := <-done; err != nil {
			t.Fatalf("write: %v", err)
		}
		if !bytes.Equal(got, want) {
			t.Fatal("data corrupted in transit")
		}
	})

	t.Run("Bidirectional", func(t *testing.T) {
		a, b := mk()
		defer a.Close()
		defer b.Close()
		// Echo loop: concurrent traffic both directions (meaningful under
		// -race).
		go func() {
			buf := make([]byte, 256)
			for {
				n, err := b.Read(buf)
				if err != nil {
					return
				}
				if _, err := b.Write(buf[:n]); err != nil {
					return
				}
			}
		}()
		msg := []byte("ping over the simulated wire")
		for i := 0; i < 100; i++ {
			if _, err := a.Write(msg); err != nil {
				t.Fatalf("write %d: %v", i, err)
			}
			got := make([]byte, len(msg))
			if _, err := io.ReadFull(a, got); err != nil {
				t.Fatalf("read %d: %v", i, err)
			}
			if !bytes.Equal(got, msg) {
				t.Fatalf("echo %d corrupted", i)
			}
		}
	})

	t.Run("PeerCloseUnblocksRead", func(t *testing.T) {
		a, b := mk()
		defer a.Close()
		errc := make(chan error, 1)
		go func() {
			_, err := b.Read(make([]byte, 16))
			errc <- err
		}()
		time.Sleep(10 * time.Millisecond) // let the reader block
		a.Close()
		select {
		case err := <-errc:
			if err != io.EOF {
				t.Fatalf("read after peer close: got %v, want io.EOF", err)
			}
		case <-time.After(2 * time.Second):
			t.Fatal("reader still blocked after peer Close")
		}
	})

	t.Run("OwnCloseUnblocksRead", func(t *testing.T) {
		a, b := mk()
		defer b.Close()
		errc := make(chan error, 1)
		go func() {
			_, err := a.Read(make([]byte, 16))
			errc <- err
		}()
		time.Sleep(10 * time.Millisecond)
		a.Close()
		select {
		case err := <-errc:
			if !errors.Is(err, io.ErrClosedPipe) {
				t.Fatalf("read after own close: got %v, want io.ErrClosedPipe", err)
			}
		case <-time.After(2 * time.Second):
			t.Fatal("reader still blocked after own Close")
		}
	})

	t.Run("WriteAfterPeerClose", func(t *testing.T) {
		a, b := mk()
		defer a.Close()
		b.Close()
		// net.Pipe fails immediately; the buffered pipe fails once the
		// reader is observed gone. Either way it must error, not hang.
		if _, err := a.Write([]byte("x")); !errors.Is(err, io.ErrClosedPipe) {
			t.Fatalf("write after peer close: got %v, want io.ErrClosedPipe", err)
		}
	})

	t.Run("ReadDeadline", func(t *testing.T) {
		a, b := mk()
		defer a.Close()
		defer b.Close()
		if err := a.SetReadDeadline(time.Now().Add(20 * time.Millisecond)); err != nil {
			t.Fatal(err)
		}
		start := time.Now()
		_, err := a.Read(make([]byte, 16))
		if !errors.Is(err, os.ErrDeadlineExceeded) {
			t.Fatalf("deadline read: got %v, want os.ErrDeadlineExceeded", err)
		}
		var ne net.Error
		if !errors.As(err, &ne) || !ne.Timeout() {
			t.Fatalf("deadline error %v is not a net.Error timeout", err)
		}
		if time.Since(start) > time.Second {
			t.Fatal("deadline fired far too late")
		}
		// Clearing the deadline makes the connection usable again.
		if err := a.SetReadDeadline(time.Time{}); err != nil {
			t.Fatal(err)
		}
		go b.Write([]byte("ok"))
		got := make([]byte, 2)
		if _, err := io.ReadFull(a, got); err != nil {
			t.Fatalf("read after deadline cleared: %v", err)
		}
	})
}

func TestNetPipeConformance(t *testing.T) {
	pipeConformance(t, net.Pipe)
}

func TestBufferedPipeConformance(t *testing.T) {
	pipeConformance(t, NewBufferedPipe)
}

// TestBufferedPipeDrainAfterClose pins the intentional divergence from
// net.Pipe: data written before Close stays readable (TCP-like), then EOF.
func TestBufferedPipeDrainAfterClose(t *testing.T) {
	a, b := NewBufferedPipe()
	defer b.Close()
	if _, err := a.Write([]byte("last words")); err != nil {
		t.Fatal(err)
	}
	a.Close()
	got, err := io.ReadAll(b)
	if err != nil {
		t.Fatalf("drain: %v", err)
	}
	if string(got) != "last words" {
		t.Fatalf("drained %q", got)
	}
}

// TestBufferedPipeDoubleClose checks Close idempotence.
func TestBufferedPipeDoubleClose(t *testing.T) {
	a, b := NewBufferedPipe()
	b.Close()
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestBufferedPipeWriteDoesNotBlock is the performance contract: a writer
// with no active reader must not deadlock.
func TestBufferedPipeWriteDoesNotBlock(t *testing.T) {
	a, b := NewBufferedPipe()
	defer a.Close()
	defer b.Close()
	payload := make([]byte, 32<<10)
	done := make(chan struct{})
	go func() {
		for i := 0; i < 8; i++ {
			if _, err := a.Write(payload); err != nil {
				t.Errorf("write %d: %v", i, err)
				break
			}
		}
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("buffered write blocked without a reader")
	}
}
