package study

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"tlsshortcuts/internal/faults"
)

// runAndHash runs a campaign and returns both the dataset and its
// serialized hash (datasetHash alone discards the dataset).
func runAndHash(t *testing.T, o Options) (*Dataset, string) {
	t.Helper()
	ds, err := Run(o)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	b, err := json.Marshal(ds)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	h := sha256.Sum256(b)
	return ds, hex.EncodeToString(h[:])
}

// TestEmptyFaultPlanMatchesGolden is the inertness proof the ISSUE
// demands: a campaign run with an explicitly supplied zero fault plan
// must serialize byte-identically to the committed golden hash — all the
// fault machinery (plan lookup, taxonomy fields, deadline arming, retry
// scaffolding) is provably unobservable on a clean network.
func TestEmptyFaultPlanMatchesGolden(t *testing.T) {
	o := detOpts
	o.Faults = &faults.Options{Seed: 99} // rates all zero: compiles to nil plan
	got := datasetHash(t, o)
	golden := filepath.Join("testdata", "campaign_200x8_seed7.sha256")
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden: %v", err)
	}
	if w := strings.TrimSpace(string(want)); got != w {
		t.Fatalf("empty fault plan perturbed the dataset:\n  got  %s\n  want %s", got, w)
	}
}

// TestFaultCampaignDeterministicAcrossWorkers checks the tentpole's
// replay property: a fixed non-empty fault plan produces a byte-identical
// dataset for any worker count, because every fault decision, backend
// choice, retry backoff, and entropy stream keys on the probe's identity
// rather than on scheduling order.
func TestFaultCampaignDeterministicAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("runs two faulted campaigns")
	}
	fo := &faults.Options{Seed: 11, Refuse: 0.06, Reset: 0.03, Stall: 0.01, Flap: 0.05, Churn: 0.08, ChurnMaxDays: 3}
	base := Options{ListSize: 120, Days: 5, Seed: 7, ProbeTimeout: 120 * time.Millisecond, Faults: fo}

	a := base
	a.Workers = 3
	dsA, hA := runAndHash(t, a)
	b := base
	b.Workers = 13
	_, hB := runAndHash(t, b)
	if hA != hB {
		t.Fatalf("same fault plan, different worker counts, different datasets:\n  3 workers  %s\n  13 workers %s", hA, hB)
	}

	if len(dsA.Failures) == 0 {
		t.Fatal("faulted campaign recorded no failures")
	}
	if dsA.FaultPlan == nil || dsA.FaultPlan.Seed != 11 {
		t.Fatalf("dataset did not record the fault plan: %+v", dsA.FaultPlan)
	}
	if len(dsA.MissedDays) == 0 {
		t.Fatal("faulted campaign recorded no missed ticket-scan days")
	}
	table := BuildReport(dsA).FailureTable()
	if !strings.Contains(table, "fault plan: seed 11") {
		t.Fatalf("failure table missing the fault plan line:\n%s", table)
	}
	if strings.Contains(table, "no scan failures recorded") {
		t.Fatalf("failure table claims a clean run:\n%s", table)
	}
}

// TestStalledDomainCampaignCompletes is the regression test for the
// worker-deadlock bug: a backend that accepts connections but never
// answers used to hang a campaign forever. With deadlines armed the
// campaign must finish, classify the domain's scans as timeouts, and
// drop it from the consistent core.
func TestStalledDomainCampaignCompletes(t *testing.T) {
	o := Options{
		ListSize:     200,
		Days:         2,
		Seed:         3,
		Workers:      8,
		ProbeTimeout: 100 * time.Millisecond,
		Retries:      -1,
		Faults:       &faults.Options{StallDomains: []string{"yahoo.com"}},
	}
	type result struct {
		ds  *Dataset
		err error
	}
	done := make(chan result, 1)
	go func() {
		ds, err := Run(o)
		done <- result{ds, err}
	}()
	var ds *Dataset
	select {
	case r := <-done:
		if r.err != nil {
			t.Fatalf("Run: %v", r.err)
		}
		ds = r.ds
	case <-time.After(120 * time.Second):
		t.Fatal("campaign with a stalled backend did not finish — scan deadlines not enforced")
	}

	const wantMask = uint64(1)<<0 | uint64(1)<<1
	if got := ds.MissedDays["yahoo.com"]; got != wantMask {
		t.Fatalf("MissedDays[yahoo.com] = %b, want %b (both days missed)", got, wantMask)
	}
	foundTimeout := false
	for _, f := range ds.Failures {
		if f.Scan == "ticket" && f.Class == string(faults.ClassTimeout) {
			foundTimeout = true
		}
	}
	if !foundTimeout {
		t.Fatalf("no (ticket, timeout) failure cell recorded: %+v", ds.Failures)
	}
	core := BuildReport(ds).ConsistentCore()
	for _, d := range core {
		if d == "yahoo.com" {
			t.Fatal("stalled domain survived into the consistent core")
		}
	}
	if len(core) == 0 {
		t.Fatal("consistent core is empty — healthy domains were dropped too")
	}
}
