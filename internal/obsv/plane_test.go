package obsv_test

import (
	"bufio"
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"tlsshortcuts/internal/faults"
	"tlsshortcuts/internal/obsv"
	"tlsshortcuts/internal/study"
	"tlsshortcuts/internal/telemetry"
)

// detOpts mirrors internal/study's determinism campaign; the golden
// hash below is the same file that suite pins.
var detOpts = study.Options{ListSize: 200, Days: 8, Seed: 7, Workers: 8}

const goldenPath = "../study/testdata/campaign_200x8_seed7.sha256"

func readGolden(t *testing.T) string {
	t.Helper()
	b, err := os.ReadFile(filepath.Join(goldenPath))
	if err != nil {
		t.Fatalf("reading golden hash: %v", err)
	}
	return strings.TrimSpace(string(b))
}

func hashDataset(t *testing.T, ds *study.Dataset) string {
	t.Helper()
	b, err := json.Marshal(ds)
	if err != nil {
		t.Fatalf("marshal dataset: %v", err)
	}
	h := sha256.Sum256(b)
	return hex.EncodeToString(h[:])
}

// TestFullPlaneGoldenCampaign is the acceptance criterion: with the
// observability plane FULLY enabled — HTTP server attached to the live
// registry, churning SSE subscribers, flight-recorder journal, trace
// writer — the determinism campaign must still reproduce the committed
// golden dataset hash byte-for-byte. Observation must not perturb.
func TestFullPlaneGoldenCampaign(t *testing.T) {
	if testing.Short() {
		t.Skip("full 200x8 campaign; run without -short")
	}
	reg := telemetry.NewRegistry()
	journalPath := filepath.Join(t.TempDir(), "flight.jsonl")
	journal, err := obsv.CreateJournal(journalPath)
	if err != nil {
		t.Fatal(err)
	}
	var trace bytes.Buffer

	server := obsv.NewServer(obsv.Config{
		Registry: reg,
		Days:     detOpts.Days,
		ListSize: detOpts.ListSize,
		Workers:  detOpts.Workers,
		Journal:  journal,
		Interval: 5 * time.Millisecond, // aggressive sampling: maximize interleaving
	})
	server.Start()
	defer server.Close()
	hts := httptest.NewServer(server)
	defer hts.Close()

	// SSE churn: subscribers connect, read a little, and drop, the whole
	// campaign long.
	churnCtx, stopChurn := context.WithCancel(context.Background())
	var churn sync.WaitGroup
	for i := 0; i < 3; i++ {
		churn.Add(1)
		go func() {
			defer churn.Done()
			for churnCtx.Err() == nil {
				req, _ := http.NewRequestWithContext(churnCtx, http.MethodGet, hts.URL+"/progress?stream=1", nil)
				resp, err := http.DefaultClient.Do(req)
				if err != nil {
					return
				}
				sc := bufio.NewScanner(resp.Body)
				for j := 0; j < 4 && sc.Scan(); j++ {
				}
				resp.Body.Close()
			}
		}()
	}

	opts := detOpts
	opts.Telemetry = reg
	opts.Trace = &trace
	opts.Observer = journal
	journal.CampaignStart(opts.ListSize, opts.Days, opts.Seed, opts.Workers, "")
	ds, err := study.Run(opts)
	stopChurn()
	churn.Wait()
	if err != nil {
		t.Fatalf("Run with full plane: %v", err)
	}
	hash := hashDataset(t, ds)
	journal.CampaignEnd(hash)

	if golden := readGolden(t); hash != golden {
		t.Fatalf("full observability plane perturbed the campaign:\n  got  %s\n  want %s", hash, golden)
	}

	// The plane's endpoints reflect the finished campaign.
	client := obsv.NewClient(hts.URL)
	ctx := context.Background()
	if err := client.Healthz(ctx); err != nil {
		t.Errorf("healthz: %v", err)
	}
	prog, err := client.Progress(ctx)
	if err != nil {
		t.Fatalf("progress: %v", err)
	}
	if prog.Day != uint64(detOpts.Days) || prog.Handshakes == 0 || prog.Probes == 0 {
		t.Errorf("progress does not reflect the campaign: %+v", prog)
	}
	resp, err := http.Get(hts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var promText bytes.Buffer
	promText.ReadFrom(resp.Body)
	resp.Body.Close()
	if !strings.Contains(promText.String(), "tls_scanner_probes_total") {
		t.Error("/metrics missing the probe counter")
	}
	events, err := client.Journal(ctx, 10)
	if err != nil {
		t.Fatalf("journal tail: %v", err)
	}
	if len(events) == 0 || events[len(events)-1].Type != obsv.EventCampaignEnd {
		t.Errorf("journal tail does not end with campaign_end: %d events", len(events))
	}

	// The trace is complete JSONL and the on-disk journal validates and
	// records the golden hash.
	if err := journal.Close(); err != nil {
		t.Fatalf("journal close: %v", err)
	}
	full, err := obsv.ReadJournal(journalPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := obsv.ValidateJournal(full); err != nil {
		t.Fatalf("journal invalid: %v", err)
	}
	if last := full[len(full)-1]; last.DatasetSHA256 != hash {
		t.Errorf("journal records hash %s, dataset hashed %s", last.DatasetSHA256, hash)
	}
	sc := bufio.NewScanner(bytes.NewReader(trace.Bytes()))
	lines := 0
	for sc.Scan() {
		var span telemetry.Span
		if err := json.Unmarshal(sc.Bytes(), &span); err != nil {
			t.Fatalf("trace line %d unparseable: %v", lines, err)
		}
		lines++
	}
	if lines < detOpts.Days {
		t.Errorf("trace has %d spans, want at least one per day", lines)
	}
}

// journalOpts is the worker-invariance campaign: smaller than detOpts
// but with the full fault stack so failure-class deltas are exercised.
func journalOpts() study.Options {
	return study.Options{
		ListSize:     120,
		Days:         5,
		Seed:         7,
		ProbeTimeout: 120 * time.Millisecond,
		Faults: &faults.Options{
			Seed: 11, Refuse: 0.06, Reset: 0.03, Stall: 0.01,
			Flap: 0.05, Churn: 0.08, ChurnMaxDays: 3,
		},
	}
}

// runJournal executes one campaign with a journal observer attached and
// returns the decoded journal.
func runJournal(t *testing.T, opts study.Options, shard string) []obsv.Event {
	t.Helper()
	var buf bytes.Buffer
	j := obsv.NewJournal(&buf)
	j.SetShard(shard)
	if shard != "" {
		spec, err := parseShard(shard)
		if err != nil {
			t.Fatal(err)
		}
		opts.Shard = spec
	}
	j.CampaignStart(opts.ListSize, opts.Days, opts.Seed, opts.Workers, shard)
	opts.Observer = j
	ds, err := study.Run(opts)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	j.CampaignEnd(hashDataset(t, ds))
	if err := j.Close(); err != nil {
		t.Fatalf("journal: %v", err)
	}
	events, err := obsv.DecodeEvents(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if err := obsv.ValidateJournal(events); err != nil {
		t.Fatal(err)
	}
	return events
}

func parseShard(s string) (*study.ShardSpec, error) {
	i := strings.IndexByte(s, '/')
	idx, err := strconv.Atoi(s[:i])
	if err != nil {
		return nil, err
	}
	count, err := strconv.Atoi(s[i+1:])
	if err != nil {
		return nil, err
	}
	spec := &study.ShardSpec{Index: idx, Count: count}
	return spec, spec.Validate()
}

func journalJSON(t *testing.T, events []obsv.Event) string {
	t.Helper()
	b, err := json.MarshalIndent(events, "", " ")
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestJournalWorkerInvariance: the deterministic view of the journal is
// byte-identical whether the campaign ran with 3 workers or 13.
func TestJournalWorkerInvariance(t *testing.T) {
	if testing.Short() {
		t.Skip("two faulted campaigns; run without -short")
	}
	a := journalOpts()
	a.Workers = 3
	b := journalOpts()
	b.Workers = 13
	ja := obsv.DeterministicView(runJournal(t, a, ""))
	jb := obsv.DeterministicView(runJournal(t, b, ""))
	sa, sb := journalJSON(t, ja), journalJSON(t, jb)
	if sa != sb {
		t.Fatalf("journal depends on worker count (3 vs 13):\n%s", diffHead(sa, sb))
	}
}

// TestJournalShardMergeMatchesMonolithic: merging the 2-shard journals
// deterministically equals the normalized monolithic journal.
func TestJournalShardMergeMatchesMonolithic(t *testing.T) {
	if testing.Short() {
		t.Skip("three faulted campaigns; run without -short")
	}
	opts := journalOpts()
	opts.Workers = 4
	mono := runJournal(t, opts, "")
	s0 := runJournal(t, opts, "0/2")
	s1 := runJournal(t, opts, "1/2")

	merged, err := obsv.MergeJournalsDeterministic(s0, s1)
	if err != nil {
		t.Fatalf("merging shards: %v", err)
	}
	normMono, err := obsv.MergeJournalsDeterministic(mono)
	if err != nil {
		t.Fatalf("normalizing monolithic: %v", err)
	}
	sm, sn := journalJSON(t, merged), journalJSON(t, normMono)
	if sm != sn {
		t.Fatalf("sharded journal merge diverges from monolithic:\n%s", diffHead(sm, sn))
	}
}

// diffHead renders the first differing lines of two texts.
func diffHead(a, b string) string {
	la, lb := strings.Split(a, "\n"), strings.Split(b, "\n")
	for i := 0; i < len(la) && i < len(lb); i++ {
		if la[i] != lb[i] {
			return fmt.Sprintf("line %d:\n  a: %s\n  b: %s", i, la[i], lb[i])
		}
	}
	return fmt.Sprintf("lengths differ: %d vs %d", len(la), len(lb))
}

// TestClusterView: a server with a peer merges both shards' metrics and
// progress; deterministic counters sum, wall/ metrics stay per shard.
func TestClusterView(t *testing.T) {
	regA := telemetry.NewRegistry()
	regA.Counter("scanner/probes").Add(10)
	regA.Counter("wall/scanner/busy_ns").Add(100)
	serverA := obsv.NewServer(obsv.Config{Registry: regA, Shard: "0/2"})
	htsA := httptest.NewServer(serverA)
	defer htsA.Close()

	regB := telemetry.NewRegistry()
	regB.Counter("scanner/probes").Add(32)
	regB.Counter("wall/scanner/busy_ns").Add(200)
	serverB := obsv.NewServer(obsv.Config{Registry: regB, Shard: "1/2", Peers: []string{htsA.URL}})
	htsB := httptest.NewServer(serverB)
	defer htsB.Close()

	view, err := obsv.NewClient(htsB.URL).Cluster(context.Background())
	if err != nil {
		t.Fatalf("cluster: %v", err)
	}
	if len(view.Shards) != 2 {
		t.Fatalf("cluster sees %d shards, want 2: %+v", len(view.Shards), view.Shards)
	}
	if got := view.Merged.Counters["scanner/probes"]; got != 42 {
		t.Errorf("merged probes = %d, want 42", got)
	}
	if got := view.Merged.Counters["wall/0/2/scanner/busy_ns"]; got != 100 {
		t.Errorf("shard 0/2 wall counter = %d, want 100 (keys: %v)", got, view.Merged.Counters)
	}
	if got := view.Merged.Counters["wall/1/2/scanner/busy_ns"]; got != 200 {
		t.Errorf("shard 1/2 wall counter = %d, want 200", got)
	}

	// /cluster/metrics renders the merged snapshot as prom text.
	resp, err := http.Get(htsB.URL + "/cluster/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var body bytes.Buffer
	body.ReadFrom(resp.Body)
	resp.Body.Close()
	if !strings.Contains(body.String(), "tls_scanner_probes_total 42") {
		t.Errorf("/cluster/metrics missing merged counter:\n%s", body.String())
	}

	// A dead peer is reported unreachable, not fatal.
	serverC := obsv.NewServer(obsv.Config{Registry: regB, Shard: "1/2", Peers: []string{"http://127.0.0.1:1"}})
	htsC := httptest.NewServer(serverC)
	defer htsC.Close()
	view, err = obsv.NewClient(htsC.URL).Cluster(context.Background())
	if err != nil {
		t.Fatalf("cluster with dead peer: %v", err)
	}
	if len(view.Unreachable) != 1 {
		t.Errorf("dead peer not reported: %+v", view.Unreachable)
	}
}
