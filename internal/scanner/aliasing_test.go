package scanner

import (
	"bytes"
	"testing"
	"time"

	"tlsshortcuts/internal/population"
	"tlsshortcuts/internal/simclock"
	"tlsshortcuts/internal/wire"
)

// obsSnapshot deep-copies the fields of an Observation that hold bytes,
// so later scans reusing the same worker arenas can be checked against
// an independent record of what the earlier scan produced.
type obsSnapshot struct {
	domain string
	ok     bool
	suite  uint16
	kex1   []byte
	kex2   []byte
	stek   []byte
	issued bool
}

func snapshotObs(obs []Observation) []obsSnapshot {
	out := make([]obsSnapshot, len(obs))
	for i, o := range obs {
		out[i] = obsSnapshot{
			domain: o.Domain,
			ok:     o.OK,
			suite:  o.Suite,
			kex1:   bytes.Clone(o.KEXValue),
			kex2:   bytes.Clone(o.KEXValue2),
			stek:   bytes.Clone(o.STEKID),
			issued: o.TicketIssued,
		}
	}
	return out
}

func compareObs(t *testing.T, label string, obs []Observation, snap []obsSnapshot) {
	t.Helper()
	for i, o := range obs {
		s := snap[i]
		if o.Domain != s.domain || o.OK != s.ok || o.Suite != s.suite || o.TicketIssued != s.issued {
			t.Fatalf("%s[%d] scalar fields changed: %+v", label, i, o)
		}
		if !bytes.Equal(o.KEXValue, s.kex1) || !bytes.Equal(o.KEXValue2, s.kex2) || !bytes.Equal(o.STEKID, s.stek) {
			t.Fatalf("%s[%d] %s: bytes changed after arena reuse:\n  kex1 %x vs %x\n  kex2 %x vs %x\n  stek %x vs %x",
				label, i, o.Domain, o.KEXValue, s.kex1, o.KEXValue2, s.kex2, o.STEKID, s.stek)
		}
	}
}

// TestArenaReuseDoesNotAliasResults proves no aliasing escapes a
// connection's lifecycle: observations and sessions produced by one scan
// must keep their exact bytes while later scans recycle the same worker
// arenas, pooled handshake connections, and capture buffers. Run under
// -race this also shakes out unsynchronized arena sharing between
// workers.
func TestArenaReuseDoesNotAliasResults(t *testing.T) {
	world, err := population.Build(population.Options{ListSize: 60, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	clock := world.Clock.(*simclock.Manual)
	s := &Scanner{
		Dialer: world.Net, Roots: world.Roots, Clock: clock,
		Workers: 4, Seed: []byte("alias|11"),
	}
	domains := world.TrustedCoreDomains()
	if len(domains) < 40 {
		t.Fatalf("population too small: %d trusted domains", len(domains))
	}
	a, b := domains[:20], domains[20:40]

	// Ticket scan over the first slice, then churn every arena with
	// different domains, days, and scan kinds; the first results must not
	// move.
	tickets := s.Daily(a, 0, nil, true)
	tickSnap := snapshotObs(tickets)
	kexA := s.Daily(a, 0, []uint16{wire.SuiteECDHE}, false)
	kexSnap := snapshotObs(kexA)

	_ = s.Daily(b, 1, nil, true)
	_ = s.Daily(b, 1, []uint16{wire.SuiteDHE}, false)
	_ = s.Daily(b, 2, []uint16{wire.SuiteECDHE}, false)

	compareObs(t, "ticket", tickets, tickSnap)
	compareObs(t, "kex", kexA, kexSnap)

	// Sessions from the lifetime probe own their bytes: capture them,
	// churn the arenas again, and verify the retained IDs/tickets/masters
	// are intact.
	probeTargets := a[:8]
	_ = probeTargets
	results := s.LifetimeProbe(probeTargets, true, 30*time.Minute, 2*time.Hour)
	if len(results) != len(probeTargets) {
		t.Fatalf("lifetime probe returned %d of %d", len(results), len(probeTargets))
	}
	resSnap := make([]ProbeResult, len(results))
	copy(resSnap, results)

	_ = s.Daily(b, 3, nil, true)
	_ = s.Daily(a, 3, []uint16{wire.SuiteDHE}, false)

	for i := range results {
		if results[i] != resSnap[i] {
			t.Fatalf("lifetime result %d changed after arena reuse:\n  got  %+v\n  want %+v", i, results[i], resSnap[i])
		}
	}
}
