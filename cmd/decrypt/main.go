// Command decrypt performs retrospective decryption of a recorded TLS
// connection from a capture file (written with the attacker package's
// SaveFile, e.g. by examples or tests), given stolen secret state:
//
//	decrypt -capture victim.tlscap                 # parse-only summary
//	decrypt -capture victim.tlscap -master <hex48> # with a master secret
//	decrypt -capture victim.tlscap -stek <hex64>   # with a stolen STEK
//	                                               # (name16|aes16|mac32)
//	decrypt -demo                                  # self-contained demo
//
// It is the operational face of the paper's threat model: collection first,
// keys later.
package main

import (
	"encoding/hex"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"time"

	"tlsshortcuts/internal/attacker"
	"tlsshortcuts/internal/pki"
	"tlsshortcuts/internal/simclock"
	"tlsshortcuts/internal/ticket"
	"tlsshortcuts/internal/tlsclient"
	"tlsshortcuts/internal/tlsserver"
	"tlsshortcuts/internal/wire"
)

func main() {
	var (
		capturePath = flag.String("capture", "", "capture file to decrypt")
		masterHex   = flag.String("master", "", "48-byte master secret (hex)")
		stekHex     = flag.String("stek", "", "stolen RFC 5077 STEK: name(16)|aes(16)|mac(32), hex")
		demo        = flag.Bool("demo", false, "record a demo capture, then decrypt it")
		out         = flag.String("out", "", "with -demo: also save the capture here")
	)
	flag.Parse()

	if *demo {
		runDemo(*out)
		return
	}
	if *capturePath == "" {
		log.Fatal("need -capture (or -demo)")
	}
	conv, err := attacker.LoadFile(*capturePath)
	if err != nil {
		log.Fatal(err)
	}
	rec, err := attacker.Parse(conv)
	if err != nil {
		log.Fatal(err)
	}
	summarize(rec)

	var master []byte
	switch {
	case *masterHex != "":
		master, err = hex.DecodeString(*masterHex)
		if err != nil || len(master) != 48 {
			log.Fatalf("bad -master: need 48 hex bytes")
		}
	case *stekHex != "":
		raw, err := hex.DecodeString(*stekHex)
		if err != nil || len(raw) != 64 {
			log.Fatalf("bad -stek: need 64 hex bytes (name16|aes16|mac32)")
		}
		k := &ticket.STEK{Format: ticket.FormatRFC5077, Name: raw[:16]}
		copy(k.AESKey[:], raw[16:32])
		copy(k.MACKey[:], raw[32:64])
		master, err = rec.MasterFromSTEK(k)
		if err != nil {
			log.Fatalf("STEK recovery failed: %v", err)
		}
		fmt.Println("master secret recovered from the stolen STEK")
	default:
		fmt.Println("(no secret supplied; stopping after the summary)")
		return
	}
	decryptAndPrint(rec, master)
}

func summarize(rec *attacker.Recovered) {
	fmt.Printf("capture summary:\n")
	fmt.Printf("  suite: %s\n", wire.SuiteName(rec.Suite))
	fmt.Printf("  resumed connection: %v\n", rec.Resumed)
	fmt.Printf("  session ID: %x\n", rec.SessionID)
	fmt.Printf("  client offered ticket: %v bytes\n", len(rec.OfferedTicket))
	fmt.Printf("  server issued ticket: %v bytes", len(rec.IssuedTicket))
	if len(rec.IssuedTicket) > 0 {
		fmt.Printf(" (STEK id %x)", ticket.ExtractKeyID(rec.IssuedTicket))
	}
	fmt.Println()
	fmt.Printf("  encrypted records captured: %d\n", len(rec.Encrypted))
}

func decryptAndPrint(rec *attacker.Recovered, master []byte) {
	msgs, err := rec.Decrypt(master)
	if err != nil {
		log.Fatalf("decryption failed: %v", err)
	}
	for _, m := range msgs {
		dir := "server->client"
		if m.FromClient {
			dir = "client->server"
		}
		fmt.Printf("  [%s] %q\n", dir, m.Plain)
	}
	if len(msgs) == 0 {
		fmt.Println("  (no application data in the capture)")
	}
}

// runDemo records one victim connection against a throwaway server with a
// static STEK, saves it if requested, and decrypts it with the "stolen"
// key.
func runDemo(outPath string) {
	clock := simclock.NewManual(simclock.Epoch)
	root, err := pki.NewRootCA("Demo Root", pki.ECDSAP256, pki.DefaultRand)
	if err != nil {
		log.Fatal(err)
	}
	leaf, err := root.IssueLeaf([]string{"demo.example"}, pki.ECDSAP256,
		simclock.Epoch.AddDate(0, -1, 0), simclock.Epoch.AddDate(1, 0, 0), pki.DefaultRand)
	if err != nil {
		log.Fatal(err)
	}
	mgr := ticket.NewStatic([]byte("demo-stek"), ticket.FormatRFC5077)
	scfg := &tlsserver.Config{
		Clock: clock, DefaultCert: leaf, Tickets: mgr, RestartBase: simclock.Epoch,
	}
	cli, srv := net.Pipe()
	go tlsserver.Serve(srv, scfg)
	tap := attacker.NewTap(cli)
	if _, err := tlsclient.Handshake(tap, &tlsclient.Config{
		ServerName: "demo.example", Clock: clock, OfferTicket: true,
		AppData: []byte("GET /secret HTTP/1.1\r\nAuthorization: Bearer demo-token\r\n\r\n"),
	}); err != nil {
		log.Fatal(err)
	}
	cli.Close()
	conv := tap.Conversation()
	if outPath != "" {
		if err := conv.SaveFile(outPath); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("capture written to %s\n", outPath)
	}
	rec, err := attacker.Parse(conv)
	if err != nil {
		log.Fatal(err)
	}
	summarize(rec)
	clock.Advance(30 * 24 * time.Hour)
	fmt.Println("\n30 days later, the STEK leaks:")
	master, err := rec.MasterFromSTEK(mgr.ActiveKeys(clock.Now())...)
	if err != nil {
		log.Fatal(err)
	}
	decryptAndPrint(rec, master)
	k := mgr.ActiveKeys(clock.Now())[0]
	fmt.Printf("\n(replay with: decrypt -capture <file> -stek %x%x%x)\n",
		k.Name, k.AESKey, k.MACKey)
	os.Exit(0)
}
