// Package perf holds the process-wide switches for the campaign engine's
// performance layers. Every switch defaults to on; the equivalence tests
// flip them off to prove the fast paths are observationally identical to
// the straightforward ones (same seed -> byte-identical Dataset).
//
// The switches exist for verification only — production code never turns
// them off.
package perf

import "sync/atomic"

var (
	cryptoCaches      atomic.Bool // epoch-keyed KEX caches, cert-marshal/parse caches
	clientKexReuse    atomic.Bool // scanner reuses its client-side ephemeral keys
	bufferedPipes     atomic.Bool // simnet dials buffered pipes instead of net.Pipe
	reportMemoized    atomic.Bool // study.BuildReport memoizes per Dataset
	kexOnlyProbes     atomic.Bool // forced-suite scans disconnect after the SKE
	cryptoAmortize    atomic.Bool // AEAD/premaster/SKE-verify/ticket-flight amortization
	connRecycling     atomic.Bool // arena-recycled conn state (bufs, captures, scratch)
	flightCoalescing  atomic.Bool // record layer batches each flight into one write
	chunkedScheduling atomic.Bool // scanner workers claim contiguous domain blocks
)

func init() {
	cryptoCaches.Store(true)
	clientKexReuse.Store(true)
	bufferedPipes.Store(true)
	reportMemoized.Store(true)
	kexOnlyProbes.Store(true)
	cryptoAmortize.Store(true)
	connRecycling.Store(true)
	flightCoalescing.Store(true)
	chunkedScheduling.Store(true)
}

// CryptoCaches reports whether the epoch-keyed crypto caches are enabled.
func CryptoCaches() bool { return cryptoCaches.Load() }

// SetCryptoCaches toggles the epoch-keyed crypto caches (tests only).
func SetCryptoCaches(on bool) { cryptoCaches.Store(on) }

// ClientKexReuse reports whether the scanner reuses client KEX keys.
func ClientKexReuse() bool { return clientKexReuse.Load() }

// SetClientKexReuse toggles scanner client-key reuse (tests only).
func SetClientKexReuse(on bool) { clientKexReuse.Store(on) }

// BufferedPipes reports whether simnet uses the buffered transport.
func BufferedPipes() bool { return bufferedPipes.Load() }

// SetBufferedPipes toggles the buffered transport (tests only).
func SetBufferedPipes(on bool) { bufferedPipes.Store(on) }

// ReportMemoized reports whether BuildReport memoizes per Dataset.
func ReportMemoized() bool { return reportMemoized.Load() }

// SetReportMemoized toggles BuildReport memoization (tests only).
func SetReportMemoized(on bool) { reportMemoized.Store(on) }

// KexOnlyProbes reports whether key-exchange scans stop after capturing
// the ServerKeyExchange (zgrab-style) instead of completing the
// handshake. Everything those scans record is on the wire before the
// client's first flight, so the abbreviated probe observes exactly what
// the full handshake would.
func KexOnlyProbes() bool { return kexOnlyProbes.Load() }

// SetKexOnlyProbes toggles SKE-and-disconnect probing (tests only).
func SetKexOnlyProbes(on bool) { kexOnlyProbes.Store(on) }

// CryptoAmortization reports whether the per-connection crypto
// amortization layer is enabled: the traffic-key-keyed AEAD cache, the
// fixed-client-key premaster caches on both endpoints, verify-once
// ServerKeyExchange signature checking, and the cached NewSessionTicket
// flight prefix + in-place ticket sealing.
func CryptoAmortization() bool { return cryptoAmortize.Load() }

// SetCryptoAmortization toggles the crypto amortization layer (tests only).
func SetCryptoAmortization(on bool) { cryptoAmortize.Store(on) }

// ConnRecycling reports whether connection-state recycling is enabled:
// pooled pipe receive buffers, pooled client handshake buffers with
// capture-owned retained bytes, per-worker scanner arenas (Config,
// Capture, drbg stream), and scratch-decoded server ticket state.
func ConnRecycling() bool { return connRecycling.Load() }

// SetConnRecycling toggles connection-state recycling (tests only).
func SetConnRecycling(on bool) { connRecycling.Store(on) }

// FlightCoalescing reports whether the record layer batches each
// handshake flight into a single transport write, flushed before the
// next read. The byte stream is identical to per-record writes; only
// the number of pipe wakeups changes.
func FlightCoalescing() bool { return flightCoalescing.Load() }

// SetFlightCoalescing toggles flight-level write coalescing (tests only).
func SetFlightCoalescing(on bool) { flightCoalescing.Store(on) }

// ChunkedScheduling reports whether scanner workers claim contiguous
// blocks of domains instead of striding by single index, keeping each
// worker's recycled connection state cache-hot. Results are indexed by
// domain position, so the claim order is observationally inert.
func ChunkedScheduling() bool { return chunkedScheduling.Load() }

// SetChunkedScheduling toggles chunked work claiming (tests only).
func SetChunkedScheduling(on bool) { chunkedScheduling.Store(on) }
