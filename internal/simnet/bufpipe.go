package simnet

import (
	"io"
	"net"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"tlsshortcuts/internal/perf"
)

// recvBufPool recycles receive buffers across pipes: each handshake makes
// one pipe whose two ~2 KB direction buffers would otherwise be fresh
// allocations. Buffers are handed out at first write and returned when
// the reading side closes (after which neither read nor write touches
// b.buf again, so ownership transfer is unambiguous).
var recvBufPool sync.Pool // *[]byte

// wakeTimer is a pooled read-deadline wake-up timer. The timer callback
// is fixed at construction and indirects through an atomic target
// pointer, so one runtime timer serves many pipes over its lifetime. A
// stale fire after the timer migrates broadcasts on the new target,
// which is harmless: readers recheck their deadline under the lock.
type wakeTimer struct {
	t *time.Timer
	b atomic.Pointer[pipeBuf]
}

func (w *wakeTimer) fire() {
	if b := w.b.Load(); b != nil {
		b.mu.Lock()
		b.cond.Broadcast()
		b.mu.Unlock()
	}
}

var wakeTimerPool sync.Pool // *wakeTimer

func getWakeTimer(b *pipeBuf) *wakeTimer {
	w, _ := wakeTimerPool.Get().(*wakeTimer)
	if w == nil {
		w = &wakeTimer{}
		w.t = time.AfterFunc(time.Hour, w.fire)
		w.t.Stop()
	}
	w.b.Store(b)
	return w
}

// NewBufferedPipe returns a connected pair of in-memory net.Conns, like
// net.Pipe but buffered: Write copies into the peer's receive buffer and
// returns immediately instead of blocking on a reader rendezvous. Every
// TLS record flush in the simulation otherwise costs a synchronous
// goroutine handoff; over a campaign's hundreds of thousands of
// handshakes those handoffs dominate the transport cost.
//
// Semantics preserved from net.Pipe:
//   - Read blocks until data, peer close (io.EOF), own close
//     (io.ErrClosedPipe), or read-deadline expiry (net.Error, Timeout).
//   - Write after Close of either end returns io.ErrClosedPipe.
//   - SetDeadline/SetReadDeadline/SetWriteDeadline wake blocked peers.
//
// Differences (documented in DESIGN.md): writes never block, so data
// written before a Close is still readable by the peer until drained
// (TCP-like), and write deadlines only apply at call time.
func NewBufferedPipe() (net.Conn, net.Conn) {
	// Both directions and both endpoints live in one allocation; a
	// campaign makes one pipe per handshake, so the four separate
	// allocations this replaces were a visible slice of the profile.
	p := &pipePair{}
	p.ab.cond.L = &p.ab.mu
	p.ba.cond.L = &p.ba.mu
	p.a = bufConn{rd: &p.ba, wr: &p.ab}
	p.b = bufConn{rd: &p.ab, wr: &p.ba}
	return &p.a, &p.b
}

// pipePair packs a pipe's two directions and two endpoints into a single
// allocation.
type pipePair struct {
	ab, ba pipeBuf // data flowing a -> b, b -> a
	a, b   bufConn
}

// pipeBuf is one direction's byte queue.
type pipeBuf struct {
	mu    sync.Mutex
	cond  sync.Cond
	buf   []byte // pending bytes are buf[off:]
	off   int
	wEOF  bool // writer side closed: drain then io.EOF
	rGone bool // reader side closed: writes fail, reads fail

	rdDeadline time.Time
	wrDeadline time.Time
	rdTimer    *time.Timer
	rdArmed    bool // timer armed for the current rdDeadline

	// box is the recvBufPool box buf came from (nil for a fresh make),
	// reused at closeRead so returning the buffer costs no allocation.
	box *[]byte
	// wake is the pooled timer behind rdTimer, when recycling is on.
	wake *wakeTimer
}

// bufConn is one endpoint: reads from rd, writes into wr.
type bufConn struct {
	rd, wr *pipeBuf

	mu     sync.Mutex
	closed bool
}

type pipeAddr struct{}

func (pipeAddr) Network() string { return "bufpipe" }
func (pipeAddr) String() string  { return "bufpipe" }

// timeoutError matches the error surface of net.Pipe deadline failures.
func timeoutError() error { return os.ErrDeadlineExceeded }

func (b *pipeBuf) write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.rGone || b.wEOF {
		return 0, io.ErrClosedPipe
	}
	if !b.wrDeadline.IsZero() && !time.Now().Before(b.wrDeadline) {
		return 0, timeoutError()
	}
	// Compact once the consumed prefix dominates, so long-lived
	// connections don't grow without bound.
	if b.off > 4096 && b.off*2 > len(b.buf) {
		n := copy(b.buf, b.buf[b.off:])
		b.buf = b.buf[:n]
		b.off = 0
	}
	// Reserve a full handshake flight up front: growing from nil costs
	// several reallocations per direction on every connection, and the
	// server's flight (cert chain included) runs to ~2 KB.
	if b.buf == nil && len(p) > 0 {
		reserve := 2048
		if len(p)+512 > reserve {
			reserve = len(p) + 512
		}
		if perf.ConnRecycling() {
			if v, _ := recvBufPool.Get().(*[]byte); v != nil {
				if cap(*v) >= reserve {
					b.buf = (*v)[:0]
					b.box = v
				} else {
					*v = make([]byte, 0, reserve)
					b.buf = *v
					b.box = v
				}
			}
		}
		if b.buf == nil {
			b.buf = make([]byte, 0, reserve)
		}
	}
	b.buf = append(b.buf, p...)
	b.cond.Broadcast()
	return len(p), nil
}

func (b *pipeBuf) read(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	for {
		if b.rGone {
			return 0, io.ErrClosedPipe
		}
		if b.off < len(b.buf) {
			n := copy(p, b.buf[b.off:])
			b.off += n
			if b.off == len(b.buf) {
				b.buf = b.buf[:0]
				b.off = 0
			}
			return n, nil
		}
		if b.wEOF {
			return 0, io.EOF
		}
		if !b.rdDeadline.IsZero() && !time.Now().Before(b.rdDeadline) {
			return 0, timeoutError()
		}
		if len(p) == 0 {
			return 0, nil
		}
		// Arm the wake-up timer only now that this reader actually blocks:
		// most reads find data already buffered and never need one.
		if !b.rdDeadline.IsZero() && !b.rdArmed {
			if d := time.Until(b.rdDeadline); d > 0 {
				switch {
				case b.rdTimer != nil:
					b.rdTimer.Reset(d)
				case perf.ConnRecycling():
					b.wake = getWakeTimer(b)
					b.rdTimer = b.wake.t
					b.rdTimer.Reset(d)
				default:
					b.rdTimer = time.AfterFunc(d, func() {
						b.mu.Lock()
						b.cond.Broadcast()
						b.mu.Unlock()
					})
				}
				b.rdArmed = true
			}
		}
		b.cond.Wait()
	}
}

// closeWrite marks the writer side closed; pending data stays readable.
func (b *pipeBuf) closeWrite() {
	b.mu.Lock()
	b.wEOF = true
	b.cond.Broadcast()
	b.mu.Unlock()
}

// closeRead marks the reader side closed; subsequent peer writes fail.
// Any armed deadline timer is stopped — once the scanner sets deadlines
// on every connection, leaving timers ticking past Close would leak one
// per campaign handshake.
func (b *pipeBuf) closeRead() {
	b.mu.Lock()
	b.rGone = true
	if b.rdTimer != nil {
		b.rdTimer.Stop()
		b.rdTimer = nil
	}
	if b.wake != nil {
		b.wake.b.Store(nil)
		wakeTimerPool.Put(b.wake)
		b.wake = nil
	}
	if b.buf != nil && perf.ConnRecycling() {
		// rGone is set: read and write both bail before touching buf, so
		// the (possibly grown) buffer can migrate to the next pipe. Reuse
		// the box it arrived in; only first-generation buffers box fresh.
		box := b.box
		if box == nil {
			box = new([]byte)
		}
		*box = b.buf
		b.buf = nil
		b.box = nil
		b.off = 0
		recvBufPool.Put(box)
	}
	b.cond.Broadcast()
	b.mu.Unlock()
}

// setReadDeadline records t; the wake-up timer is armed lazily by read()
// the first time a reader blocks under this deadline, and reused (Reset)
// across deadlines rather than reallocated. A stale fire is harmless
// because the read loop rechecks the deadline under the lock.
func (b *pipeBuf) setReadDeadline(t time.Time) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.rdDeadline = t
	if b.rdTimer != nil {
		b.rdTimer.Stop()
	}
	b.rdArmed = false
	b.cond.Broadcast()
}

func (c *bufConn) Read(p []byte) (int, error)  { return c.rd.read(p) }
func (c *bufConn) Write(p []byte) (int, error) { return c.wr.write(p) }

func (c *bufConn) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	c.mu.Unlock()
	c.rd.closeRead()  // our reads now fail, peer writes now fail
	c.wr.closeWrite() // peer drains remaining data, then sees io.EOF
	return nil
}

func (c *bufConn) LocalAddr() net.Addr  { return pipeAddr{} }
func (c *bufConn) RemoteAddr() net.Addr { return pipeAddr{} }

func (c *bufConn) SetDeadline(t time.Time) error {
	c.rd.setReadDeadline(t)
	c.wr.setWriteDeadline(t)
	return nil
}

func (c *bufConn) SetReadDeadline(t time.Time) error {
	c.rd.setReadDeadline(t)
	return nil
}

func (c *bufConn) SetWriteDeadline(t time.Time) error {
	c.wr.setWriteDeadline(t)
	return nil
}

// setWriteDeadline records the deadline; writes never block, so it is
// only consulted at Write entry.
func (b *pipeBuf) setWriteDeadline(t time.Time) {
	b.mu.Lock()
	b.wrDeadline = t
	b.mu.Unlock()
}
