package simnet

import (
	"fmt"
	"testing"

	"tlsshortcuts/internal/telemetry"
	"tlsshortcuts/internal/tlsserver"
)

func multiBackendNet() *Net {
	n := New()
	n.Register("multi.example", 1, []string{"10.9.0.1"},
		&Endpoint{Config: &tlsserver.Config{}},
		&Endpoint{Config: &tlsserver.Config{}},
		&Endpoint{Config: &tlsserver.Config{}},
		&Endpoint{Config: &tlsserver.Config{}},
	)
	return n
}

// backendCounts runs fn against a fresh net+registry and returns the
// per-backend choice multiset.
func backendCounts(t *testing.T, fn func(n *Net)) map[string]uint64 {
	t.Helper()
	n := multiBackendNet()
	reg := telemetry.NewRegistry()
	n.SetTelemetry(reg)
	fn(n)
	return reg.Snapshot().PrefixCounters("simnet/backend/")
}

// TestStableDialsDoNotPerturbDialSequence is the traffic plane's
// isolation regression: DialProbeStable keys its balancer choice on
// (domain, label) and must never consume the shared per-domain dial
// sequence, so interleaving any number of stable dials (the traffic
// plane's visits) between a scan's Dial calls leaves every Dial's
// backend choice — and with it every scanner observation — unchanged.
func TestStableDialsDoNotPerturbDialSequence(t *testing.T) {
	const dials = 40
	dialOnly := func(n *Net) {
		for i := 0; i < dials; i++ {
			c, err := n.Dial("multi.example")
			if err != nil {
				t.Fatalf("dial %d: %v", i, err)
			}
			c.Close()
		}
	}
	stableOnly := func(n *Net) {
		for i := 0; i < dials; i++ {
			c, err := n.DialProbeStable("multi.example", fmt.Sprintf("tr|u%d|d0|s1|0", i))
			if err != nil {
				t.Fatalf("stable dial %d: %v", i, err)
			}
			c.Close()
		}
	}

	base := backendCounts(t, dialOnly)
	stable := backendCounts(t, stableOnly)
	mixed := backendCounts(t, func(n *Net) {
		// Interleave: stable traffic dial between every pair of scan dials.
		for i := 0; i < dials; i++ {
			c, err := n.Dial("multi.example")
			if err != nil {
				t.Fatalf("dial %d: %v", i, err)
			}
			c.Close()
			c, err = n.DialProbeStable("multi.example", fmt.Sprintf("tr|u%d|d0|s1|0", i))
			if err != nil {
				t.Fatalf("stable dial %d: %v", i, err)
			}
			c.Close()
		}
	})

	// Stable choices are pure functions of (domain, label), so the mixed
	// run's multiset must be exactly base + stable: any difference means
	// the stable path consumed the dial sequence (or vice versa).
	for idx := 0; idx < 4; idx++ {
		k := fmt.Sprintf("simnet/backend/%d", idx)
		if got, want := mixed[k], base[k]+stable[k]; got != want {
			t.Errorf("backend %d chosen %d times in mixed run, want %d (dial-only %d + stable-only %d)",
				idx, got, want, base[k], stable[k])
		}
	}
}
