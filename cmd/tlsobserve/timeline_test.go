package main

import (
	"bytes"
	"fmt"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"tlsshortcuts/internal/obsv"
	"tlsshortcuts/internal/telemetry"
)

// writeTimelineFixture builds a synthetic but schema-faithful journal the
// way studyrun does — through the obsv.Journal observer API — with two
// scan days, a cross-domain pass, and (optionally) interleaved
// traffic-day phases.
func writeTimelineFixture(t *testing.T, path string, withTraffic bool) {
	t.Helper()
	j, err := obsv.CreateJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	j.CampaignStart(120, 2, 7, 4, "")
	date := func(day int) string {
		return time.Date(2016, 3, 2+day, 0, 0, 0, 0, time.UTC).Format(time.RFC3339)
	}
	end := func(phase string, day int, hs uint64, fails int, classes map[string]uint64) {
		span := telemetry.Span{
			Phase: phase, Day: day, Days: 2, VirtualDate: date(maxInt(day, 0)),
			Domains: 120, Failures: fails, Handshakes: hs,
			WallNanos: int64(5+day) * int64(time.Millisecond), Workers: 4,
		}
		_ = j.OnPhase(telemetry.PhaseEvent{Span: span, Start: true})
		_ = j.OnPhase(telemetry.PhaseEvent{Span: span, FailureClasses: classes})
	}
	for day := 0; day < 2; day++ {
		end("day", day, uint64(300+day), 0, nil)
		if withTraffic {
			end("traffic-day", day, uint64(40+day), 1,
				map[string]uint64{"timeout": 1})
		}
	}
	end("cross-domain", -1, 900, 0, nil)
	j.CampaignEnd("f00dfeed")
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func runTimelineToString(t *testing.T, paths ...string) string {
	t.Helper()
	var buf bytes.Buffer
	if err := runTimeline(&buf, paths); err != nil {
		t.Fatalf("runTimeline: %v", err)
	}
	return buf.String()
}

// TestTimelineTrafficLane renders a journal carrying traffic-day phases
// and checks the traffic plane gets its own lane: a "<key>:traffic"
// column, visit cells on the matching scan-day rows, "-" on rows with no
// traffic phase, and traffic failure classes folded into the error table.
func TestTimelineTrafficLane(t *testing.T) {
	dir := t.TempDir()
	p := filepath.Join(dir, "shard.jsonl")
	writeTimelineFixture(t, p, true)
	out := runTimelineToString(t, p)

	if !strings.Contains(out, "shard.jsonl:traffic") {
		t.Errorf("missing traffic lane header; output:\n%s", out)
	}
	for day := 0; day < 2; day++ {
		if want := fmt.Sprintf("vis=%d fail=1", 40+day); !strings.Contains(out, want) {
			t.Errorf("missing traffic cell %q for day %d; output:\n%s", want, day, out)
		}
	}
	// The cross-domain row has no matching traffic day: its traffic cell
	// must be the placeholder, and the traffic phase must never appear as
	// a scan row of its own.
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "cross-domain") && !strings.Contains(line, "-") {
			t.Errorf("cross-domain row lacks a placeholder traffic cell: %q", line)
		}
		if strings.HasPrefix(line, "traffic-day") {
			t.Errorf("traffic-day leaked into the scan rows: %q", line)
		}
	}
	if !strings.Contains(out, "timeout") {
		t.Errorf("traffic failure class missing from the error table; output:\n%s", out)
	}
}

// TestTimelineNoTrafficNoLane pins that a traffic-free journal renders
// exactly as before the traffic plane existed: no ":traffic" column.
func TestTimelineNoTrafficNoLane(t *testing.T) {
	dir := t.TempDir()
	p := filepath.Join(dir, "shard.jsonl")
	writeTimelineFixture(t, p, false)
	out := runTimelineToString(t, p)
	if strings.Contains(out, ":traffic") {
		t.Errorf("traffic lane rendered for a journal with no traffic phases:\n%s", out)
	}
	if !strings.Contains(out, "hs=300") {
		t.Errorf("day-0 scan cell missing; output:\n%s", out)
	}
}

// TestTimelineTrafficAcrossShards checks a mixed set — one journal with
// traffic, one without — keeps the scan lanes positionally aligned and
// adds the traffic lane only for the journal that ran traffic.
func TestTimelineTrafficAcrossShards(t *testing.T) {
	dir := t.TempDir()
	a := filepath.Join(dir, "a.jsonl")
	b := filepath.Join(dir, "b.jsonl")
	writeTimelineFixture(t, a, true)
	writeTimelineFixture(t, b, false)
	out := runTimelineToString(t, a, b)

	if !strings.Contains(out, "a.jsonl:traffic") {
		t.Errorf("journal a's traffic lane missing:\n%s", out)
	}
	if strings.Contains(out, "b.jsonl:traffic") {
		t.Errorf("journal b grew a traffic lane without traffic phases:\n%s", out)
	}
	if strings.Contains(out, "DIVERGED") {
		t.Errorf("scan lanes diverged once traffic phases were split out:\n%s", out)
	}
}
