package attacker

import (
	"tlsshortcuts/internal/ticket"
)

// CapturedConn is one tap-recorded probe connection from the
// cryptanalysis capture pass: the raw recording plus its passive parse.
type CapturedConn struct {
	Domain string
	Conv   *Conversation
	Rec    *Recovered
}

// Yield is the measured outcome of replaying a capture set against a key
// collection: how much of the recorded traffic actually decrypted. This
// is the paper-shaped result — not "key looked weak" but "these bytes
// came back as plaintext".
type Yield struct {
	Attempted   int `json:",omitempty"` // captured conversations replayed
	Domains     int `json:",omitempty"` // distinct domains with ≥1 decrypted conversation
	Connections int `json:",omitempty"` // conversations fully decrypted
	Bytes       int `json:",omitempty"` // plaintext application-data bytes recovered
}

// Add accumulates another yield (shard merge).
func (y *Yield) Add(o Yield) {
	y.Attempted += o.Attempted
	y.Domains += o.Domains
	y.Connections += o.Connections
	y.Bytes += o.Bytes
}

// Replay attempts retrospective decryption of every capture using the
// supplied (cracked or otherwise obtained) STEKs: for each conversation
// it tries to open a captured ticket, derive the master secret, and
// decrypt the recorded application data. Captures whose tickets no
// supplied key opens contribute only to Attempted.
func Replay(captures []CapturedConn, keys []*ticket.STEK) Yield {
	var y Yield
	perDomain := map[string]bool{}
	for _, c := range captures {
		if c.Rec == nil {
			continue
		}
		y.Attempted++
		master, err := c.Rec.MasterFromSTEK(keys...)
		if err != nil {
			continue
		}
		msgs, err := c.Rec.Decrypt(master)
		if err != nil {
			continue
		}
		y.Connections++
		if !perDomain[c.Domain] {
			perDomain[c.Domain] = true
			y.Domains++
		}
		for _, m := range msgs {
			y.Bytes += len(m.Plain)
		}
	}
	return y
}
