// Command studyrun executes the full nine-week measurement campaign against
// a freshly generated synthetic population and writes the dataset to disk.
//
// Usage:
//
//	studyrun -listsize 5000 -days 64 -seed 1 -out dataset.json
//
// The dataset feeds cmd/report, which regenerates every table and figure.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"time"

	"tlsshortcuts/internal/study"
)

func main() {
	var (
		listSize = flag.Int("listsize", 5000, "scaled Top Million list size")
		days     = flag.Int("days", 64, "study length in days (paper: Mar 2 - May 4 2016)")
		seed     = flag.Int64("seed", 1, "deterministic world/scan seed")
		workers  = flag.Int("workers", runtime.NumCPU()*2, "scan concurrency")
		out      = flag.String("out", "dataset.json", "output dataset path")
		report   = flag.Bool("report", true, "print the full report after the run")
		quiet    = flag.Bool("quiet", false, "suppress progress logging")
	)
	flag.Parse()

	logf := func(format string, args ...interface{}) {
		if !*quiet {
			log.Printf(format, args...)
		}
	}
	logf("building %d-domain world and running %d-day campaign (seed %d, %d workers)",
		*listSize, *days, *seed, *workers)
	start := time.Now()
	ds, err := study.Run(study.Options{
		ListSize: *listSize,
		Days:     *days,
		Seed:     *seed,
		Workers:  *workers,
		Logf:     logf,
	})
	if err != nil {
		log.Fatalf("study failed: %v", err)
	}
	logf("campaign finished in %v; writing %s", time.Since(start).Round(time.Second), *out)
	if err := ds.Save(*out); err != nil {
		log.Fatalf("saving dataset: %v", err)
	}
	if *report {
		fmt.Fprintln(os.Stdout, study.BuildReport(ds).String())
	}
}
