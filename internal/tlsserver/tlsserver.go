// Package tlsserver is the from-scratch TLS 1.2 server state machine: full
// handshakes (ECDHE/DHE), session-ID resumption, RFC 5077 ticket
// resumption with reissue, SNI virtual hosting, and the configurable
// shortcut policies the paper measures — session-cache lifetime, STEK
// rotation, and KEX value reuse.
package tlsserver

import (
	"crypto"
	"crypto/ecdh"
	crand "crypto/rand"
	"crypto/sha256"
	"errors"
	"fmt"
	"hash"
	"io"
	"math/big"
	"net"
	"sync"
	"time"

	"tlsshortcuts/internal/drbg"
	"tlsshortcuts/internal/ffdh"
	"tlsshortcuts/internal/keyex"
	"tlsshortcuts/internal/perf"
	"tlsshortcuts/internal/pki"
	"tlsshortcuts/internal/prf"
	"tlsshortcuts/internal/record"
	"tlsshortcuts/internal/session"
	"tlsshortcuts/internal/simclock"
	"tlsshortcuts/internal/telemetry"
	"tlsshortcuts/internal/ticket"
	"tlsshortcuts/internal/wire"
)

// Config is one SSL terminator's behavior. The zero value of the policy
// fields is the safest configuration (fresh KEX values, no cache, no
// tickets); the population wires in the shortcuts.
type Config struct {
	Clock simclock.Clock

	// Certificates: SNI name -> cert, with DefaultCert as fallback.
	DefaultCert *pki.Certificate
	Certs       map[string]*pki.Certificate

	// Session tickets. A nil Tickets manager disables tickets entirely.
	Tickets    ticket.Manager
	TicketHint time.Duration

	// Session-ID cache; nil disables ID resumption. Shared instances
	// model cross-domain cache groups.
	Cache *session.Cache

	// Cipher support and KEX reuse policies.
	DisableECDHE bool
	DisableDHE   bool
	ECDHEPolicy  *keyex.Policy
	DHEPolicy    *keyex.Policy

	// DHEGroup overrides the FFDH group served in the ServerKeyExchange;
	// nil means the default simulation group. The weak-crypto population
	// points this at the shared export-grade group.
	DHEGroup *ffdh.Group

	// RestartBase anchors process-lifetime state (informational).
	RestartBase time.Time

	// Rand supplies all server entropy (hello randoms, IVs, session
	// IDs); nil means crypto/rand.
	Rand io.Reader

	// RandSeed, when non-nil and Rand is nil, makes the terminator's
	// entropy deterministic: each connection draws from a drbg stream
	// keyed by (RandSeed, ClientHello.Random). Campaigns set this so the
	// same study seed replays byte-identical datasets.
	RandSeed []byte

	// Respond maps one application-data record to a response; nil gives
	// a canned HTTP 200.
	Respond func([]byte) []byte
}

func (c *Config) now() time.Time {
	if c.Clock != nil {
		return c.Clock.Now()
	}
	return time.Now()
}

func (c *Config) rand() io.Reader {
	if c.Rand != nil {
		return c.Rand
	}
	return crand.Reader
}

// connRand returns the entropy source for one connection. With RandSeed
// set it is a fresh deterministic stream per ClientHello (the client
// random salts it, so concurrent connections never share a stream).
func (c *Config) connRand(clientRandom []byte) io.Reader {
	if c.Rand != nil {
		return c.Rand
	}
	if c.RandSeed != nil {
		return drbg.New(c.RandSeed, clientRandom)
	}
	return crand.Reader
}

func (c *Config) certFor(sni string) *pki.Certificate {
	if c.Certs != nil {
		if crt, ok := c.Certs[sni]; ok {
			return crt
		}
	}
	return c.DefaultCert
}

// hsConn couples the record layer with a handshake-message reader and the
// running transcript hash. Instances are pooled and everything resets
// cheaply between connections — including buf: unlike the client, the
// server retains nothing that aliases it past the handshake (cache keys
// are copied via string conversion, ticket state is decoded into fresh
// session.State), so the accumulation buffer is reused too.
type hsConn struct {
	rc     record.Conn
	buf    []byte
	off    int       // consumed prefix of buf (keeps the base pointer pooled)
	hash   hash.Hash // running transcript digest
	ex     prf.Expander
	rng    drbg.Reader // per-connection deterministic entropy (RandSeed mode)
	sigRng drbg.Reader // separate stream for SKE signing (see full())
	mbuf   []byte      // outgoing handshake-message marshal scratch
	sp     []byte      // SKE signed-params scratch
	// Per-connection wire structs, reused across pooled connections;
	// nothing that outlives the handshake aliases them (the session cache
	// copies its key, session.State holds only values).
	ch  wire.ClientHello
	sh  wire.ServerHello
	ske wire.SKE
	st  session.State // ticket-resume state scratch (see OpenTicketInto)
	sid [32]byte      // session-ID scratch for sh.SessionID
	// Fixed derivation scratch; capacities round up to PRF blocks.
	seed   [64]byte // server_random || client_random
	kb     [64]byte // key block (40 bytes used)
	master [64]byte // master secret (48 bytes used; copied into State)
	fin    [32]byte // Finished verify_data (12 bytes used)
	pre    [32]byte // transcript digest
}

var hsPool = sync.Pool{New: func() any { return &hsConn{hash: sha256.New()} }}

func getHsConn(conn net.Conn) *hsConn {
	h := hsPool.Get().(*hsConn)
	h.rc.Reset(conn)
	h.hash.Reset()
	h.buf = h.buf[:0]
	h.off = 0
	return h
}

// connRand is Config.connRand using the pooled connection's reader in
// the deterministic RandSeed mode, so the per-connection stream costs no
// allocation. The stream bytes are identical either way.
func (h *hsConn) connRand(cfg *Config, clientRandom []byte) io.Reader {
	if cfg.Rand == nil && cfg.RandSeed != nil {
		h.rng.Reseed(cfg.RandSeed, clientRandom)
		return &h.rng
	}
	return cfg.connRand(clientRandom)
}

// transcript returns the hash of the handshake messages so far, in the
// connection's digest scratch (valid until the next transcript call).
func (h *hsConn) transcript() []byte {
	return h.hash.Sum(h.pre[:0])
}

func (h *hsConn) writeMsg(m *wire.Msg) error {
	h.mbuf = m.AppendTo(h.mbuf[:0])
	return h.writeRaw(h.mbuf)
}

// writeRaw sends pre-marshaled handshake bytes (the cert-chain message is
// marshaled once per certificate, not once per connection).
func (h *hsConn) writeRaw(b []byte) error {
	h.hash.Write(b)
	return h.rc.WriteRecord(record.TypeHandshake, b)
}

// readMsg returns the next handshake message; ccs is true when a
// ChangeCipherSpec record arrived instead.
//
// Contract: the returned Body (and anything parsed out of it — the
// ClientHello's Ticket/SessionID, a CKE public) aliases the pooled buf
// and is only valid until the next readMsg that pulls a handshake
// record off the wire; consume aliased bytes before reading on.
// (ClientHello.Random is a value array and survives.)
func (h *hsConn) readMsg() (m wire.Msg, ccs bool, err error) {
	for {
		if pend := h.buf[h.off:]; len(pend) >= 4 {
			n := int(pend[1])<<16 | int(pend[2])<<8 | int(pend[3])
			if len(pend) >= 4+n {
				raw := pend[:4+n]
				h.off += 4 + n
				h.hash.Write(raw)
				return wire.Msg{Type: raw[0], Body: raw[4:]}, false, nil
			}
		}
		rec, err := h.rc.ReadRecord()
		if err != nil {
			return wire.Msg{}, false, err
		}
		switch rec.Type {
		case record.TypeHandshake:
			if h.off == len(h.buf) {
				// Fully consumed: rewind instead of appending past the
				// dead prefix, so the pooled buffer's capacity survives.
				h.buf = h.buf[:0]
				h.off = 0
			}
			h.buf = append(h.buf, rec.Payload...)
		case record.TypeChangeCipherSpec:
			return wire.Msg{}, true, nil
		case record.TypeAlert:
			return wire.Msg{}, false, alertError(rec.Payload)
		default:
			return wire.Msg{}, false, fmt.Errorf("tls: unexpected record type %d during handshake", rec.Type)
		}
	}
}

func alertError(p []byte) error {
	if len(p) == 2 {
		return fmt.Errorf("tls: received alert %d", p[1])
	}
	return errors.New("tls: received malformed alert")
}

// Serve runs one server-side connection to completion: handshake, then an
// application-data echo loop until the peer closes.
func Serve(conn net.Conn, cfg *Config) error {
	hc := getHsConn(conn)
	defer hsPool.Put(hc)
	// Reads flush pending coalesced flights, so this only delivers bytes
	// on paths that exit without reading again.
	defer hc.rc.Flush()
	st, err := handshake(hc, cfg)
	if err != nil {
		return err
	}
	_ = st
	return appLoop(&hc.rc, cfg)
}

func appLoop(rc *record.Conn, cfg *Config) error {
	for {
		rec, err := rc.ReadRecord()
		if err != nil {
			if errors.Is(err, io.EOF) || errors.Is(err, io.ErrClosedPipe) || errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		switch rec.Type {
		case record.TypeAppData:
			resp := []byte("HTTP/1.1 200 OK\r\ncontent-length: 3\r\n\r\nok\n")
			if cfg.Respond != nil {
				resp = cfg.Respond(rec.Payload)
			}
			if err := rc.WriteRecord(record.TypeAppData, resp); err != nil {
				return err
			}
		case record.TypeAlert:
			return nil // close_notify
		default:
			return fmt.Errorf("tls: unexpected record type %d", rec.Type)
		}
	}
}

func handshake(hc *hsConn, cfg *Config) (*session.State, error) {
	msg, _, err := hc.readMsg()
	if err != nil {
		return nil, err
	}
	if msg.Type != wire.TypeClientHello {
		return nil, fmt.Errorf("tls: expected ClientHello, got %d", msg.Type)
	}
	ch := &hc.ch
	if err := wire.ParseClientHelloInto(ch, msg.Body); err != nil {
		return nil, err
	}
	now := cfg.now()

	// Ticket resumption?
	if len(ch.Ticket) > 0 && cfg.Tickets != nil {
		if perf.ConnRecycling() {
			// Decode into the pooled connection's scratch: the resume
			// path's state is transient (never stored), so the per-ticket
			// State and decrypt-buffer allocations are pure overhead.
			if cfg.Tickets.OpenTicketInto(&hc.st, ch.Ticket, now) && suiteOffered(ch.Suites, hc.st.Suite) {
				return &hc.st, resume(hc, cfg, ch, &hc.st, now)
			}
		} else if st := cfg.Tickets.OpenTicket(ch.Ticket, now); st != nil && suiteOffered(ch.Suites, st.Suite) {
			return st, resume(hc, cfg, ch, st, now)
		}
	}
	// Session-ID resumption?
	if len(ch.SessionID) > 0 && cfg.Cache != nil {
		if st := cfg.Cache.Get(ch.SessionID, now); st != nil && suiteOffered(ch.Suites, st.Suite) {
			return st, resume(hc, cfg, ch, st, now)
		}
	}
	return full(hc, cfg, ch, now)
}

func suiteOffered(offer []uint16, s uint16) bool {
	for _, o := range offer {
		if o == s {
			return true
		}
	}
	return false
}

func (c *Config) pickSuite(offer []uint16) uint16 {
	for _, s := range offer {
		switch s {
		case wire.SuiteECDHE:
			if !c.DisableECDHE {
				return s
			}
		case wire.SuiteDHE:
			if !c.DisableDHE {
				return s
			}
		}
	}
	return 0
}

func full(hc *hsConn, cfg *Config, ch *wire.ClientHello, now time.Time) (*session.State, error) {
	suite := cfg.pickSuite(ch.Suites)
	if suite == 0 {
		hc.rc.WriteAlert(record.AlertHandshakeFailure)
		return nil, errors.New("tls: no mutually supported cipher suite")
	}
	crt := cfg.certFor(ch.ServerName)
	if crt == nil {
		hc.rc.WriteAlert(record.AlertHandshakeFailure)
		return nil, errors.New("tls: no certificate configured")
	}
	rnd := hc.connRand(cfg, ch.Random[:])

	sh := &hc.sh
	*sh = wire.ServerHello{Suite: suite}
	if _, err := io.ReadFull(rnd, sh.Random[:]); err != nil {
		return nil, err
	}
	if cfg.Cache != nil {
		// Scratch-backed: the cache copies its key, so nothing retains it.
		sh.SessionID = hc.sid[:]
		if _, err := io.ReadFull(rnd, sh.SessionID); err != nil {
			return nil, err
		}
	}
	issueTicket := cfg.Tickets != nil && ch.OfferTicket
	sh.TicketAck = issueTicket
	hc.mbuf = sh.AppendTo(hc.mbuf[:0])
	if err := hc.writeRaw(hc.mbuf); err != nil {
		return nil, err
	}
	if err := hc.writeRaw(certMsgBytes(crt)); err != nil {
		return nil, err
	}

	// ServerKeyExchange with the policy-selected ephemeral value. The
	// private value is held in typed locals (not a closure) so the
	// premaster computation after the CKE arrives allocates nothing extra.
	var ecdhePriv *ecdh.PrivateKey
	var dheGroup *ffdh.Group
	var dhePriv *big.Int
	ske := &hc.ske
	*ske = wire.SKE{Kex: wire.SuiteKex(suite)}
	switch ske.Kex {
	case wire.KexECDHE:
		priv, pub, err := keyex.ECDHEKeyPub(cfg.ECDHEPolicy, now, rnd)
		if err != nil {
			return nil, err
		}
		ske.Public = pub
		ecdhePriv = priv
	case wire.KexDHE:
		g := cfg.DHEGroup
		if g == nil {
			g = ffdh.TestGroup512()
		}
		priv, pub, err := keyex.DHEKey(g, cfg.DHEPolicy, now, rnd)
		if err != nil {
			return nil, err
		}
		ske.P, ske.G = g.ParamBytes()
		ske.Public = pub
		dheGroup, dhePriv = g, priv
	default:
		hc.rc.WriteAlert(record.AlertHandshakeFailure)
		return nil, fmt.Errorf("tls: unsupported key exchange for suite %04x", suite)
	}
	hc.sp = ske.AppendSignedParams(hc.sp[:0], ch.Random[:], sh.Random[:])
	digest := sha256.Sum256(hc.sp)
	// ECDSA's hedged signing consumes a scheduling-dependent number of
	// bytes from its entropy source (crypto/internal randutil.MaybeReadByte),
	// so in deterministic mode the signature gets its own stream: every
	// later draw on the connection stream — the session-ticket IV — stays
	// at a reproducible offset. Nothing recorded depends on signature
	// bytes, only on their verifiability.
	sigRand := rnd
	if cfg.Rand == nil && cfg.RandSeed != nil {
		hc.sigRng.ReseedParts(cfg.RandSeed, string(ch.Random[:]), "ske-sig")
		sigRand = &hc.sigRng
	}
	sig, err := crt.Key.Sign(sigRand, digest[:], crypto.SHA256)
	if err != nil {
		return nil, err
	}
	ske.Sig = sig
	hc.mbuf = ske.AppendTo(hc.mbuf[:0])
	if err := hc.writeRaw(hc.mbuf); err != nil {
		return nil, err
	}
	done := wire.Msg{Type: wire.TypeServerHelloDone}
	if err := hc.writeMsg(&done); err != nil {
		return nil, err
	}

	// ClientKeyExchange.
	msg, _, err := hc.readMsg()
	if err != nil {
		return nil, err
	}
	if msg.Type != wire.TypeClientKeyExchange {
		return nil, fmt.Errorf("tls: expected ClientKeyExchange, got %d", msg.Type)
	}
	clientPub, err := wire.ParseCKE(ske.Kex, msg.Body)
	if err != nil {
		return nil, err
	}
	var premaster []byte
	// The in-process client computed and published this exact agreement
	// before its CKE was written, keyed by the two public values — one
	// lookup replaces the scalar multiplication / modexp for both Fresh
	// and Reuse policies. A miss (cache cleared, or a client run with
	// amortization off) falls through to the caches and computation below.
	if perf.CryptoAmortization() {
		premaster = keyex.PremasterLookup(ske.Public, clientPub)
	}
	if ecdhePriv != nil {
		// Under a Reuse policy the epoch private key's pointer is stable,
		// and the scanning client's public value repeats, so the agreement
		// is a pure function of (priv, clientPub) — cacheable.
		reuse := perf.CryptoAmortization() && cfg.ECDHEPolicy != nil && cfg.ECDHEPolicy.Mode == keyex.Reuse
		if reuse && premaster == nil {
			premaster = srvPremasterECDHE(ecdhePriv, clientPub)
		}
		if premaster == nil {
			pk, err := ecdh.P256().NewPublicKey(clientPub)
			if err != nil {
				return nil, err
			}
			premaster, err = ecdhePriv.ECDH(pk)
			if err != nil {
				return nil, err
			}
			if reuse {
				srvPremasterPutECDHE(ecdhePriv, clientPub, premaster)
			}
		}
	} else {
		reuse := perf.CryptoAmortization() && cfg.DHEPolicy != nil && cfg.DHEPolicy.Mode == keyex.Reuse
		if reuse && premaster == nil {
			premaster = srvPremasterDHE(dhePriv, clientPub)
		}
		if premaster == nil {
			premaster, err = dheGroup.Shared(dhePriv, new(big.Int).SetBytes(clientPub))
			if err != nil {
				return nil, err
			}
			if reuse {
				srvPremasterPutDHE(dhePriv, clientPub, premaster)
			}
		}
	}
	hc.ex.SetSecret(premaster)
	msSeed := append(append(hc.seed[:0], ch.Random[:]...), sh.Random[:]...)
	master := hc.ex.AppendPRF(hc.master[:0], "master secret", msSeed, 48)
	hc.ex.SetSecret(master)

	// Client CCS + Finished. Only the read direction is armed here: the
	// NewSessionTicket must still go out in plaintext before our CCS.
	kbs := append(append(hc.seed[:0], sh.Random[:]...), ch.Random[:]...)
	kb := hc.ex.AppendPRF(hc.kb[:0], "key expansion", kbs, 40)
	preFinished := hc.transcript()
	if _, ccs, err := hc.readMsg(); err != nil {
		return nil, err
	} else if !ccs {
		return nil, errors.New("tls: expected ChangeCipherSpec")
	}
	if err := hc.rc.ArmRead(kb[0:16], kb[32:36]); err != nil {
		return nil, err
	}
	fin, _, err := hc.readMsg()
	if err != nil {
		return nil, err
	}
	want := hc.ex.AppendPRF(hc.fin[:0], "client finished", preFinished, 12)
	if fin.Type != wire.TypeFinished || !bytesEqual(fin.Body, want) {
		hc.rc.WriteAlert(record.AlertHandshakeFailure)
		return nil, errors.New("tls: bad client Finished")
	}

	st := &session.State{Version: wire.VersionTLS12, Suite: suite, CreatedAt: now}
	copy(st.MasterSecret[:], master)

	if issueTicket {
		if err := sendTicket(hc, cfg, st, now, rnd); err != nil {
			return nil, err
		}
	}
	if cfg.Cache != nil {
		// Surface any transport failure of the pending flight before
		// mutating the cache, preserving the per-record-write ordering: a
		// connection cut during the ticket flight must not leave a
		// resumable cache entry behind.
		if err := hc.rc.Flush(); err != nil {
			return nil, err
		}
		cfg.Cache.Put(sh.SessionID, st, now)
	}
	if err := finishServer(hc, kb); err != nil {
		return nil, err
	}
	return st, nil
}

// resume completes an abbreviated handshake from cached/ticket state.
func resume(hc *hsConn, cfg *Config, ch *wire.ClientHello, st *session.State, now time.Time) error {
	rnd := hc.connRand(cfg, ch.Random[:])
	sh := &hc.sh
	*sh = wire.ServerHello{Suite: st.Suite, SessionID: ch.SessionID}
	if _, err := io.ReadFull(rnd, sh.Random[:]); err != nil {
		return err
	}
	reissue := cfg.Tickets != nil && ch.OfferTicket
	sh.TicketAck = reissue
	hc.mbuf = sh.AppendTo(hc.mbuf[:0])
	if err := hc.writeRaw(hc.mbuf); err != nil {
		return err
	}
	if reissue {
		if err := sendTicket(hc, cfg, st, now, rnd); err != nil {
			return err
		}
	}
	hc.ex.SetSecret(st.MasterSecret[:])
	// Server Finished first on resumption.
	preFinished := hc.transcript()
	if err := hc.rc.WriteRecord(record.TypeChangeCipherSpec, []byte{1}); err != nil {
		return err
	}
	kbs := append(append(hc.seed[:0], sh.Random[:]...), ch.Random[:]...)
	kb := hc.ex.AppendPRF(hc.kb[:0], "key expansion", kbs, 40)
	if err := hc.rc.ArmWrite(kb[16:32], kb[36:40]); err != nil {
		return err
	}
	finMsg := wire.Msg{Type: wire.TypeFinished, Body: hc.ex.AppendPRF(hc.fin[:0], "server finished", preFinished, 12)}
	if err := hc.writeMsg(&finMsg); err != nil {
		return err
	}
	// Client CCS + Finished.
	if _, ccs, err := hc.readMsg(); err != nil {
		return err
	} else if !ccs {
		return errors.New("tls: expected ChangeCipherSpec")
	}
	if err := hc.rc.ArmRead(kb[0:16], kb[32:36]); err != nil {
		return err
	}
	preClient := hc.transcript()
	fin, _, err := hc.readMsg()
	if err != nil {
		return err
	}
	want := hc.ex.AppendPRF(hc.fin[:0], "client finished", preClient, 12)
	if fin.Type != wire.TypeFinished || !bytesEqual(fin.Body, want) {
		return errors.New("tls: bad client Finished on resumption")
	}
	return nil
}

func sendTicket(hc *hsConn, cfg *Config, st *session.State, now time.Time, rnd io.Reader) error {
	k := cfg.Tickets.IssuingKey(now)
	hint := cfg.TicketHint
	if hint == 0 {
		hint = 2 * time.Hour
	}
	if !perf.CryptoAmortization() {
		tkt, err := k.Seal(st, rnd)
		if err != nil {
			return err
		}
		nst := wire.NewSessionTicket{LifetimeHint: hint, Ticket: tkt}
		hc.mbuf = nst.AppendTo(hc.mbuf[:0])
		return hc.writeRaw(hc.mbuf)
	}
	// Amortized path: the message prefix is constant per (key, hint) —
	// sealed tickets have one fixed length — and the ticket is sealed
	// directly into the outgoing buffer, so the abbreviated flight's
	// serialization costs no allocations at all.
	hc.mbuf = append(hc.mbuf[:0], nstPrefix(k, hint)...)
	var err error
	hc.mbuf, err = k.AppendSeal(hc.mbuf, st, rnd)
	if err != nil {
		return err
	}
	return hc.writeRaw(hc.mbuf)
}

// nstPrefixes caches the NewSessionTicket message prefix per issuing key
// and hint (see wire.AppendNSTPrefix). A plain mutex-guarded map rather
// than sync.Map: struct keys would be boxed on every Load.
var nstPrefixes struct {
	mu sync.RWMutex
	m  map[nstPrefixKey][]byte
}

type nstPrefixKey struct {
	k    *ticket.STEK
	hint time.Duration
}

func nstPrefix(k *ticket.STEK, hint time.Duration) []byte {
	key := nstPrefixKey{k: k, hint: hint}
	nstPrefixes.mu.RLock()
	b, ok := nstPrefixes.m[key]
	nstPrefixes.mu.RUnlock()
	if ok {
		return b
	}
	b = wire.AppendNSTPrefix(nil, hint, k.SealedLen())
	nstPrefixes.mu.Lock()
	if nstPrefixes.m == nil || len(nstPrefixes.m) >= maxPremasterEntries {
		nstPrefixes.m = make(map[nstPrefixKey][]byte, 16)
	}
	nstPrefixes.m[key] = b
	nstPrefixes.mu.Unlock()
	return b
}

// srvPM caches premasters per (epoch private value, client public). The
// outer maps are keyed by the policy-reused private values' pointers —
// stable for a whole epoch — and the inner map by the raw public bytes
// (string-keyed, so lookups convert without allocating). Bounded by
// wholesale clearing, like the keyex epoch cache.
var srvPM struct {
	mu sync.RWMutex
	ec map[*ecdh.PrivateKey]map[string][]byte
	dh map[*big.Int]map[string][]byte
	n  int
}

const maxPremasterEntries = 4096

func srvPremasterECDHE(priv *ecdh.PrivateKey, pub []byte) []byte {
	srvPM.mu.RLock()
	pm := srvPM.ec[priv][string(pub)]
	srvPM.mu.RUnlock()
	if pm != nil {
		telemetry.Global().Counter("wall/tlsserver/premaster_hit").Inc()
	}
	return pm
}

func srvPremasterPutECDHE(priv *ecdh.PrivateKey, pub, pm []byte) {
	srvPM.mu.Lock()
	if srvPM.n >= maxPremasterEntries {
		srvPM.ec, srvPM.dh, srvPM.n = nil, nil, 0
	}
	if srvPM.ec == nil {
		srvPM.ec = make(map[*ecdh.PrivateKey]map[string][]byte)
	}
	inner := srvPM.ec[priv]
	if inner == nil {
		inner = make(map[string][]byte, 1)
		srvPM.ec[priv] = inner
	}
	if _, ok := inner[string(pub)]; !ok {
		inner[string(pub)] = append([]byte(nil), pm...)
		srvPM.n++
	}
	srvPM.mu.Unlock()
}

func srvPremasterDHE(priv *big.Int, pub []byte) []byte {
	srvPM.mu.RLock()
	pm := srvPM.dh[priv][string(pub)]
	srvPM.mu.RUnlock()
	if pm != nil {
		telemetry.Global().Counter("wall/tlsserver/premaster_hit").Inc()
	}
	return pm
}

func srvPremasterPutDHE(priv *big.Int, pub, pm []byte) {
	srvPM.mu.Lock()
	if srvPM.n >= maxPremasterEntries {
		srvPM.ec, srvPM.dh, srvPM.n = nil, nil, 0
	}
	if srvPM.dh == nil {
		srvPM.dh = make(map[*big.Int]map[string][]byte)
	}
	inner := srvPM.dh[priv]
	if inner == nil {
		inner = make(map[string][]byte, 1)
		srvPM.dh[priv] = inner
	}
	if _, ok := inner[string(pub)]; !ok {
		inner[string(pub)] = append([]byte(nil), pm...)
		srvPM.n++
	}
	srvPM.mu.Unlock()
}

func finishServer(hc *hsConn, kb []byte) error {
	preFinished := hc.transcript()
	if err := hc.rc.WriteRecord(record.TypeChangeCipherSpec, []byte{1}); err != nil {
		return err
	}
	if err := hc.rc.ArmWrite(kb[16:32], kb[36:40]); err != nil {
		return err
	}
	fin := wire.Msg{Type: wire.TypeFinished, Body: hc.ex.AppendPRF(hc.fin[:0], "server finished", preFinished, 12)}
	return hc.writeMsg(&fin)
}

// certMsgCache memoizes the marshaled Certificate handshake message per
// certificate pointer. The chain never changes after pki builds it, so
// the bytes are identical on every full handshake that serves it.
var certMsgCache sync.Map // *pki.Certificate -> []byte

func certMsgBytes(crt *pki.Certificate) []byte {
	if !perf.CryptoCaches() {
		return wire.MarshalCertificate(crt.Chain).Marshal()
	}
	if v, ok := certMsgCache.Load(crt); ok {
		return v.([]byte)
	}
	b := wire.MarshalCertificate(crt.Chain).Marshal()
	certMsgCache.Store(crt, b)
	return b
}

func bytesEqual(a, b []byte) bool {
	if len(a) != len(b) {
		return false
	}
	var v byte
	for i := range a {
		v |= a[i] ^ b[i]
	}
	return v == 0
}
