package vulnwindow

import (
	"testing"
	"time"
)

const day = 24 * time.Hour

func TestTicketWindow(t *testing.T) {
	// A STEK observed across 10 days, with tickets accepted 28h after
	// issuance: any connection in the span is exposed for span + tail.
	if got, want := TicketWindow(10, 28*time.Hour), 10*day+28*time.Hour; got != want {
		t.Errorf("TicketWindow(10, 28h) = %v, want %v", got, want)
	}
	// Daily rotation with a sub-day acceptance tail never exceeds 48h.
	if got := TicketWindow(0, 18*time.Hour); got != 18*time.Hour {
		t.Errorf("TicketWindow(0, 18h) = %v, want 18h", got)
	}
}

func TestCacheWindow(t *testing.T) {
	if got := CacheWindow(28 * time.Hour); got != 28*time.Hour {
		t.Errorf("CacheWindow = %v, want the measured lifetime", got)
	}
}

func TestKexWindow(t *testing.T) {
	if got := KexWindow(0); got != 0 {
		t.Errorf("KexWindow(0) = %v, want 0 (sub-day reuse is not counted)", got)
	}
	if got := KexWindow(60); got != 60*day {
		t.Errorf("KexWindow(60) = %v, want %v", got, 60*day)
	}
}

func TestCombineTakesPerDomainMax(t *testing.T) {
	exps := []Exposure{
		{Domain: "a.example", Mechanism: MechTicket, Window: 10 * day},
		{Domain: "a.example", Mechanism: MechCache, Window: 28 * time.Hour},
		{Domain: "a.example", Mechanism: MechECDHE, Window: 60 * day},
		{Domain: "b.example", Mechanism: MechCache, Window: 5 * time.Minute},
	}
	combined := Combine(exps)
	if len(combined) != 2 {
		t.Fatalf("combined %d domains, want 2", len(combined))
	}
	if combined["a.example"] != 60*day {
		t.Errorf("a.example window = %v, want the ECDHE max %v", combined["a.example"], 60*day)
	}
	if combined["b.example"] != 5*time.Minute {
		t.Errorf("b.example window = %v, want 5m", combined["b.example"])
	}
}

// TestClassifyGradient exercises the Figure-8 exceedance gradient: strict
// thresholds, monotone counts, and the per-domain max combination.
func TestClassifyGradient(t *testing.T) {
	exps := []Exposure{
		// Exactly at thresholds: strictly-greater comparisons exclude these.
		{Domain: "at24h.example", Mechanism: MechCache, Window: 24 * time.Hour},
		{Domain: "at7d.example", Mechanism: MechTicket, Window: 7 * day},
		// Just over.
		{Domain: "over24h.example", Mechanism: MechCache, Window: 24*time.Hour + time.Second},
		{Domain: "over7d.example", Mechanism: MechTicket, Window: 8 * day},
		{Domain: "over30d.example", Mechanism: MechTicket, Window: 44 * day},
		// Multiple mechanisms on one domain: only the max counts, once.
		{Domain: "multi.example", Mechanism: MechCache, Window: time.Hour},
		{Domain: "multi.example", Mechanism: MechDHE, Window: 31 * day},
		// No meaningful exposure.
		{Domain: "zero.example", Mechanism: MechCache, Window: 0},
	}
	c := Classify(exps)
	if c.Total != 7 {
		t.Errorf("Total = %d, want 7 distinct domains", c.Total)
	}
	if c.Over24h != 5 {
		t.Errorf("Over24h = %d, want 5 (a 7-day window is also over 24h)", c.Over24h)
	}
	if c.Over7d != 3 {
		t.Errorf("Over7d = %d, want 3", c.Over7d)
	}
	if c.Over30d != 2 {
		t.Errorf("Over30d = %d, want 2", c.Over30d)
	}
	if !(c.Over24h >= c.Over7d && c.Over7d >= c.Over30d) {
		t.Error("gradient must be monotone")
	}
}

func TestFrac(t *testing.T) {
	c := Classification{Total: 200, Over24h: 76}
	if got := c.Frac(c.Over24h); got != 0.38 {
		t.Errorf("Frac = %v, want 0.38", got)
	}
	var empty Classification
	if got := empty.Frac(5); got != 0 {
		t.Errorf("Frac on empty classification = %v, want 0", got)
	}
}
