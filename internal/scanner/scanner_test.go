package scanner

import (
	"sync/atomic"
	"testing"
)

func TestForEachVisitsEachIndexOnce(t *testing.T) {
	for _, tc := range []struct{ n, workers int }{
		{0, 8}, {1, 8}, {7, 8}, {100, 8}, {100, 1}, {3, 16}, {1000, 4},
	} {
		s := &Scanner{Workers: tc.workers}
		counts := make([]atomic.Int32, tc.n+1)
		s.forEach(tc.n, func(w, i int) {
			if i < 0 || i >= tc.n {
				t.Errorf("n=%d workers=%d: index %d out of range", tc.n, tc.workers, i)
				return
			}
			if w < 0 || w >= tc.workers {
				t.Errorf("n=%d workers=%d: worker slot %d out of range", tc.n, tc.workers, w)
			}
			counts[i].Add(1)
		})
		for i := 0; i < tc.n; i++ {
			if got := counts[i].Load(); got != 1 {
				t.Errorf("n=%d workers=%d: index %d visited %d times", tc.n, tc.workers, i, got)
			}
		}
	}
}

func TestForEachDefaultWorkers(t *testing.T) {
	s := &Scanner{} // Workers unset -> default pool
	var total atomic.Int32
	s.forEach(50, func(int, int) { total.Add(1) })
	if total.Load() != 50 {
		t.Fatalf("visited %d of 50", total.Load())
	}
}

func TestSeededPrefixExtension(t *testing.T) {
	list := make([]string, 40)
	for i := range list {
		list[i] = string(rune('a'+i%26)) + string(rune('0'+i/26))
	}
	for _, domain := range []string{"example.com", "other.net"} {
		full := seededPrefix(domain, list, len(list))
		seen := make(map[string]bool)
		for _, d := range full {
			if seen[d] {
				t.Fatalf("%s: duplicate %q in shuffle", domain, d)
			}
			seen[d] = true
		}
		if len(full) != len(list) {
			t.Fatalf("%s: full shuffle has %d of %d elements", domain, len(full), len(list))
		}
		// A smaller budget must be a strict prefix of a larger one: the
		// cross-domain scan's budget can grow without invalidating old runs.
		for n := 0; n <= len(list); n++ {
			got := seededPrefix(domain, list, n)
			if len(got) != n {
				t.Fatalf("%s: seededPrefix(%d) returned %d elements", domain, n, len(got))
			}
			for i, d := range got {
				if d != full[i] {
					t.Fatalf("%s: prefix(%d)[%d] = %q, want %q", domain, n, i, d, full[i])
				}
			}
		}
	}
	if got := seededPrefix("x", nil, 3); got != nil {
		t.Fatalf("empty list: got %v", got)
	}
	if got := seededPrefix("x", list, 100); len(got) != len(list) {
		t.Fatalf("oversized budget: got %d elements", len(got))
	}
}

func TestUnionFind(t *testing.T) {
	u := NewUnionFind()
	if r := u.Find("a"); r != "a" {
		t.Fatalf("fresh element root = %q", r)
	}
	u.Union("a", "b")
	u.Union("c", "d")
	if u.Find("a") != u.Find("b") {
		t.Fatal("a and b not merged")
	}
	if u.Find("a") == u.Find("c") {
		t.Fatal("separate components merged")
	}
	u.Union("b", "c")
	for _, x := range []string{"a", "b", "c", "d"} {
		if u.Find(x) != u.Find("a") {
			t.Fatalf("%s not in merged component", x)
		}
	}
	u.Union("a", "d") // already joined: must be a no-op
	u.Find("solo")
	sets := u.Sets()
	if len(sets) != 2 || len(sets[0]) != 4 || len(sets[1]) != 1 {
		t.Fatalf("Sets() = %v", sets)
	}
	for i, want := range []string{"a", "b", "c", "d"} {
		if sets[0][i] != want {
			t.Fatalf("set not sorted: %v", sets[0])
		}
	}
}

func TestUnionFindPathCompression(t *testing.T) {
	u := NewUnionFind()
	// Build a long chain by always unioning a new singleton into the tail.
	const n = 10000
	names := make([]string, n)
	for i := range names {
		names[i] = "d" + string(rune('0'+i%10)) + string(rune('a'+(i/10)%26)) + string(rune('a'+i/260))
	}
	for i := 1; i < n; i++ {
		u.Union(names[i-1], names[i])
	}
	root := u.Find(names[0])
	for _, x := range names {
		if u.Find(x) != root {
			t.Fatalf("%s not in chain component", x)
		}
		// After Find, the element must point directly at the root.
		if u.parent[x] != root {
			t.Fatalf("path not compressed for %s", x)
		}
	}
}
