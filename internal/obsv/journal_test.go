package obsv

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"tlsshortcuts/internal/telemetry"
)

func testJournal() (*Journal, *bytes.Buffer) {
	var buf bytes.Buffer
	j := NewJournal(&buf)
	j.now = func() time.Time { return time.Unix(1456900000, 0).UTC() }
	return j, &buf
}

func phaseEvent(phase string, day int, start bool) telemetry.PhaseEvent {
	return telemetry.PhaseEvent{
		Span:  telemetry.Span{Phase: phase, Day: day, Days: 2, VirtualDate: fmt.Sprintf("2016-03-%02dT00:00:00Z", 2+day)},
		Start: start,
	}
}

// TestJournalRoundTrip writes a healthy campaign's event sequence and
// checks it decodes, validates, and carries contiguous sequence numbers.
func TestJournalRoundTrip(t *testing.T) {
	j, buf := testJournal()
	j.CampaignStart(200, 2, 7, 8, "")
	for day := 0; day < 2; day++ {
		if err := j.OnPhase(phaseEvent("day", day, true)); err != nil {
			t.Fatalf("OnPhase start: %v", err)
		}
		end := phaseEvent("day", day, false)
		end.FailureClasses = map[string]uint64{"timeout": uint64(day + 1)}
		end.STEKRotations = 3
		if err := j.OnPhase(end); err != nil {
			t.Fatalf("OnPhase end: %v", err)
		}
	}
	j.CampaignEnd("abc123")
	if err := j.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	events, err := DecodeEvents(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("DecodeEvents: %v", err)
	}
	if err := ValidateJournal(events); err != nil {
		t.Fatalf("ValidateJournal: %v", err)
	}
	if len(events) != 6 {
		t.Fatalf("got %d events, want 6", len(events))
	}
	if events[0].Type != EventCampaignStart || events[0].ListSize != 200 || events[0].Seed != 7 {
		t.Errorf("bad campaign_start: %+v", events[0])
	}
	last := events[len(events)-1]
	if last.Type != EventCampaignEnd || last.DatasetSHA256 != "abc123" {
		t.Errorf("bad campaign_end: %+v", last)
	}
	if events[4].FailureClasses["timeout"] != 2 {
		t.Errorf("phase_end lost failure classes: %+v", events[4])
	}

	// The in-memory tail mirrors the file.
	tail := j.Tail(3)
	if len(tail) != 3 || tail[2].Type != EventCampaignEnd {
		t.Errorf("Tail(3) = %+v", tail)
	}
}

// TestJournalValidation exercises the invariant checks replay depends on.
func TestJournalValidation(t *testing.T) {
	j, buf := testJournal()
	j.CampaignStart(10, 1, 1, 1, "")
	j.OnPhase(phaseEvent("day", 0, true))
	j.OnPhase(phaseEvent("day", 0, false))
	j.CampaignEnd("h")
	j.Close()
	good, err := DecodeEvents(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name   string
		mutate func([]Event) []Event
		want   string
	}{
		{"empty", func(e []Event) []Event { return nil }, "empty"},
		{"truncated head", func(e []Event) []Event { return e[1:] }, "seq"},
		{"gap", func(e []Event) []Event { return append(append([]Event{}, e[0]), e[2:]...) }, "seq"},
		{"terminal mid-journal", func(e []Event) []Event {
			out := append([]Event{}, e...)
			out[1], out[3] = out[3], out[1]
			out[1].Seq, out[3].Seq = 1, 3
			return out
		}, "terminal"},
	}
	for _, tc := range cases {
		evs := tc.mutate(append([]Event{}, good...))
		err := ValidateJournal(evs)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want mention of %q", tc.name, err, tc.want)
		}
	}
	if err := ValidateJournal(good); err != nil {
		t.Errorf("good journal rejected: %v", err)
	}
}

// TestJournalVersionGate: events from a newer schema are rejected, not
// misread.
func TestJournalVersionGate(t *testing.T) {
	line := fmt.Sprintf(`{"v":%d,"seq":0,"type":"campaign_start","day":-1}`, JournalVersion+1)
	_, err := DecodeEvents(strings.NewReader(line + "\n"))
	if err == nil || !strings.Contains(err.Error(), "newer") {
		t.Fatalf("newer-version event not rejected: %v", err)
	}
}

// TestJournalAbortFlushes: Abort records campaign_aborted and the flush
// point makes the file complete without Close.
func TestJournalAbortFlushes(t *testing.T) {
	j, buf := testJournal()
	j.CampaignStart(10, 1, 1, 1, "")
	j.Abort(errors.New("boom"))
	// No Close: the terminal flush point alone must leave the file whole.
	events, err := DecodeEvents(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("DecodeEvents: %v", err)
	}
	if err := ValidateJournal(events); err != nil {
		t.Fatalf("ValidateJournal: %v", err)
	}
	last := events[len(events)-1]
	if last.Type != EventCampaignAborted || last.Err != "boom" {
		t.Errorf("bad campaign_aborted: %+v", last)
	}
}

// TestMergeJournalsDeterministic checks additive merging, the
// normalization of shard-variant fields, and campaign-mismatch errors.
func TestMergeJournalsDeterministic(t *testing.T) {
	mkShard := func(shard string, fails uint64, hash string) []Event {
		j, buf := testJournal()
		j.SetShard(shard)
		j.CampaignStart(100, 1, 7, 4, shard)
		j.OnPhase(phaseEvent("day", 0, true))
		end := phaseEvent("day", 0, false)
		end.Span.Domains = 50
		end.Span.Handshakes = 10 * fails
		end.FailureClasses = map[string]uint64{"reset": fails}
		end.STEKRotations = 7 // per-process observation, must not sum
		j.OnPhase(end)
		j.CampaignEnd(hash)
		j.Close()
		evs, err := DecodeEvents(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("decode shard %s: %v", shard, err)
		}
		return evs
	}
	a := mkShard("0/2", 2, "hash-a")
	b := mkShard("1/2", 3, "hash-b")
	merged, err := MergeJournalsDeterministic(a, b)
	if err != nil {
		t.Fatalf("merge: %v", err)
	}
	if err := ValidateJournal(merged); err != nil {
		t.Fatalf("merged journal invalid: %v", err)
	}
	var end *Event
	for i := range merged {
		if merged[i].Type == EventPhaseEnd {
			end = &merged[i]
		}
	}
	if end == nil {
		t.Fatal("no phase_end in merged journal")
	}
	if end.Domains != 100 || end.Handshakes != 50 || end.FailureClasses["reset"] != 5 {
		t.Errorf("additive fields wrong: %+v", end)
	}
	if end.STEKRotations != 0 || end.Shard != "" {
		t.Errorf("shard-variant fields not normalized: %+v", end)
	}
	if last := merged[len(merged)-1]; last.DatasetSHA256 != "" {
		t.Errorf("per-shard dataset hash survived the merge: %+v", last)
	}
	for i, ev := range merged {
		if ev.Wall != "" || ev.WallNanos != 0 || ev.Workers != 0 {
			t.Errorf("event %d kept wall-dependent fields: %+v", i, ev)
		}
	}

	// A shard from a different campaign is refused.
	alien := mkShard("0/2", 2, "hash-c")
	alien[0].Seed = 99
	if _, err := MergeJournalsDeterministic(a, alien); err == nil {
		t.Error("merge accepted journals from different campaigns")
	}
}
