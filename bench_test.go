// Benchmark harness: one benchmark per table and figure in the paper's
// evaluation (§3-§6), plus ablation benches for the design choices called
// out in DESIGN.md. Each benchmark regenerates its table/figure from a
// shared measurement campaign and prints the rows once, so
//
//	go test -bench=. -benchmem
//
// reproduces the paper's evaluation while timing the analysis pipeline.
// Shape assertions (who wins, rough factors) are enforced here as well, at
// a larger scale than the unit tests use.
package tlsshortcuts_test

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"tlsshortcuts/internal/attacker"
	"tlsshortcuts/internal/population"
	"tlsshortcuts/internal/scanner"
	"tlsshortcuts/internal/session"
	"tlsshortcuts/internal/simclock"
	"tlsshortcuts/internal/study"
	"tlsshortcuts/internal/ticket"
	"tlsshortcuts/internal/tlsclient"
)

// ---- shared campaign ----

var (
	benchOnce sync.Once
	benchDS   *study.Dataset
	benchErr  error
)

const (
	benchListSize = 1000
	benchDays     = 44
	benchSeed     = 3
)

func benchDataset(b *testing.B) *study.Dataset {
	b.Helper()
	benchOnce.Do(func() {
		fmt.Printf("[bench setup] running %d-domain, %d-day campaign (one-time)...\n",
			benchListSize, benchDays)
		start := time.Now()
		benchDS, benchErr = study.Run(study.Options{
			ListSize: benchListSize, Days: benchDays, Seed: benchSeed, Workers: 16,
		})
		fmt.Printf("[bench setup] campaign done in %v\n", time.Since(start).Round(time.Second))
	})
	if benchErr != nil {
		b.Fatal(benchErr)
	}
	return benchDS
}

var printedSections sync.Map

func printOnce(section, text string) {
	if _, loaded := printedSections.LoadOrStore(section, true); !loaded {
		fmt.Printf("\n%s\n", text)
	}
}

// benchSection times one report section and prints its rows once.
func benchSection(b *testing.B, name string, f func(r *study.Report) string) string {
	ds := benchDataset(b)
	b.ResetTimer()
	b.ReportAllocs()
	var out string
	for i := 0; i < b.N; i++ {
		rep := study.BuildReport(ds)
		out = f(rep)
	}
	b.StopTimer()
	printOnce(name, out)
	return out
}

// ---- Table 1 ----

func BenchmarkTable1Support(b *testing.B) {
	out := benchSection(b, "table1", (*study.Report).Table1)
	ds := benchDataset(b)
	// Shape: ECDHE support > DHE support; STEK repeats are near-universal
	// among issuers.
	dsup := float64(ds.DHESnapshot.Support) / float64(ds.DHESnapshot.Trusted)
	esup := float64(ds.ECDHESnapshot.Support) / float64(ds.ECDHESnapshot.Trusted)
	if esup <= dsup {
		b.Errorf("shape: ECDHE support %.2f should exceed DHE support %.2f", esup, dsup)
	}
	if !strings.Contains(out, "Session Tickets") {
		b.Error("Table 1 missing ticket section")
	}
}

// ---- Figures 1-2 ----

func BenchmarkFigure1SessionIDLifetime(b *testing.B) {
	out := benchSection(b, "fig1", (*study.Report).Figure1)
	if !strings.Contains(out, "resumed @1s") {
		b.Error("figure 1 malformed")
	}
}

func BenchmarkFigure2TicketLifetime(b *testing.B) {
	out := benchSection(b, "fig2", (*study.Report).Figure2)
	if !strings.Contains(out, "lifetime hint") {
		b.Error("figure 2 missing hint series")
	}
}

// ---- Figures 3-5, Tables 2-4 ----

func BenchmarkFigure3STEKLifetime(b *testing.B) {
	benchSection(b, "fig3", (*study.Report).Figure3)
	ds := benchDataset(b)
	rep := study.BuildReport(ds)
	pop := ds.TrustedCore
	tr := rep.Tracker("stek")
	at7 := float64(tr.CountAtLeast(pop, 7)) / float64(len(pop))
	at30 := float64(tr.CountAtLeast(pop, 30)) / float64(len(pop))
	if at7 < 0.10 || at7 > 0.40 {
		b.Errorf("shape: STEK >=7d fraction %.2f (paper 0.22)", at7)
	}
	if at30 < 0.03 || at30 > 0.25 {
		b.Errorf("shape: STEK >=30d fraction %.2f (paper 0.10)", at30)
	}
}

func BenchmarkFigure4STEKByRank(b *testing.B) {
	out := benchSection(b, "fig4", (*study.Report).Figure4)
	if !strings.Contains(out, "Top 100 (scaled)") {
		b.Error("figure 4 missing tiers")
	}
}

func BenchmarkTable2TopSTEKReuse(b *testing.B) {
	out := benchSection(b, "table2", (*study.Report).Table2)
	// The famous never-rotators must appear.
	for _, d := range []string{"yahoo.com", "pinterest.com"} {
		if !strings.Contains(out, d) {
			b.Errorf("table 2 missing %s", d)
		}
	}
}

func BenchmarkFigure5KEXReuse(b *testing.B) {
	benchSection(b, "fig5", (*study.Report).Figure5)
	ds := benchDataset(b)
	rep := study.BuildReport(ds)
	pop := ds.TrustedCore
	d1 := rep.Tracker("dhe").CountAtLeast(pop, 1)
	e1 := rep.Tracker("ecdhe").CountAtLeast(pop, 1)
	if e1 <= d1 {
		b.Errorf("shape: ECDHE >=1d reuse (%d) should exceed DHE (%d)", e1, d1)
	}
	stek7 := rep.Tracker("stek").CountAtLeast(pop, 7)
	kex7 := rep.Tracker("dhe").CountAtLeast(pop, 7) + rep.Tracker("ecdhe").CountAtLeast(pop, 7)
	if stek7 <= kex7 {
		b.Errorf("shape: STEK >=7d (%d) should dominate KEX >=7d (%d)", stek7, kex7)
	}
}

func BenchmarkTable3TopDHEReuse(b *testing.B) {
	out := benchSection(b, "table3", (*study.Report).Table3)
	if !strings.Contains(out, "netflix.com") {
		b.Error("table 3 missing netflix.com")
	}
}

func BenchmarkTable4TopECDHEReuse(b *testing.B) {
	out := benchSection(b, "table4", (*study.Report).Table4)
	if !strings.Contains(out, "whatsapp.com") {
		b.Error("table 4 missing whatsapp.com")
	}
}

// ---- Tables 5-7 ----

func BenchmarkTable5SessionCacheGroups(b *testing.B) {
	out := benchSection(b, "table5", (*study.Report).Table5)
	if !strings.Contains(out, "cloudflare") {
		b.Error("table 5 missing cloudflare cache groups")
	}
}

func BenchmarkTable6STEKGroups(b *testing.B) {
	out := benchSection(b, "table6", (*study.Report).Table6)
	ds := benchDataset(b)
	var largest []string
	for _, g := range ds.STEKGroups {
		if len(g) > len(largest) {
			largest = g
		}
	}
	cf := 0
	for _, d := range largest {
		if ds.Operators[d] == "cloudflare" {
			cf++
		}
	}
	if float64(cf) < 0.9*float64(len(largest)) {
		b.Error("shape: largest STEK group should be CloudFlare's")
	}
	_ = out
}

func BenchmarkTable7DHGroups(b *testing.B) {
	out := benchSection(b, "table7", (*study.Report).Table7)
	if !strings.Contains(out, "singletons") {
		b.Error("table 7 missing stats")
	}
}

// ---- Figures 6-8 ----

func BenchmarkFigure6STEKTreemap(b *testing.B) {
	benchSection(b, "fig6", (*study.Report).Figure6)
}

func BenchmarkFigure7CacheAndDHTreemaps(b *testing.B) {
	benchSection(b, "fig7", (*study.Report).Figure7)
}

func BenchmarkFigure8CombinedWindows(b *testing.B) {
	benchSection(b, "fig8", (*study.Report).Figure8)
	ds := benchDataset(b)
	c := study.BuildReport(ds).Classification
	f24, f7, f30 := c.Frac(c.Over24h), c.Frac(c.Over7d), c.Frac(c.Over30d)
	if !(f24 >= f7 && f7 >= f30) {
		b.Error("shape: exceedance fractions must be monotone")
	}
	if f24 < 0.20 || f24 > 0.60 {
		b.Errorf("shape: >=24h fraction %.2f (paper 0.38)", f24)
	}
	if f30 < 0.03 || f30 > 0.25 {
		b.Errorf("shape: >=30d fraction %.2f (paper 0.10)", f30)
	}
}

// ---- §7.2 target analysis ----

func BenchmarkTargetAnalysisGoogle(b *testing.B) {
	world, err := population.Build(population.Options{ListSize: 1500, Seed: 9})
	if err != nil {
		b.Fatal(err)
	}
	clock := world.Clock.(*simclock.Manual)
	var victim string
	for name, d := range world.Domains {
		if d.Operator == "google" {
			victim = name
			break
		}
	}
	conn, err := world.Net.Dial(victim)
	if err != nil {
		b.Fatal(err)
	}
	tap := attacker.NewTap(conn)
	if _, err := tlsclient.Handshake(tap, &tlsclient.Config{
		ServerName: victim, Clock: clock, OfferTicket: true,
		AppData: []byte("GET / HTTP/1.1\r\nCookie: secret\r\n\r\n"),
	}); err != nil {
		b.Fatal(err)
	}
	conn.Close()
	rec, err := attacker.Parse(tap.Conversation())
	if err != nil {
		b.Fatal(err)
	}
	stolen := world.Domains[victim].Terms[0].Tickets.ActiveKeys(clock.Now())

	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		master, err := rec.MasterFromSTEK(stolen...)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := rec.Decrypt(master); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	google := 0
	for _, d := range world.Domains {
		if d.Operator == "google" {
			google++
		}
	}
	printOnce("google", fmt.Sprintf(
		"§7.2 target analysis: one stolen STEK set decrypts connections to all %d Google domains (≈%d at Top-1M scale)",
		google, int(float64(google)/world.ScaleFactor)))
}

// ---- Ablations ----

// BenchmarkAblationTicketFormats: STEK-ID extraction across the three wire
// formats the paper encountered (16-byte RFC 5077 names, mbedTLS 4-byte
// names, SChannel wrapped GUIDs).
func BenchmarkAblationTicketFormats(b *testing.B) {
	st := testSessionState()
	for _, f := range []ticket.Format{ticket.FormatRFC5077, ticket.FormatMbedTLS, ticket.FormatSChannel} {
		b.Run(f.String(), func(b *testing.B) {
			k := ticket.Derive([]byte("bench"), f)
			t1, err := k.Seal(st, zeroReader{})
			if err != nil {
				b.Fatal(err)
			}
			t2, err := k.Seal(st, zeroReader{})
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if id := ticket.DetectKeyID(t1, t2); len(id) == 0 {
					b.Fatal("no stable key ID")
				}
			}
		})
	}
}

// BenchmarkAblationSpanVsRun compares the paper's first/last-seen span
// metric against the naive consecutive-days run metric on the campaign
// data: the run metric systematically undercounts long-lived secrets
// because of A-record jitter and balancer non-affinity.
func BenchmarkAblationSpanVsRun(b *testing.B) {
	ds := benchDataset(b)
	tr := study.BuildReport(ds).Tracker("stek")
	pop := ds.TrustedCore
	b.ResetTimer()
	var spans7, runs7 int
	for i := 0; i < b.N; i++ {
		spans7, runs7 = 0, 0
		for _, d := range pop {
			if tr.MaxSpanDays(d) >= 7 {
				spans7++
			}
			if tr.MaxRunDays(d) >= 7 {
				runs7++
			}
		}
	}
	b.StopTimer()
	if runs7 > spans7 {
		b.Errorf("run metric (%d) cannot exceed span metric (%d)", runs7, spans7)
	}
	printOnce("ablation-span", fmt.Sprintf(
		"Ablation span-vs-run: >=7d STEKs — span metric %d domains, consecutive-run metric %d (undercount %.0f%%)",
		spans7, runs7, 100*(1-float64(runs7)/float64(spans7))))
}

// BenchmarkAblationGroupSampling compares cross-domain cache-group recall
// at the paper's 5+5 candidate budget versus a leaner 2+2 and a richer
// 10+10 budget.
func BenchmarkAblationGroupSampling(b *testing.B) {
	world, err := population.Build(population.Options{ListSize: 600, Seed: 21})
	if err != nil {
		b.Fatal(err)
	}
	clock := world.Clock.(*simclock.Manual)
	scan := &scanner.Scanner{Dialer: world.Net, Roots: world.Roots, Clock: clock, Workers: 16}
	targets := world.TrustedCoreDomains()

	grouped := func(uf *scanner.UnionFind) int {
		n := 0
		for _, g := range uf.Sets() {
			if len(g) > 1 {
				n += len(g)
			}
		}
		return n
	}
	var recall [3]int
	budgets := []int{2, 5, 10}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j, budget := range budgets {
			uf, _ := scan.CrossDomainGroups(targets, world.Net, budget, budget)
			recall[j] = grouped(uf)
		}
	}
	b.StopTimer()
	if recall[0] > recall[1] || recall[1] > recall[2] {
		b.Errorf("recall must grow with budget: %v", recall)
	}
	printOnce("ablation-sampling", fmt.Sprintf(
		"Ablation group sampling: domains discovered in shared caches — budget 2+2: %d, 5+5 (paper): %d, 10+10: %d",
		recall[0], recall[1], recall[2]))
}

// BenchmarkAblationProbeSchedule compares the paper's fixed 5-minute
// lifetime polls against coarser 30-minute polls: fewer connections, less
// resolution.
func BenchmarkAblationProbeSchedule(b *testing.B) {
	world, err := population.Build(population.Options{ListSize: 400, Seed: 31})
	if err != nil {
		b.Fatal(err)
	}
	clock := world.Clock.(*simclock.Manual)
	start := clock.Now()
	scan := &scanner.Scanner{Dialer: world.Net, Roots: world.Roots, Clock: clock, Workers: 16}
	targets := world.TrustedCoreDomains()[:100]

	run := func(poll time.Duration) (resumed int, meanDelay time.Duration) {
		clock.Set(start)
		res := scan.LifetimeProbe(targets, false, poll, 24*time.Hour)
		var sum time.Duration
		for _, r := range res {
			if r.ResumedAt1s {
				resumed++
				sum += r.MaxDelay
			}
		}
		if resumed > 0 {
			meanDelay = sum / time.Duration(resumed)
		}
		return
	}
	b.ResetTimer()
	var n5, n30 int
	var d5, d30 time.Duration
	for i := 0; i < b.N; i++ {
		n5, d5 = run(5 * time.Minute)
		n30, d30 = run(30 * time.Minute)
	}
	b.StopTimer()
	if n5 == 0 {
		b.Fatal("probe found no resuming domains")
	}
	printOnce("ablation-schedule", fmt.Sprintf(
		"Ablation probe schedule: 5-min polls — %d resuming, mean lifetime %v; 30-min polls — %d resuming, mean lifetime %v (coarser polls underestimate the lifetime but use 6x fewer connections)",
		n5, d5.Round(time.Minute), n30, d30.Round(time.Minute)))
}

// BenchmarkAblationRotationWindow measures how the STEK acceptance window
// (issue period × accepted previous keys) sets the vulnerability window:
// Google's 14h+1 versus a hard daily rotation versus a static key.
func BenchmarkAblationRotationWindow(b *testing.B) {
	base := simclock.Epoch
	st := testSessionState()
	configs := []struct {
		name string
		mgr  ticket.Manager
	}{
		{"static", ticket.NewStatic([]byte("s"), ticket.FormatRFC5077)},
		{"24h+0", &ticket.Rotating{Seed: []byte("s"), Base: base, Period: 24 * time.Hour, Format: ticket.FormatRFC5077}},
		{"14h+1", &ticket.Rotating{Seed: []byte("s"), Base: base, Period: 14 * time.Hour, AcceptPrevious: 1, Format: ticket.FormatRFC5077}},
	}
	var lines []string
	for _, cfg := range configs {
		tkt, err := cfg.mgr.IssuingKey(base).Seal(st, zeroReader{})
		if err != nil {
			b.Fatal(err)
		}
		// Find how long the ticket remains openable.
		accepted := time.Duration(0)
		for d := time.Hour; d <= 80*24*time.Hour; d += time.Hour {
			if cfg.mgr.LookupKey(tkt, base.Add(d)) == nil {
				break
			}
			accepted = d
		}
		lines = append(lines, fmt.Sprintf("%s: window >= %v", cfg.name, accepted))
	}
	b.ReportAllocs()
	mgr := configs[2].mgr
	tkt, _ := mgr.IssuingKey(base).Seal(st, zeroReader{})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if mgr.LookupKey(tkt, base.Add(20*time.Hour)) == nil {
			b.Fatal("lookup failed inside window")
		}
	}
	b.StopTimer()
	printOnce("ablation-rotation", "Ablation rotation windows: "+strings.Join(lines, "; "))
}

// ---- helpers ----

type zeroReader struct{}

func (zeroReader) Read(p []byte) (int, error) {
	for i := range p {
		p[i] = 0x5A
	}
	return len(p), nil
}

func testSessionState() *session.State {
	st := &session.State{Version: 0x0303, Suite: 0xC02F, CreatedAt: simclock.Epoch}
	for i := range st.MasterSecret {
		st.MasterSecret[i] = byte(i)
	}
	return st
}

// BenchmarkExtensionTLS13Outlook projects the measured exposure onto TLS
// 1.3 draft-15 resumption semantics (§2.4/§8.1): psk_dhe_ke would collapse
// the ticket-driven windows for 1-RTT data, while 0-RTT early data keeps
// today's exposure.
func BenchmarkExtensionTLS13Outlook(b *testing.B) {
	ds := benchDataset(b)
	rep := study.BuildReport(ds)
	b.ResetTimer()
	b.ReportAllocs()
	var out string
	for i := 0; i < b.N; i++ {
		out = rep.TLS13Outlook()
	}
	b.StopTimer()
	now := rep.Classification
	dhe := rep.TLS13Classification(false)
	withEarly := rep.TLS13Classification(true)
	if dhe.Over24h > now.Over24h {
		b.Error("psk_dhe_ke cannot increase exposure")
	}
	if withEarly.Over24h != now.Over24h {
		b.Error("0-RTT early data should preserve today's ticket exposure")
	}
	printOnce("tls13", out+fmt.Sprintf(
		"  Figure-8 >=24h count: today %d -> psk_dhe_ke (no 0-RTT) %d -> with 0-RTT %d",
		now.Over24h, dhe.Over24h, withEarly.Over24h))
}
