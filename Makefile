GO ?= go

# Bench knobs: every bench target names the root package by its stable
# import path (tlsshortcuts) instead of ".", so the command works from
# any directory and CI/local invocations measure the same package; all
# targets honor BENCHTIME for comparable iteration counts.
BENCHPKG ?= tlsshortcuts
BENCHTIME ?= 1x

.PHONY: build test test-faults test-telemetry test-shards test-cryptanalysis \
	test-obsv test-traffic race bench bench-campaign bench-gate bench-million fmt

build:
	$(GO) build ./...

test:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then echo "gofmt needed on:"; echo "$$out"; exit 1; fi
	$(GO) vet ./...
	$(GO) test -short ./...

# Lossy-network robustness suite: fault plan determinism, scan deadlines
# and retries, the error taxonomy, cache sweeping, and the empty-plan
# golden-hash inertness proof.
test-faults:
	$(GO) test -run 'Fault|Stall|Refus|Reset|Retry|Transient|Classify|Churn|Decide|Sweep|Len|Expire|NoRoute|Clearing|Golden' \
		./internal/faults ./internal/simnet ./internal/scanner ./internal/session ./internal/study

# Telemetry suite: registry/histogram correctness under -race, span
# schema round-trip, dial/label collectors, report-rendering determinism,
# and the tentpole proof — the golden 200x8 campaign re-run with
# telemetry fully enabled must still match the committed hash, and a
# faulted campaign's deterministic metrics must be identical across
# worker counts.
test-telemetry:
	$(GO) test -race ./internal/telemetry
	$(GO) test -run 'Telemetry|Span|ReportRendering' \
		./internal/scanner ./internal/simnet ./internal/study

# Sharding determinism suite: the 200x8 seed-7 campaign split into 1, 3,
# and 5 independently-run shards and merged must reproduce the committed
# golden hash byte-identically, shards must not depend on worker count,
# and the merge must reject malformed shard sets.
test-shards:
	$(GO) test -run 'Shard|Merge|CampaignDeterminism' -count=1 ./internal/study

# Cryptanalysis suite: dictionary cracking and probe units, the ticket
# key-name regressions, the attacker capture-path fixes (format rejection,
# snapshot isolation under -race, round-trip property, e2e resumed-capture
# decryption), and the weak-population campaign proofs — nonzero measured
# decryption yield with the toggle on, byte-identical golden hash with it
# off, and worker-count/shard invariance of the weak campaign itself.
test-cryptanalysis:
	$(GO) test -count=1 ./internal/cryptanalysis ./internal/ticket ./internal/vulnwindow
	$(GO) test -race -count=1 ./internal/attacker
	$(GO) test -run 'WeakCrypto|CampaignDeterminism' -count=1 ./internal/study

# Observability-plane suite. Fast half under -race: SSE broadcaster
# accounting under churn (never blocks, every dropped event counted),
# journal round-trip/validation/merge, prom exposition, and the cluster
# view. Full half without -short: the golden 200x8 campaign re-run with
# the whole plane attached (HTTP server + churning SSE subscribers +
# flight-recorder journal + trace) must match the committed hash, the
# journal's deterministic view must be identical across worker counts
# and for sharded-vs-monolithic merges, and studyrun's fatal path must
# finalize every sink (plus the simweb -metrics smoke).
test-obsv:
	$(GO) test -race -count=1 -run 'Broadcaster|Prom|Sanitize|JournalRoundTrip|JournalValidation|JournalVersion|JournalAbort|MergeJournals|ClusterView' ./internal/obsv
	$(GO) test -count=1 ./internal/obsv ./cmd/studyrun ./cmd/simweb ./cmd/tlsobserve

# Traffic-plane suite: the workload model's purity and engine determinism
# (worker counts, user shards), the session store's bounded-LRU eviction
# order, the stable-dial isolation proof, the zero-wall-delta progress
# guards, the timeline traffic lanes, and the study-level contract — a
# traffic-on campaign is deterministic across workers and shard merges,
# and with traffic off the golden 200x8 hash still holds.
test-traffic:
	$(GO) test -count=1 ./internal/traffic
	$(GO) test -run 'BoundedCache|StableDials|ProgressZeroWallDelta|ProgressCounterRollback|ProgressTrafficFields|Timeline' \
		-count=1 ./internal/session ./internal/simnet ./internal/obsv ./cmd/tlsobserve
	$(GO) test -run 'Traffic|CampaignDeterminism' -count=1 ./internal/study

race:
	$(GO) test -race ./...

bench:
	$(GO) test -run=NONE -bench=. -benchtime=$(BENCHTIME) ./...

# Full-scale campaign benchmark (1000 domains x 44 days, 16 workers);
# refreshes the committed BENCH_campaign.json trajectory point.
bench-campaign:
	BENCH_CAMPAIGN_FULL=1 BENCH_CAMPAIGN_OUT=BENCH_campaign.json \
		$(GO) test -run=NONE -bench='CampaignE2E$$' -benchtime=$(BENCHTIME) $(BENCHPKG)

# Smoke-scale bench + regression gate: measures the short campaign,
# then compares allocs_per_op / alloc_bytes_per_op (tight) and
# seconds_per_op / handshakes_per_sec (loose) against the committed
# smoke baseline. CI fails the build if this fails. BENCH_GATE_PROFILES
# adds -cpuprofile/-memprofile of the gated run (CI uploads them as
# artifacts for regression triage).
BENCH_GATE_PROFILES ?=
bench-gate:
	BENCH_CAMPAIGN_OUT=/tmp/bench_smoke.json \
		$(GO) test -short -run=NONE -bench='CampaignE2E$$' -benchtime=$(BENCHTIME) \
		$(if $(BENCH_GATE_PROFILES),-cpuprofile=$(BENCH_GATE_PROFILES)/bench_smoke.cpu -memprofile=$(BENCH_GATE_PROFILES)/bench_smoke.mem,) \
		$(BENCHPKG)
	$(GO) run tlsshortcuts/cmd/benchgate -baseline testdata/bench_smoke_baseline.json -current /tmp/bench_smoke.json

# Million-scale extrapolation profile: paper-shaped 63-day campaign at
# BENCH_MILLION_LIST domains, sampling peak live heap and projecting
# memory/wall time to the Top Million x 63 days; refreshes the committed
# BENCH_million.json. Override the scale for a quick smoke:
#   make bench-million BENCH_MILLION_LIST=300 BENCH_MILLION_DAYS=6 BENCH_MILLION_OUT=/tmp/m.json
BENCH_MILLION_LIST ?= 4000
BENCH_MILLION_DAYS ?= 63
BENCH_MILLION_OUT ?= BENCH_million.json
bench-million:
	BENCH_MILLION_LIST=$(BENCH_MILLION_LIST) BENCH_MILLION_DAYS=$(BENCH_MILLION_DAYS) \
	BENCH_MILLION_OUT=$(BENCH_MILLION_OUT) \
		$(GO) test -run=NONE -bench=CampaignMillionProfile -benchtime=$(BENCHTIME) -timeout=30m $(BENCHPKG)

fmt:
	gofmt -l -w .
