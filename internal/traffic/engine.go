package traffic

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"tlsshortcuts/internal/drbg"
	"tlsshortcuts/internal/faults"
	"tlsshortcuts/internal/population"
	"tlsshortcuts/internal/session"
	"tlsshortcuts/internal/simclock"
	"tlsshortcuts/internal/telemetry"
	"tlsshortcuts/internal/tlsclient"
)

// chain is one resumption tracking lineage: the unbroken sequence of
// connections an operator could link through offered session state. It
// is reference-counted by the client store entries that can extend it —
// cross-hostname resumption makes one chain reachable from several
// hostnames' entries — and its statistics are recorded exactly once,
// when the last reference drops.
type chain struct {
	refs    int
	n       uint64        // linked connections
	start   time.Time     // first connection (virtual)
	last    time.Time     // latest linked connection (virtual)
	cross   bool          // spanned more than one hostname
	effLife time.Duration // effective lifetime of the newest session
}

// stored is one client-store entry: the resumable session held for a
// hostname, its effective lifetime (policy lifetime capped by the
// server's ticket hint), and the chain it would extend.
type stored struct {
	sess    *tlsclient.Session
	effLife time.Duration
	ch      *chain
}

// userState is one simulated user: sampled profile plus the browser
// session store. The session.Cache (policy lifetime + LRU capacity) is
// the liveness authority; the sess map carries the resumable payloads
// and chain links, reconciled lazily — an entry whose cache slot is
// gone (expired or evicted) is dropped on next touch.
type userState struct {
	id    int
	prof  profile
	cache *session.Cache
	sess  map[string]*stored
}

// liveMarker is the shared cache payload: the traffic plane only uses
// the server-side cache type for its lifetime/LRU bookkeeping, the
// actual session lives in the sess map.
var liveMarker = &session.State{}

// arena is one worker's reusable scratch: DRBG, capture, config, and
// request buffer, so steady-state visits allocate only session state.
type arena struct {
	rng drbg.Reader
	cap tlsclient.Capture
	cfg tlsclient.Config
	req []byte
}

// maxReqPad is the spread of per-visit request sizes ([64, 64+maxReqPad)).
const maxReqPad = 1400

// Engine drives a user population's visits against the simulated
// network in virtual-time lockstep: a traffic day is 24 hour slots, the
// shared campaign clock is set to each slot's instant, the slot's users
// run to completion (the inter-slot barrier), and after the last slot
// the clock is restored to the day start so the surrounding scan
// campaign observes identical virtual instants whether or not traffic
// ran.
type Engine struct {
	opts        Options
	seed        []byte
	world       *population.World
	clock       *simclock.Manual
	dialer      Dialer
	reg         *telemetry.Registry
	policies    []Policy
	totalWeight float64

	domains  []string           // all domains, rank order
	domOp    []string           // operator per domain index ("" = none)
	opGroups map[string][]int32 // operator -> member domain indices (len > 1)

	users   []*userState // this shard's users, ascending user id
	scheds  [][]visit    // per-user schedule scratch, reused across days
	nworker int
	arenas  []*arena
	tallies [][]PolicyStats // [worker][policy]
	days    int             // traffic days run

	// cached counter/histogram handles (hot path)
	ctrVisits, ctrResumed, ctrFailures, ctrBytes, ctrCross *telemetry.Counter
	ctrHSStart, ctrHSDone, ctrBusy                         *telemetry.Counter
	polVisits, polResumed                                  []*telemetry.Counter
	chainHist                                              []*telemetry.Histogram
}

// NewEngine builds the traffic plane over an existing world. The
// registry must be non-nil: traffic progress is part of the campaign's
// observability surface.
func NewEngine(world *population.World, opts Options, reg *telemetry.Registry) (*Engine, error) {
	if opts.Users <= 0 {
		return nil, errors.New("traffic: Users must be positive")
	}
	if reg == nil {
		return nil, errors.New("traffic: registry must not be nil")
	}
	clock, ok := world.Clock.(*simclock.Manual)
	if !ok {
		return nil, errors.New("traffic: world clock must be a manual clock")
	}
	pols := opts.policies()
	var total float64
	seen := map[string]bool{}
	for i := range pols {
		p := &pols[i]
		if p.Name == "" || seen[p.Name] {
			return nil, fmt.Errorf("traffic: policy %d has empty or duplicate name", i)
		}
		seen[p.Name] = true
		if p.Lifetime <= 0 || p.Weight <= 0 {
			return nil, fmt.Errorf("traffic: policy %q needs positive lifetime and weight", p.Name)
		}
		total += p.Weight
	}
	e := &Engine{
		opts:        opts,
		seed:        []byte(fmt.Sprintf("traffic|%d", opts.Seed)),
		world:       world,
		clock:       clock,
		dialer:      world.Net,
		reg:         reg,
		policies:    pols,
		totalWeight: total,
		domains:     world.AllDomains(),
		nworker:     opts.workers(),
	}

	idx := make(map[string]int32, len(e.domains))
	for i, d := range e.domains {
		idx[d] = int32(i)
	}
	e.domOp = make([]string, len(e.domains))
	e.opGroups = make(map[string][]int32)
	for op, names := range world.OperatorGroups() {
		members := make([]int32, len(names))
		for i, n := range names {
			members[i] = idx[n]
			e.domOp[idx[n]] = op
		}
		e.opGroups[op] = members
	}

	for u := 0; u < opts.Users; u++ {
		if opts.ShardCount > 1 && u%opts.ShardCount != opts.ShardIndex {
			continue
		}
		prof := e.userProfile(u)
		pol := &e.policies[prof.policy]
		e.users = append(e.users, &userState{
			id:    u,
			prof:  prof,
			cache: session.NewBoundedCache(pol.Lifetime, pol.CacheCap),
			sess:  make(map[string]*stored),
		})
	}
	e.scheds = make([][]visit, len(e.users))

	e.arenas = make([]*arena, e.nworker)
	e.tallies = make([][]PolicyStats, e.nworker)
	for w := 0; w < e.nworker; w++ {
		ar := &arena{req: make([]byte, 64+maxReqPad)}
		// Static request payload; only the per-visit length is drawn.
		tmp := drbg.NewString("traffic", "reqpad")
		tmp.Read(ar.req)
		e.arenas[w] = ar
		e.tallies[w] = make([]PolicyStats, len(e.policies))
	}

	e.ctrVisits = reg.Counter(telemetry.CounterTrafficVisits)
	e.ctrResumed = reg.Counter(telemetry.CounterTrafficResumed)
	e.ctrFailures = reg.Counter(telemetry.CounterTrafficFailures)
	e.ctrBytes = reg.Counter(telemetry.CounterTrafficBytes)
	e.ctrCross = reg.Counter(telemetry.CounterTrafficCrossHost)
	e.ctrHSStart = reg.Counter(telemetry.CounterHandshakesStarted)
	e.ctrHSDone = reg.Counter(telemetry.CounterHandshakesCompleted)
	e.ctrBusy = reg.Counter(telemetry.CounterBusyNanos)
	for i := range e.policies {
		name := e.policies[i].Name
		e.polVisits = append(e.polVisits, reg.Counter(telemetry.CounterTrafficPolicyPrefix+name+"/visits"))
		e.polResumed = append(e.polResumed, reg.Counter(telemetry.CounterTrafficPolicyPrefix+name+"/resumed"))
		e.chainHist = append(e.chainHist, reg.Histogram(telemetry.HistTrafficChainPrefix+name))
	}
	return e, nil
}

// forEach runs fn(worker, i) over i in [0, n) on the engine's worker
// pool with atomic index claiming (any worker may claim any item; item
// results only land in per-worker tallies, which are additive, so the
// claim order never shows in the dataset).
func (e *Engine) forEach(n int, fn func(w, i int)) {
	workers := e.nworker
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(0, i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(w, i)
			}
		}(w)
	}
	wg.Wait()
}

// RunDay runs one traffic day starting at the clock's current instant
// (the scan day's start). It returns scheduled visits and failed
// connections, and leaves the clock back at the day start.
func (e *Engine) RunDay(day int) (visits, fails int) {
	dayStart := e.clock.Now()

	// Draw every user's schedule for the day (pure per-user function).
	e.forEach(len(e.users), func(w, i int) {
		us := e.users[i]
		e.scheds[i] = e.daySchedule(us.id, &us.prof, day, e.scheds[i][:0])
	})

	// Bucket each user's slot-sorted schedule into per-hour work items.
	type slotItem struct{ ui, lo, hi int32 }
	var slots [24][]slotItem
	for ui := range e.users {
		sched := e.scheds[ui]
		visits += len(sched)
		for lo := 0; lo < len(sched); {
			hi := lo
			s := sched[lo].slot
			for hi < len(sched) && sched[hi].slot == s {
				hi++
			}
			slots[s] = append(slots[s], slotItem{int32(ui), int32(lo), int32(hi)})
			lo = hi
		}
	}

	failed := make([]int, e.nworker)
	for s := 0; s < 24; s++ {
		items := slots[s]
		if len(items) == 0 {
			continue
		}
		now := dayStart.Add(time.Duration(s) * time.Hour)
		// Lockstep: every connection of this slot — client and server
		// side — observes the slot's instant; forEach is the barrier
		// before the next slot moves the shared clock.
		e.clock.Set(now)
		e.forEach(len(items), func(w, i int) {
			it := items[i]
			us := e.users[it.ui]
			sched := e.scheds[it.ui]
			for k := it.lo; k < it.hi; k++ {
				if !e.doVisit(w, us, day, s, int(k), sched[k], now) {
					failed[w]++
				}
			}
		})
	}
	// Restore the day-start instant so the rest of the campaign runs at
	// the same virtual times as a traffic-off run.
	e.clock.Set(dayStart)
	e.days++
	for _, f := range failed {
		fails += f
	}
	return visits, fails
}

// liveSession returns the user's live store entry for domain d, lazily
// dropping it (and releasing its chain reference) if the cache slot
// expired or was LRU-evicted, or the session outlived its effective
// lifetime.
func (e *Engine) liveSession(us *userState, d string, now time.Time, pt *PolicyStats) *stored {
	st := us.sess[d]
	if st == nil {
		return nil
	}
	if us.cache.Get([]byte(d), now) == nil || now.Sub(st.sess.CreatedAt) > st.effLife {
		delete(us.sess, d)
		pt.Dropped++
		e.releaseChain(us, st.ch, pt)
		return nil
	}
	return st
}

// liveSibling finds a live session stored for another hostname of the
// destination's operator, in rank order (deterministic).
func (e *Engine) liveSibling(us *userState, dom int32, now time.Time, pt *PolicyStats) (string, *stored) {
	op := e.domOp[dom]
	if op == "" {
		return "", nil
	}
	for _, di := range e.opGroups[op] {
		if di == dom {
			continue
		}
		sd := e.domains[di]
		if us.sess[sd] == nil {
			continue
		}
		if st := e.liveSession(us, sd, now, pt); st != nil {
			return sd, st
		}
	}
	return "", nil
}

// releaseChain drops one reference; the last drop records the chain.
func (e *Engine) releaseChain(us *userState, ch *chain, pt *PolicyStats) {
	ch.refs--
	if ch.refs > 0 {
		return
	}
	e.closeChain(us.prof.policy, ch, pt)
}

// closeChain records a finished tracking chain into pt.
func (e *Engine) closeChain(policy int, ch *chain, pt *PolicyStats) {
	pt.Chains++
	if ch.cross {
		pt.CrossChains++
	}
	pt.ChainLen[chainLenBucket(ch.n)]++
	track := ch.last.Sub(ch.start)
	pt.ChainDur[chainDurBucket(track)]++
	pt.TrackSeconds += uint64(track / time.Second)
	unlink := track + ch.effLife
	pt.UnlinkSeconds += uint64(unlink / time.Second)
	if ch.n > pt.MaxChainLen {
		pt.MaxChainLen = ch.n
	}
	if u := uint64(unlink / time.Second); u > pt.MaxUnlinkSeconds {
		pt.MaxUnlinkSeconds = u
	}
	e.chainHist[policy].Observe(track)
}

// storePut stores sess for domain d, wiring the chain reference counts:
// replacing an entry of a different lineage releases the old one.
func (e *Engine) storePut(us *userState, d string, sess *tlsclient.Session, effLife time.Duration, ch *chain, now time.Time, pt *PolicyStats) {
	if old := us.sess[d]; old != nil && old.ch != ch {
		e.releaseChain(us, old.ch, pt)
	} else if old != nil {
		ch.refs-- // same lineage: the replaced entry's reference carries over
	}
	ch.refs++
	us.sess[d] = &stored{sess: sess, effLife: effLife, ch: ch}
	us.cache.Put([]byte(d), liveMarker, now)
}

// doVisit runs one scheduled visit: resolve the offered session, dial
// the stable path, handshake with per-visit deterministic entropy,
// account the outcome, and update the user's store and chains. Reports
// whether the connection completed.
func (e *Engine) doVisit(w int, us *userState, day, slot, k int, v visit, now time.Time) bool {
	d := e.domains[v.dom]
	pol := &e.policies[us.prof.policy]
	pt := &e.tallies[w][us.prof.policy]
	label := fmt.Sprintf("tr|u%d|d%d|s%d|%d", us.id, day, slot, k)

	var resume *tlsclient.Session
	viaTicket := false
	fromDomain := ""
	var fromChain *chain
	if st := e.liveSession(us, d, now, pt); st != nil {
		resume, fromDomain, fromChain = st.sess, d, st.ch
		viaTicket = len(st.sess.Ticket) > 0
	} else if v.cross {
		if sd, st := e.liveSibling(us, v.dom, now, pt); st != nil {
			resume, fromDomain, fromChain = st.sess, sd, st.ch
			// Cross-host, prefer the session ID: shared caches are the
			// cross-domain channel §5 measures; fall back to the ticket
			// (accepted only where the operator shares STEKs).
			viaTicket = len(st.sess.ID) == 0
		}
	}

	ar := e.arenas[w]
	ar.rng.ReseedParts(e.seed, d, label)
	req := ar.req[:64+int(rndU64(&ar.rng)%maxReqPad)]
	cfg := &ar.cfg
	*cfg = tlsclient.Config{
		ServerName:      d,
		Clock:           simclock.Fixed(now),
		Roots:           e.world.Roots,
		OfferTicket:     true,
		Resume:          resume,
		ResumeViaTicket: viaTicket,
		AppData:         req,
		Rand:            &ar.rng,
		ReuseKex:        true,
	}

	start := time.Now()
	e.ctrVisits.Inc()
	e.polVisits[us.prof.policy].Inc()
	e.ctrHSStart.Inc()
	conn, err := e.dialer.DialProbeStable(d, label)
	if err == nil {
		conn.SetDeadline(time.Now().Add(e.opts.timeout()))
		err = tlsclient.HandshakeInto(&ar.cap, conn, cfg)
		conn.Close()
	}
	e.ctrBusy.Add(uint64(time.Since(start)))
	if err != nil {
		// A failed visit leaves the user's session state untouched: the
		// stored session stays offered on the next visit.
		pt.Failed++
		e.ctrFailures.Inc()
		e.reg.Counter(telemetry.CounterErrorPrefix + string(faults.Classify(err))).Inc()
		return false
	}
	e.ctrHSDone.Inc()

	cp := &ar.cap
	n := uint64(len(req) + len(cp.AppResp))
	pt.Conns++
	pt.Bytes += n
	e.ctrBytes.Add(n)
	if pt.Domains == nil {
		pt.Domains = make(map[string]DomainTally)
	}
	dt := pt.Domains[d]
	dt.Conns++
	dt.Bytes += n
	pt.Domains[d] = dt

	effLife := pol.Lifetime
	if cp.LifetimeHint > 0 && cp.LifetimeHint < effLife {
		effLife = cp.LifetimeHint
	}
	var ch *chain
	if cp.Resumed {
		pt.Resumed++
		e.ctrResumed.Inc()
		e.polResumed[us.prof.policy].Inc()
		if cp.ResumedViaTicket {
			pt.ResumedTicket++
		} else {
			pt.ResumedID++
		}
		ch = fromChain
		ch.n++
		ch.last = now
		ch.effLife = effLife
		if fromDomain != d {
			ch.cross = true
			pt.CrossHostResumes++
			e.ctrCross.Inc()
		}
	} else {
		pt.Full++
		ch = &chain{n: 1, start: now, last: now, effLife: effLife}
	}

	sess := cp.Session
	if sess != nil && (len(sess.Ticket) > 0 || len(sess.ID) > 0) {
		e.storePut(us, d, sess, effLife, ch, now, pt)
	} else if ch.refs == 0 {
		// Nothing resumable came back and no store entry holds the
		// lineage: the chain ends with this connection.
		e.closeChain(us.prof.policy, ch, pt)
	}
	return true
}

// Finalize closes every open chain and folds the per-worker tallies
// into the Results. Call once, after the last RunDay.
func (e *Engine) Finalize() *Results {
	final := make([]PolicyStats, len(e.policies))
	for _, us := range e.users {
		pt := &final[us.prof.policy]
		for _, st := range us.sess {
			// Release order across the map is irrelevant: each chain
			// records once (last reference), and all stats are additive.
			e.releaseChain(us, st.ch, pt)
		}
		us.sess = nil
	}
	res := &Results{
		Users:      e.opts.Users,
		Days:       e.days,
		Seed:       e.opts.Seed,
		MeanVisits: e.opts.meanVisits(),
		CrossHost:  e.opts.crossHost(),
		Policies:   make([]PolicyStats, len(e.policies)),
	}
	for i := range res.Policies {
		ps := &res.Policies[i]
		ps.Policy = e.policies[i]
		for w := range e.tallies {
			ps.add(&e.tallies[w][i])
		}
		ps.add(&final[i])
	}
	for _, us := range e.users {
		res.Policies[us.prof.policy].Users++
	}
	return res
}
