package traffic

import (
	"encoding/json"
	"reflect"
	"testing"
	"time"

	"tlsshortcuts/internal/population"
	"tlsshortcuts/internal/simclock"
	"tlsshortcuts/internal/telemetry"
)

func TestChainBuckets(t *testing.T) {
	lens := map[uint64]int{1: 0, 2: 1, 3: 2, 4: 3, 5: 4, 8: 4, 9: 5, 16: 5, 17: 6, 100: 6}
	for n, want := range lens {
		if got := chainLenBucket(n); got != want {
			t.Errorf("chainLenBucket(%d) = %d, want %d", n, got, want)
		}
	}
	durs := map[time.Duration]int{
		0:                   0,
		59 * time.Minute:    0,
		time.Hour:           1,
		5 * time.Hour:       1,
		6 * time.Hour:       2,
		23 * time.Hour:      2,
		24 * time.Hour:      3,
		71 * time.Hour:      3,
		72 * time.Hour:      4,
		167 * time.Hour:     4,
		7 * 24 * time.Hour:  5,
		30 * 24 * time.Hour: 5,
	}
	for d, want := range durs {
		if got := chainDurBucket(d); got != want {
			t.Errorf("chainDurBucket(%s) = %d, want %d", d, got, want)
		}
	}
}

func TestBucketsAddClassifies(t *testing.T) {
	var b Buckets
	b.add(10, 0)              // no window
	b.add(5, 12*time.Hour)    // in window, under every threshold
	b.add(3, 48*time.Hour)    // > 24h
	b.add(2, 10*24*time.Hour) // > 7d
	b.add(1, 40*24*time.Hour) // > 30d
	want := Buckets{Total: 21, InWindow: 11, Over24h: 6, Over7d: 3, Over30d: 1}
	if b != want {
		t.Fatalf("Buckets = %+v, want %+v", b, want)
	}
	if f := b.Frac(b.InWindow); f < 0.52 || f > 0.53 {
		t.Errorf("Frac(InWindow) = %v, want ~11/21", f)
	}
	if (Buckets{}).Frac(5) != 0 {
		t.Error("Frac on empty Buckets must be 0")
	}
}

func TestMergeRejectsMismatchedConfigs(t *testing.T) {
	mk := func() *Results {
		return &Results{
			Users: 10, Days: 2, Seed: 7, MeanVisits: 6, CrossHost: 0.25,
			Policies: []PolicyStats{{Policy: Policy{Name: "chrome", Lifetime: time.Hour, CacheCap: 8, Weight: 1}}},
		}
	}
	a, b := mk(), mk()
	b.Seed = 8
	if err := a.Merge(b); err == nil {
		t.Error("merge across seeds must fail")
	}
	a, b = mk(), mk()
	b.Policies[0].Policy.Lifetime = 2 * time.Hour
	if err := a.Merge(b); err == nil {
		t.Error("merge across policy tables must fail")
	}
	a, b = mk(), mk()
	if err := a.Merge(b); err != nil {
		t.Errorf("merge of identical configs failed: %v", err)
	}
}

func TestComputeJoinMatchesManualClassification(t *testing.T) {
	r := &Results{Policies: []PolicyStats{{
		Policy: Policy{Name: "chrome"},
		Domains: map[string]DomainTally{
			"a.example": {Conns: 4, Bytes: 400}, // no window
			"b.example": {Conns: 3, Bytes: 300}, // 12h window
			"c.example": {Conns: 2, Bytes: 200}, // 8d window
		},
	}}}
	ComputeJoin(r, map[string]time.Duration{
		"b.example": 12 * time.Hour,
		"c.example": 8 * 24 * time.Hour,
	})
	j := r.Join
	if j == nil || len(j.PerPolicy) != 1 {
		t.Fatalf("join missing: %+v", j)
	}
	wantC := Buckets{Total: 9, InWindow: 5, Over24h: 2, Over7d: 2}
	wantB := Buckets{Total: 900, InWindow: 500, Over24h: 200, Over7d: 200}
	if j.Connections != wantC {
		t.Errorf("Connections = %+v, want %+v", j.Connections, wantC)
	}
	if j.Bytes != wantB {
		t.Errorf("Bytes = %+v, want %+v", j.Bytes, wantB)
	}
}

func buildWorld(t *testing.T) *population.World {
	t.Helper()
	w, err := population.Build(population.Options{ListSize: 60, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	return w
}

// TestProfileAndScheduleAreStateless pins the workload model's purity:
// redrawing a user's profile and day schedule — on a different engine
// instance with different worker counts — reproduces them exactly.
func TestProfileAndScheduleAreStateless(t *testing.T) {
	mk := func(workers int) *Engine {
		e, err := NewEngine(buildWorld(t), Options{Users: 20, Seed: 3, Workers: workers}, telemetry.NewRegistry())
		if err != nil {
			t.Fatal(err)
		}
		return e
	}
	a, b := mk(2), mk(9)
	for u := 0; u < 20; u++ {
		pa, pb := a.userProfile(u), b.userProfile(u)
		if pa.policy != pb.policy || pa.activity != pb.activity || !reflect.DeepEqual(pa.favs, pb.favs) {
			t.Fatalf("user %d profile differs across engines", u)
		}
		sa := a.daySchedule(u, &pa, 1, nil)
		sb := b.daySchedule(u, &pb, 1, nil)
		if !reflect.DeepEqual(sa, sb) {
			t.Fatalf("user %d day-1 schedule differs across engines", u)
		}
	}
}

// TestEngineDeterministicResults runs the engine standalone (no scan
// campaign around it) twice with different worker counts and compares
// the full Results JSON.
func TestEngineDeterministicResults(t *testing.T) {
	run := func(workers, shardIdx, shardCnt int) *Results {
		w := buildWorld(t)
		clock := w.Clock.(*simclock.Manual)
		start := clock.Now()
		e, err := NewEngine(w, Options{
			Users: 30, Seed: 3, Workers: workers,
			ShardIndex: shardIdx, ShardCount: shardCnt,
		}, telemetry.NewRegistry())
		if err != nil {
			t.Fatal(err)
		}
		for day := 0; day < 3; day++ {
			clock.Set(start.Add(time.Duration(day) * 24 * time.Hour))
			e.RunDay(day)
			if got := clock.Now(); !got.Equal(start.Add(time.Duration(day) * 24 * time.Hour)) {
				t.Fatalf("RunDay left the clock at %s, want the day start", got)
			}
		}
		return e.Finalize()
	}
	j := func(r *Results) string {
		b, err := json.Marshal(r)
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}

	mono1 := run(1, 0, 0)
	mono2 := run(7, 0, 0)
	if j(mono1) != j(mono2) {
		t.Fatal("1-worker and 7-worker engine results differ")
	}
	if mono1.Conns() == 0 {
		t.Fatal("engine completed no connections")
	}

	// Two user shards merge to the monolithic results.
	s0 := run(3, 0, 2)
	s1 := run(3, 1, 2)
	if err := s0.Merge(s1); err != nil {
		t.Fatalf("merge: %v", err)
	}
	if j(s0) != j(mono1) {
		t.Fatal("merged user shards differ from monolithic engine run")
	}
}
