// Package simclock provides the virtual clock that lets a nine-week
// measurement campaign run in minutes: every piece of server state (cache
// expiry, STEK epochs, KEX reuse epochs) is a pure function of clock time.
package simclock

import (
	"sync"
	"time"
)

// Epoch is the canonical start of simulated time, aligned with the paper's
// study window (March 2, 2016, 00:00 UTC).
var Epoch = time.Date(2016, time.March, 2, 0, 0, 0, 0, time.UTC)

// Clock is the minimal time source used everywhere in place of time.Now.
type Clock interface {
	Now() time.Time
}

// Manual is a hand-advanced clock for virtual-time campaigns.
type Manual struct {
	mu sync.RWMutex
	t  time.Time
}

// NewManual returns a Manual clock starting at t.
func NewManual(t time.Time) *Manual { return &Manual{t: t} }

// Now returns the current virtual time.
func (m *Manual) Now() time.Time {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.t
}

// Set jumps the clock to t (backwards jumps are allowed; tests use them).
func (m *Manual) Set(t time.Time) {
	m.mu.Lock()
	m.t = t
	m.mu.Unlock()
}

// Advance moves the clock forward by d.
func (m *Manual) Advance(d time.Duration) {
	m.mu.Lock()
	m.t = m.t.Add(d)
	m.mu.Unlock()
}

// Fixed is a Clock pinned at one instant. Per-connection views of
// virtual time (a traffic visit inside an hour slot, a probe waiting out
// retry backoff) use one so concurrent connections never mutate the
// shared lockstep clock.
type Fixed time.Time

// Now returns the pinned instant.
func (f Fixed) Now() time.Time { return time.Time(f) }

type system struct{}

func (system) Now() time.Time { return time.Now() }

// System returns a Clock backed by the real wall clock.
func System() Clock { return system{} }
