// Package traffic is the browser-realistic client traffic plane: a
// population of stateful simulated users driving real TLS connections
// (full handshakes, session-ID and ticket resumption, application data)
// at the simulated server population, concurrently with the scanner
// campaign and on the same virtual clock.
//
// Where the scanner *infers* harm — §6's vulnerability windows bound how
// much hypothetical traffic a later compromise would decrypt — the
// traffic plane *measures* it: every user connection is timestamped in
// virtual time and joined against its domain's combined window, yielding
// the fraction of real connections and bytes that landed inside a
// window. The same connections expose the client-side harm Sy et al.
// measured: resumption tracking chains (how long an operator can link
// one user's visits via session state), per browser lifetime policy.
//
// Determinism contract: every draw the workload makes — policy
// assignment, favorite sites, per-day visit schedules, per-visit
// handshake entropy — is keyed on (traffic seed, user id, ...) or
// (traffic seed, domain, visit label), never on worker scheduling or
// global dial order. Users are partitioned across shards by user index.
// Connections dial through the network's stable path (balancer choice
// keyed on (domain, label), the per-domain dial sequence untouched), so
// enabling traffic cannot perturb a single scanner observation: the
// scanner-visible portion of a traffic-on dataset is byte-identical to
// the traffic-off golden run.
package traffic

import (
	"net"
	"time"
)

// Dialer is the network face the engine needs: the stable dial path,
// which keys the balancer choice on (domain, label) and never consumes
// the per-domain dial sequence the scanner's default dials draw from
// (*simnet.Net implements it).
type Dialer interface {
	DialProbeStable(domain, label string) (net.Conn, error)
}

// Policy is one browser-style client session policy: how long the
// client keeps a resumable session, and how many hostnames it keeps one
// for (LRU-bounded). The calibrated defaults follow the browser
// lifetimes and cache sizes reported by Sy et al. ("Tracking Users
// across the Web via TLS Session Resumption").
type Policy struct {
	// Name labels the policy in reports and metrics.
	Name string
	// Lifetime is the client-side session memory: a stored session
	// older than this is never offered again. Successful resumption
	// refreshes the timer (the prolongation that makes long tracking
	// chains possible). A server ticket lifetime hint shorter than this
	// caps the stored ticket's effective lifetime.
	Lifetime time.Duration
	// CacheCap bounds how many hostnames the user holds a session for;
	// beyond it the least-recently-used hostname's session is evicted.
	CacheCap int
	// Weight is the policy's share of the user population (weights are
	// normalized over the table).
	Weight float64
}

// DefaultPolicies is the calibrated browser policy table: Chrome-style
// (1 h session memory, 1024-host cache), Firefox-style (24 h, 2048),
// Safari-style (day-scale memory over a small per-host cache).
func DefaultPolicies() []Policy {
	return []Policy{
		{Name: "chrome", Lifetime: time.Hour, CacheCap: 1024, Weight: 0.60},
		{Name: "firefox", Lifetime: 24 * time.Hour, CacheCap: 2048, Weight: 0.25},
		{Name: "safari", Lifetime: 24 * time.Hour, CacheCap: 32, Weight: 0.15},
	}
}

// Options configures the traffic plane.
type Options struct {
	// Users is the simulated user population size. Zero disables the
	// plane entirely.
	Users int
	// Seed keys every workload draw; study.Run defaults it to the
	// campaign seed. The entropy namespace ("traffic|seed") is disjoint
	// from the scanner's ("study|seed").
	Seed int64
	// Workers sizes the visit worker pool (default 8, the scanner's).
	Workers int
	// MeanVisits is the mean visits per user per day before the
	// per-user activity multiplier (default 6).
	MeanVisits float64
	// CrossHost is the probability that a visit with no session for its
	// destination offers a live session stored for another hostname of
	// the same operator — the cross-hostname linkability probe
	// (default 0.25).
	CrossHost float64
	// Policies overrides the browser policy table (nil = defaults).
	Policies []Policy
	// ShardIndex/ShardCount partition users round-robin by user index
	// (user u runs in shard u % ShardCount). ShardCount <= 1 runs all.
	ShardIndex, ShardCount int
	// Timeout is the per-connection wall-clock deadline (default 5s).
	Timeout time.Duration
}

func (o *Options) meanVisits() float64 {
	if o.MeanVisits > 0 {
		return o.MeanVisits
	}
	return 6
}

func (o *Options) crossHost() float64 {
	if o.CrossHost > 0 {
		return o.CrossHost
	}
	return 0.25
}

func (o *Options) workers() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return 8
}

func (o *Options) timeout() time.Duration {
	if o.Timeout > 0 {
		return o.Timeout
	}
	return 5 * time.Second
}

func (o *Options) policies() []Policy {
	if len(o.Policies) > 0 {
		return o.Policies
	}
	return DefaultPolicies()
}
