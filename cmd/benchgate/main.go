// Command benchgate compares a fresh campaign-benchmark JSON (written by
// BenchmarkCampaignE2E via BENCH_CAMPAIGN_OUT) against a committed
// baseline and exits non-zero on regression. CI runs it after the smoke
// bench so performance claims are enforced, not just recorded.
//
// Usage:
//
//	benchgate -baseline testdata/bench_smoke_baseline.json -current /tmp/bench.json
//
// Four metrics gate the build:
//
//   - allocs_per_op: deterministic for a fixed campaign shape, so the
//     tolerance is tight (default 25%). An alloc regression here means a
//     hot-path change reintroduced per-handshake garbage.
//   - alloc_bytes_per_op: same determinism argument, tight tolerance
//     (default 25%) — catches fewer-but-bigger allocation regressions
//     that allocs_per_op alone would miss.
//   - seconds_per_op: noisy on shared CI runners, so the tolerance is
//     loose (default 150%) — it only catches order-of-magnitude rot, not
//     jitter.
//   - handshakes_per_sec: throughput, higher is better; gated on the
//     same loose tolerance as seconds_per_op (a drop below
//     baseline/(1+tol) fails).
//
// One optional metric rides along: traffic_sessions_per_sec (the traffic
// plane's simulated-session throughput). It is gated on the loose
// tolerance when both documents carry it; a baseline that has it and a
// current run that lost it is a failure (the bench stopped measuring the
// traffic plane).
//
// The gate refuses to compare runs of different campaign shapes
// (list_size/days/workers/seed must match the baseline).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
)

type benchDoc struct {
	Benchmark        string  `json:"benchmark"`
	ListSize         int     `json:"list_size"`
	Days             int     `json:"days"`
	Workers          int     `json:"workers"`
	Seed             int64   `json:"seed"`
	AllocsPerOp      float64 `json:"allocs_per_op"`
	AllocBytesPerOp  float64 `json:"alloc_bytes_per_op"`
	SecondsPerOp     float64 `json:"seconds_per_op"`
	HandshakesPerSec float64 `json:"handshakes_per_sec"`
	// TrafficSessionsPerSec is optional: zero means the run predates the
	// traffic plane (or skipped it), and the gate only compares it when
	// both documents carry it.
	TrafficSessionsPerSec float64 `json:"traffic_sessions_per_sec"`
}

func load(path string) (*benchDoc, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var d benchDoc
	if err := json.Unmarshal(b, &d); err != nil {
		return nil, fmt.Errorf("%s: %v", path, err)
	}
	if d.AllocsPerOp <= 0 || d.SecondsPerOp <= 0 || d.AllocBytesPerOp <= 0 || d.HandshakesPerSec <= 0 {
		return nil, fmt.Errorf("%s: missing allocs_per_op/alloc_bytes_per_op/seconds_per_op/handshakes_per_sec", path)
	}
	return &d, nil
}

func main() {
	var (
		baselinePath = flag.String("baseline", "", "committed baseline bench JSON")
		currentPath  = flag.String("current", "", "freshly measured bench JSON")
		allocsTol    = flag.Float64("allocs-tol", 0.25, "allowed fractional allocs_per_op increase")
		secondsTol   = flag.Float64("seconds-tol", 1.50, "allowed fractional seconds_per_op increase")
	)
	flag.Parse()
	if *baselinePath == "" || *currentPath == "" {
		fmt.Fprintln(os.Stderr, "benchgate: -baseline and -current are required")
		os.Exit(2)
	}
	base, err := load(*baselinePath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: baseline: %v\n", err)
		os.Exit(2)
	}
	cur, err := load(*currentPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: current: %v\n", err)
		os.Exit(2)
	}
	if base.Benchmark != cur.Benchmark || base.ListSize != cur.ListSize ||
		base.Days != cur.Days || base.Workers != cur.Workers || base.Seed != cur.Seed {
		fmt.Fprintf(os.Stderr,
			"benchgate: shape mismatch: baseline %s %dx%d w%d seed %d vs current %s %dx%d w%d seed %d\n",
			base.Benchmark, base.ListSize, base.Days, base.Workers, base.Seed,
			cur.Benchmark, cur.ListSize, cur.Days, cur.Workers, cur.Seed)
		os.Exit(2)
	}

	fail := false
	check := func(name string, baseV, curV, tol float64) {
		ratio := curV/baseV - 1
		status := "ok"
		if ratio > tol {
			status = "REGRESSION"
			fail = true
		}
		fmt.Printf("%-18s baseline %14.4g  current %14.4g  delta %+7.1f%%  (tolerance +%.0f%%)  %s\n",
			name, baseV, curV, 100*ratio, 100*tol, status)
	}
	// Throughput is higher-is-better: gate on the inverse so the same
	// "ratio > tol fails" logic applies.
	checkDrop := func(name string, baseV, curV, tol float64) {
		ratio := baseV/curV - 1
		status := "ok"
		if ratio > tol {
			status = "REGRESSION"
			fail = true
		}
		fmt.Printf("%-18s baseline %14.4g  current %14.4g  drop %+7.1f%%  (tolerance +%.0f%%)  %s\n",
			name, baseV, curV, 100*ratio, 100*tol, status)
	}
	check("allocs_per_op", base.AllocsPerOp, cur.AllocsPerOp, *allocsTol)
	check("alloc_bytes_per_op", base.AllocBytesPerOp, cur.AllocBytesPerOp, *allocsTol)
	check("seconds_per_op", base.SecondsPerOp, cur.SecondsPerOp, *secondsTol)
	checkDrop("handshakes_per_sec", base.HandshakesPerSec, cur.HandshakesPerSec, *secondsTol)
	switch {
	case base.TrafficSessionsPerSec > 0 && cur.TrafficSessionsPerSec > 0:
		checkDrop("traffic_sessions/s", base.TrafficSessionsPerSec, cur.TrafficSessionsPerSec, *secondsTol)
	case base.TrafficSessionsPerSec > 0:
		fmt.Println("traffic_sessions/s  present in baseline but missing from current run  REGRESSION")
		fail = true
	}
	if fail {
		fmt.Println("benchgate: FAIL — performance regressed past tolerance")
		fmt.Println("benchgate: if the regression is intentional, refresh the committed baseline")
		os.Exit(1)
	}
	if cur.AllocsPerOp < base.AllocsPerOp*(1-*allocsTol) {
		fmt.Println("benchgate: note — allocs improved past tolerance; consider refreshing the baseline to lock it in")
	}
	fmt.Println("benchgate: PASS")
}
