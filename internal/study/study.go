// Package study orchestrates the paper's measurement campaign (§3) over
// the simulated population: daily two-connection ticket scans, daily
// key-exchange scans, session-lifetime probes in virtual time, and
// cross-domain resumption probes; the results land in a serializable
// Dataset from which every table and figure regenerates.
package study

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"math/bits"
	"os"
	"sort"
	"time"

	"tlsshortcuts/internal/cryptanalysis"
	"tlsshortcuts/internal/faults"
	"tlsshortcuts/internal/population"
	"tlsshortcuts/internal/scanner"
	"tlsshortcuts/internal/simclock"
	"tlsshortcuts/internal/telemetry"
	"tlsshortcuts/internal/traffic"
	"tlsshortcuts/internal/vulnwindow"
	"tlsshortcuts/internal/wire"
)

// Options configures a campaign.
type Options struct {
	ListSize int
	Days     int
	Seed     int64
	Workers  int
	Logf     func(format string, args ...interface{})

	// Faults, when non-nil and non-zero, compiles a deterministic fault
	// plan the simulated network consults on every dial, making the
	// campaign run against a lossy network. The plan's Days and Base
	// default to the campaign's.
	Faults *faults.Options

	// ProbeTimeout overrides the scanner's per-connection wall-clock
	// deadline (0 = scanner default, negative disables).
	ProbeTimeout time.Duration

	// Retries overrides the scanner's transient-failure retry budget
	// (0 = scanner default, negative disables).
	Retries int

	// Telemetry, when non-nil, collects the campaign's metrics: scanner
	// probe counters and latency histograms, simnet dial/fault/backend
	// counts, and — via the process-global registry installed for the
	// run's duration — the session/ticket/keyex collectors. Telemetry
	// observes, never perturbs: nil leaves every code path untouched,
	// and an enabled registry reproduces the same golden dataset hash
	// (TestTelemetryObservationallyInert pins both).
	Telemetry *telemetry.Registry

	// Trace, when non-nil, receives one JSONL telemetry.Span line per
	// scan phase (each lifetime pass, each scan day, the cross-domain
	// pass). Tracing without a Telemetry registry uses a private one
	// for span accounting; write errors are logged, never fatal.
	Trace io.Writer

	// Observer, when non-nil, receives one PhaseEvent at the start and
	// the end of every campaign phase (each lifetime pass, each scan
	// day, the cross-domain pass, the cryptanalysis pass). End events
	// carry the completed telemetry.Span plus per-phase failure-class,
	// fault-kind, and STEK-rotation counter deltas — the feed the obsv
	// flight recorder journals. Like Trace, observing without a
	// Telemetry registry uses a private one for delta accounting. An
	// observer that returns an error ABORTS the campaign (that is the
	// abort path the flight recorder finalizes journals through); a
	// journaling observer that must never fail the run returns nil and
	// records its write error internally.
	Observer CampaignObserver

	// Shard, when non-nil, restricts the campaign to one deterministic
	// slice of the domain list (see ShardSpec). The world is still built
	// in full — so ranks, operators, and per-domain server state are
	// identical to the monolithic run's — but only the shard's domains
	// are scanned. MergeDatasets recombines the shards' outputs into a
	// dataset byte-identical to the monolithic campaign's.
	Shard *ShardSpec

	// Traffic, when non-nil with positive Users, runs the browser-
	// realistic traffic plane alongside the campaign: stateful simulated
	// users driving real connections at the same population on the same
	// virtual clock, with results landing in Dataset.Traffic (including
	// the measured-exposure join against the campaign's §6 vulnerability
	// windows). The plane's Seed and Workers default to the campaign's,
	// and its user partition follows the campaign's Shard. Traffic is
	// observationally inert for the scanner: with it on, every other
	// dataset field is byte-identical to the traffic-off run.
	Traffic *traffic.Options

	// WeakCrypto appends the calibrated vulnerable operator profiles to
	// the population (see population.Options.WeakCrypto) and runs the
	// post-campaign cryptanalysis pass: tap-recorded captures, the
	// weak-STEK dictionary search, key-name/keystream probes, the weak-
	// prime audit, and the attacker replay measuring decryption yield,
	// all landing in Dataset.Crypt. Off by default; with it off the
	// dataset is byte-identical to the baseline golden.
	WeakCrypto bool
}

// CampaignObserver is the phase-lifecycle hook study.Run drives. The
// interface is satisfied structurally (obsv.Journal implements it
// without importing this package); the PhaseEvent payload lives in
// telemetry so both sides share one vocabulary.
type CampaignObserver interface {
	OnPhase(ev telemetry.PhaseEvent) error
}

// ShardSpec names one slice of a sharded campaign: shard Index of Count
// scans the domains at rank positions p with p % Count == Index. Every
// connection's entropy, fault decision, and backend choice is keyed on
// (domain, probe label) or on the domain's own dial sequence — never on
// global dial order — so a domain's observations are identical whether
// its shard runs alone or alongside the rest of the campaign.
type ShardSpec struct {
	Index int
	Count int
}

// Validate rejects out-of-range shard coordinates.
func (s *ShardSpec) Validate() error {
	if s.Count < 1 {
		return fmt.Errorf("study: shard count must be >= 1, got %d", s.Count)
	}
	if s.Index < 0 || s.Index >= s.Count {
		return fmt.Errorf("study: shard index %d out of range [0,%d)", s.Index, s.Count)
	}
	return nil
}

func (o *Options) logf(format string, args ...interface{}) {
	if o.Logf != nil {
		o.Logf(format, args...)
	}
}

// Snapshot is a day-zero support census for one mechanism.
type Snapshot struct {
	Scanned int // domains probed
	Trusted int // with a browser-trusted chain
	Support int // trusted and negotiated the mechanism
	Reuse2x int // same server value on two immediate connections

	// PairFailed counts supporting domains whose second (pair)
	// connection failed: those pairs are excluded from reuse
	// denominators rather than silently counted as "no reuse".
	PairFailed int `json:",omitempty"`
}

// FailureCount is one (scan, class) cell of the campaign failure table.
type FailureCount struct {
	Scan  string // which probe: ticket, ticket-pair, dhe, dhe-pair, ecdhe, ecdhe-pair, lifetime-id, lifetime-ticket
	Class string // faults.ErrClass of the final attempt
	Count int
}

// Dataset is everything a campaign measured, JSON-serializable so
// analysis (cmd/report) can rerun without the 9-week scan.
type Dataset struct {
	ListSize    int
	Days        int
	Seed        int64
	ScaleFactor float64

	TrustedCore []string
	Operators   map[string]string
	Ranks       map[string]int

	TicketSnapshot Snapshot
	DHESnapshot    Snapshot
	ECDHESnapshot  Snapshot

	// Per-domain, per-secret-ID bitmask of the days the secret was
	// observed (bit d = virtual day d; campaigns are capped at 64 days).
	STEKSpans  map[string]map[string]uint64
	DHESpans   map[string]map[string]uint64
	ECDHESpans map[string]map[string]uint64

	IDLifetime     []scanner.ProbeResult
	TicketLifetime []scanner.ProbeResult

	CacheGroups [][]string
	STEKGroups  [][]string
	DHGroups    [][]string
	DHSingleton int // reused DH values confined to a single domain

	// Lossy-network accounting. Every field below is empty on a
	// fault-free run and omitted from JSON, so clean datasets stay
	// byte-identical to pre-taxonomy ones (the golden hash proves it).

	// FaultPlan records the injected fault options, when any.
	FaultPlan *faults.Options `json:",omitempty"`
	// Failures aggregates failed scan connections by (scan, class),
	// sorted for stable serialization. Key-exchange first connections
	// count only transient classes: a forced-suite alert from a server
	// that does not speak the suite is a measurement, not a failure.
	Failures []FailureCount `json:",omitempty"`
	// MissedDays maps domain -> bitmask of virtual days on which its
	// daily ticket scan failed. The consistent core — the paper's §3
	// denominator — is the trusted core minus any domain with a bit set.
	MissedDays map[string]uint64 `json:",omitempty"`
	// XDStats records the cross-domain pass's denominators when any of
	// its connections failed.
	XDStats *scanner.XDStats `json:",omitempty"`

	// Crypt holds the cryptanalysis pass findings and the attacker
	// replay yield. Nil unless the campaign ran with WeakCrypto, so
	// baseline datasets serialize byte-identically to pre-cryptanalysis
	// ones (the golden hash proves it).
	Crypt *cryptanalysis.Findings `json:",omitempty"`

	// Traffic holds the traffic plane's measurements (per-policy
	// connection, chain, and per-domain volume tallies, plus the window
	// join). Nil unless the campaign ran with Traffic, so traffic-off
	// datasets serialize byte-identically to pre-traffic ones (the
	// golden hash proves it).
	Traffic *traffic.Results `json:",omitempty"`

	// Shard identifies which slice of the campaign this dataset covers;
	// nil for a monolithic run. MergeDatasets clears it, so a merged
	// dataset serializes byte-identically to the monolithic one.
	Shard *ShardSpec `json:",omitempty"`

	// Dials counts the TLS connections the campaign made. It is run
	// telemetry for benchmarks, not a measurement, so it stays out of the
	// serialized dataset (which must be byte-stable for a given seed).
	Dials uint64 `json:"-"`
}

// Save writes the dataset as JSON.
func (d *Dataset) Save(path string) error {
	b, err := json.Marshal(d)
	if err != nil {
		return err
	}
	return os.WriteFile(path, b, 0o644)
}

// Load reads a dataset written by Save.
func Load(path string) (*Dataset, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	ds := &Dataset{}
	if err := json.Unmarshal(b, ds); err != nil {
		return nil, fmt.Errorf("study: bad dataset %s: %w", path, err)
	}
	return ds, nil
}

// Run executes a full campaign.
func Run(o Options) (*Dataset, error) {
	if o.Days < 1 || o.Days > 64 {
		return nil, fmt.Errorf("study: Days must be in [1,64], got %d", o.Days)
	}
	// The session/ticket/keyex collectors report through the process
	// global (they have no per-campaign injection point), so install the
	// campaign's registry for the run's duration. A trace or observer
	// without a registry still needs one for span and delta accounting —
	// a private one, installed globally all the same so the deep-layer
	// counters (STEK rotations above all) reach the flight recorder.
	trafficOn := o.Traffic != nil && o.Traffic.Users > 0
	reg := o.Telemetry
	if reg == nil && (o.Trace != nil || o.Observer != nil || trafficOn) {
		reg = telemetry.NewRegistry()
	}
	if reg != nil {
		defer telemetry.SetGlobal(reg)()
	}
	world, err := population.Build(population.Options{ListSize: o.ListSize, Seed: o.Seed, WeakCrypto: o.WeakCrypto})
	if err != nil {
		return nil, err
	}
	clock := world.Clock.(*simclock.Manual)
	start := clock.Now()
	scan := &scanner.Scanner{
		Dialer: world.Net, Roots: world.Roots, Clock: clock, Workers: o.Workers,
		Seed:      []byte(fmt.Sprintf("study|%d", o.Seed)),
		Timeout:   o.ProbeTimeout,
		Retries:   o.Retries,
		Telemetry: reg,
	}
	if reg != nil {
		world.Net.SetTelemetry(reg)
	}
	sp := newSpanner(o, reg, clock)

	var eng *traffic.Engine
	if trafficOn {
		topts := *o.Traffic
		if topts.Seed == 0 {
			topts.Seed = o.Seed
		}
		if topts.Workers == 0 {
			topts.Workers = o.Workers
		}
		if o.Shard != nil {
			topts.ShardIndex, topts.ShardCount = o.Shard.Index, o.Shard.Count
		}
		eng, err = traffic.NewEngine(world, topts, reg)
		if err != nil {
			return nil, err
		}
		o.logf("traffic plane: %d users, mean %.1f visits/day", topts.Users, topts.MeanVisits)
	}

	core := world.TrustedCoreDomains()
	all := allByRank(world)
	// A sharded run scans only its round-robin slice of the (full,
	// identically built) world; everything downstream of these two lists
	// is per-domain, so the slice's results match the monolithic run's.
	scanAll, scanCore := all, core
	if o.Shard != nil {
		if err := o.Shard.Validate(); err != nil {
			return nil, err
		}
		scanAll = population.Shard(all, o.Shard.Index, o.Shard.Count)
		member := make(map[string]bool, len(scanAll))
		for _, d := range scanAll {
			member[d] = true
		}
		kept := make([]string, 0, len(core)/o.Shard.Count+1)
		for _, d := range core {
			if member[d] {
				kept = append(kept, d)
			}
		}
		scanCore = kept
		o.logf("shard %d/%d: %d of %d domains (%d of %d core)",
			o.Shard.Index, o.Shard.Count, len(scanAll), len(all), len(scanCore), len(core))
	}
	ds := &Dataset{
		ListSize:    o.ListSize,
		Days:        o.Days,
		Seed:        o.Seed,
		ScaleFactor: world.ScaleFactor,
		TrustedCore: core,
		Operators:   make(map[string]string, len(world.Domains)),
		Ranks:       make(map[string]int, len(world.Domains)),
		STEKSpans:   make(map[string]map[string]uint64),
		DHESpans:    make(map[string]map[string]uint64),
		ECDHESpans:  make(map[string]map[string]uint64),
	}
	for name, d := range world.Domains {
		ds.Operators[name] = d.Operator
		ds.Ranks[name] = d.Rank
	}
	if o.Shard != nil {
		spec := *o.Shard
		ds.Shard = &spec
	}

	if !o.Faults.Zero() {
		fo := *o.Faults
		if fo.Days <= 0 {
			fo.Days = o.Days
		}
		if fo.Base.IsZero() {
			fo.Base = start
		}
		if fo.ChurnMaxDays <= 0 {
			fo.ChurnMaxDays = 3
		}
		world.Net.SetFaults(faults.NewPlan(fo, clock))
		ds.FaultPlan = &fo
		o.logf("fault plan active: refuse %.3f reset %.3f stall %.3f flap %.3f churn %.3f",
			fo.Refuse, fo.Reset, fo.Stall, fo.Flap, fo.Churn)
	}

	agg := newAggregator(ds)

	// Session-lifetime probes (Figures 1-2) run first, in lockstep
	// virtual time from the campaign start.
	o.logf("lifetime probes: session IDs (%d domains)", len(scanCore))
	if err := sp.begin("lifetime-id", -1, len(scanCore)); err != nil {
		return nil, err
	}
	ds.IDLifetime = scan.LifetimeProbe(scanCore, false, 15*time.Minute, 30*time.Hour)
	if err := sp.end("lifetime-id", -1, len(scanCore), probeFails(ds.IDLifetime), 0); err != nil {
		return nil, err
	}
	o.logf("lifetime probes: tickets")
	if err := sp.begin("lifetime-ticket", -1, len(scanCore)); err != nil {
		return nil, err
	}
	ds.TicketLifetime = scan.LifetimeProbe(scanCore, true, time.Hour, 36*time.Hour)
	if err := sp.end("lifetime-ticket", -1, len(scanCore), probeFails(ds.TicketLifetime), 0); err != nil {
		return nil, err
	}
	agg.foldLifetime("lifetime-id", ds.IDLifetime)
	agg.foldLifetime("lifetime-ticket", ds.TicketLifetime)

	// Daily scans, folded into per-domain aggregates as each day
	// completes. The three observation buffers are reused across the
	// whole campaign, so the daily loop's resident memory is O(domains)
	// regardless of Days.
	var tBuf, dBuf, eBuf []scanner.Observation
	for day := 0; day < o.Days; day++ {
		clock.Set(start.Add(time.Duration(day) * 24 * time.Hour))
		if err := sp.begin("day", day, len(scanAll)); err != nil {
			return nil, err
		}
		tBuf = scan.DailyInto(tBuf, scanAll, day, nil, true)
		dBuf = scan.DailyInto(dBuf, scanCore, day, []uint16{wire.SuiteDHE}, false)
		eBuf = scan.DailyInto(eBuf, scanCore, day, []uint16{wire.SuiteECDHE}, false)
		if day == 0 {
			ds.TicketSnapshot = ticketSnapshot(tBuf)
			ds.DHESnapshot = kexSnapshot(dBuf, wire.KexDHE)
			ds.ECDHESnapshot = kexSnapshot(eBuf, wire.KexECDHE)
		}
		dayFails, pairFails := agg.foldTicketDay(tBuf, day)
		df, pf := agg.foldKexDay(dBuf, "dhe", wire.KexDHE, ds.DHESpans, day)
		dayFails, pairFails = dayFails+df, pairFails+pf
		df, pf = agg.foldKexDay(eBuf, "ecdhe", wire.KexECDHE, ds.ECDHESpans, day)
		dayFails, pairFails = dayFails+df, pairFails+pf
		reg.Counter(telemetry.CounterDaysCompleted).Inc()
		if err := sp.end("day", day, len(scanAll), dayFails, pairFails); err != nil {
			return nil, err
		}
		o.logf("day %d/%d scanned", day+1, o.Days)
		if eng != nil {
			// The traffic day runs after the scan day at the same virtual
			// day start; RunDay walks the clock through the day's hour
			// slots and restores the day-start instant before returning,
			// so the next phase sees the same clock as a traffic-off run.
			if err := sp.begin("traffic-day", day, 0); err != nil {
				return nil, err
			}
			tv, tf := eng.RunDay(day)
			if err := sp.end("traffic-day", day, tv, tf, 0); err != nil {
				return nil, err
			}
			o.logf("day %d/%d traffic: %d visits, %d failed", day+1, o.Days, tv, tf)
		}
	}
	agg.finish()

	// Grouping passes (§5). A shard initiates only from its own core
	// slice but probes candidates against the FULL core, so every edge
	// whose initiator the shard owns is discovered exactly as in the
	// monolithic run.
	o.logf("cross-domain cache probes (budget 5+5)")
	if err := sp.begin("cross-domain", -1, len(scanCore)); err != nil {
		return nil, err
	}
	uf, xd := scan.CrossDomainGroupsIn(scanCore, core, world.Net, 5, 5)
	if err := sp.end("cross-domain", -1, len(scanCore), xd.InitFailed, xd.ProbeFailed); err != nil {
		return nil, err
	}
	if xd.InitFailed > 0 || xd.ProbeFailed > 0 {
		ds.XDStats = &xd
		o.logf("cross-domain: %d/%d sessioned, %d init + %d probe connections failed",
			xd.Sessioned, xd.Probed, xd.InitFailed, xd.ProbeFailed)
	} else if o.Shard != nil {
		// A shard always carries its denominators: a clean shard's
		// Probed/Sessioned counts are needed to reconstruct the
		// monolithic XDStats if any sibling shard saw failures.
		// MergeDatasets drops the merged stats when no shard failed, so
		// the merged JSON still matches the monolithic run's.
		ds.XDStats = &xd
	}
	ds.CacheGroups = multiSets(uf)
	ds.STEKGroups = secretGroups(ds.STEKSpans)
	ds.DHGroups, ds.DHSingleton = dhGroups(ds.DHESpans, ds.ECDHESpans)

	// Weak-crypto cryptanalysis pass (after the campaign proper: every
	// connection's entropy is keyed on (domain, probe label), so the
	// extra captures cannot perturb any observation above).
	if o.WeakCrypto {
		o.logf("cryptanalysis pass: capture, crack, replay (%d domains)", len(scanCore))
		if err := sp.begin("cryptanalysis", -1, len(scanCore)); err != nil {
			return nil, err
		}
		ds.Crypt = runCryptanalysis(scan, scanCore)
		if err := sp.end("cryptanalysis", -1, len(scanCore), 0, 0); err != nil {
			return nil, err
		}
		o.logf("cryptanalysis: %d/%d captured conversations decrypted (%d domains, %d bytes)",
			ds.Crypt.Yield.Connections, ds.Crypt.Yield.Attempted, ds.Crypt.Yield.Domains, ds.Crypt.Yield.Bytes)
	}
	if eng != nil {
		ds.Traffic = eng.Finalize()
		joinTraffic(ds)
		j := ds.Traffic.Join
		o.logf("traffic: %d connections, %d (%.1f%%) inside a vulnerability window",
			j.Connections.Total, j.Connections.InWindow, 100*j.Connections.Frac(j.Connections.InWindow))
	}
	ds.Dials = world.Net.DialCount()
	return ds, nil
}

// joinTraffic (re)computes the traffic plane's measured-exposure join
// against the dataset's own §6 vulnerability windows. Run after a
// campaign and again after a shard merge: a shard's join reflects only
// the windows its slice observed, so the merged join must be rebuilt
// from the merged windows (joining is pure, so the result equals the
// monolithic run's).
func joinTraffic(ds *Dataset) {
	if ds.Traffic == nil {
		return
	}
	r := BuildReport(ds)
	traffic.ComputeJoin(ds.Traffic, vulnwindow.Combine(r.Exposures))
}

// spanner emits one telemetry.Span JSONL line per scan phase, deriving
// per-phase handshake and retry counts from registry deltas, and drives
// the campaign observer's phase lifecycle. A nil *spanner no-ops, so
// Run calls begin/end unconditionally.
type spanner struct {
	w       io.Writer
	obs     CampaignObserver
	reg     *telemetry.Registry
	workers int
	days    int
	clock   simclock.Clock
	logf    func(format string, args ...interface{})

	start      time.Time // wall clock at phase start
	handshakes uint64
	retries    uint64
	busy       uint64
	prev       *telemetry.Snapshot // observer delta base, taken in begin
}

// newSpanner returns nil — phase accounting off — unless a trace or an
// observer is attached.
func newSpanner(o Options, reg *telemetry.Registry, clock simclock.Clock) *spanner {
	if o.Trace == nil && o.Observer == nil {
		return nil
	}
	workers := o.Workers
	if workers <= 0 {
		workers = 8 // scanner's pool default
	}
	return &spanner{w: o.Trace, obs: o.Observer, reg: reg, workers: workers, days: o.Days, clock: clock, logf: o.Logf}
}

// begin snapshots the counters the next end() will diff against and
// notifies the observer the phase opened. An observer error aborts the
// campaign.
func (sp *spanner) begin(phase string, day, domains int) error {
	if sp == nil {
		return nil
	}
	sp.start = time.Now()
	sp.handshakes = sp.reg.Value(telemetry.CounterHandshakesStarted)
	sp.retries = sp.reg.Value(telemetry.CounterRetries)
	sp.busy = sp.reg.Value(telemetry.CounterBusyNanos)
	if sp.obs == nil {
		return nil
	}
	sp.prev = sp.reg.Snapshot()
	return sp.obs.OnPhase(telemetry.PhaseEvent{
		Start: true,
		Span: telemetry.Span{
			Phase:       phase,
			Day:         day,
			Days:        sp.days,
			VirtualDate: sp.clock.Now().UTC().Format(time.RFC3339),
			Domains:     domains,
			Workers:     sp.workers,
		},
	})
}

// end writes the phase's span and delivers the observer's end event
// with per-phase counter deltas. Trace write errors are logged and
// swallowed — telemetry must never fail a campaign — but an observer
// error aborts it (that is the flight recorder's abort path).
func (sp *spanner) end(phase string, day, domains, failures, pairFails int) error {
	if sp == nil {
		return nil
	}
	wall := time.Since(sp.start)
	span := telemetry.Span{
		Phase:        phase,
		Day:          day,
		Days:         sp.days,
		VirtualDate:  sp.clock.Now().UTC().Format(time.RFC3339),
		Domains:      domains,
		Failures:     failures,
		PairFailures: pairFails,
		Handshakes:   sp.reg.Value(telemetry.CounterHandshakesStarted) - sp.handshakes,
		Retries:      sp.reg.Value(telemetry.CounterRetries) - sp.retries,
		WallNanos:    int64(wall),
		Workers:      sp.workers,
	}
	if wall > 0 {
		busy := sp.reg.Value(telemetry.CounterBusyNanos) - sp.busy
		span.Utilization = float64(busy) / (float64(wall) * float64(sp.workers))
	}
	if sp.w != nil {
		if err := span.Encode(sp.w); err != nil && sp.logf != nil {
			sp.logf("telemetry: trace write failed: %v", err)
		}
	}
	if sp.obs == nil {
		return nil
	}
	cur := sp.reg.Snapshot()
	ev := telemetry.PhaseEvent{
		Span:           span,
		FailureClasses: counterDeltas(sp.prev, cur, telemetry.CounterErrorPrefix),
		Faults:         counterDeltas(sp.prev, cur, telemetry.CounterFaultPrefix),
		STEKRotations:  cur.Counters[telemetry.CounterSTEKRotations] - sp.prev.Counters[telemetry.CounterSTEKRotations],
	}
	sp.prev = nil
	return sp.obs.OnPhase(ev)
}

// counterDeltas subtracts prev from cur over one counter-name prefix,
// keeping only the suffixes that moved during the phase.
func counterDeltas(prev, cur *telemetry.Snapshot, prefix string) map[string]uint64 {
	curP := cur.PrefixCounters(prefix)
	if len(curP) == 0 {
		return nil
	}
	prevP := prev.PrefixCounters(prefix)
	var out map[string]uint64
	for k, v := range curP {
		if d := v - prevP[k]; d > 0 {
			if out == nil {
				out = make(map[string]uint64)
			}
			out[k] = d
		}
	}
	return out
}

// probeFails counts lifetime probes whose initial handshake failed for a
// network reason.
func probeFails(prs []scanner.ProbeResult) int {
	n := 0
	for _, pr := range prs {
		if pr.ErrClass != faults.ClassNone {
			n++
		}
	}
	return n
}

func allByRank(w *population.World) []string {
	type dr struct {
		name string
		rank int
	}
	list := make([]dr, 0, len(w.Domains))
	for name, d := range w.Domains {
		list = append(list, dr{name, d.Rank})
	}
	sort.Slice(list, func(i, j int) bool { return list[i].rank < list[j].rank })
	out := make([]string, len(list))
	for i, d := range list {
		out[i] = d.name
	}
	return out
}

func mark(spans map[string]map[string]uint64, domain, id string, day int) {
	m := spans[domain]
	if m == nil {
		m = make(map[string]uint64)
		spans[domain] = m
	}
	m[id] |= 1 << uint(day)
}

// missDay records that the domain's daily ticket scan failed on day —
// the attendance record the consistent core is derived from.
func missDay(ds *Dataset, domain string, day int) {
	if ds.MissedDays == nil {
		ds.MissedDays = make(map[string]uint64)
	}
	ds.MissedDays[domain] |= 1 << uint(day)
}

// valueID compresses a server key-exchange value to a short stable ID.
func valueID(v []byte) string {
	h := sha256.Sum256(v)
	return hex.EncodeToString(h[:8])
}

func ticketSnapshot(obs []scanner.Observation) Snapshot {
	s := Snapshot{Scanned: len(obs)}
	for _, ob := range obs {
		if !ob.OK || !ob.Trusted {
			continue
		}
		s.Trusted++
		if ob.TicketIssued {
			s.Support++
			if ob.ErrClass2 != faults.ClassNone {
				// The pair connection failed: the domain is excluded
				// from the STEK-repeat denominator, not scored as
				// "fresh key on every connection".
				s.PairFailed++
			}
		}
		if len(ob.STEKID) > 0 {
			s.Reuse2x++
		}
	}
	return s
}

func kexSnapshot(obs []scanner.Observation, kex wire.Kex) Snapshot {
	s := Snapshot{Scanned: len(obs), Trusted: len(obs)}
	for _, ob := range obs {
		if !ob.OK || ob.Kex != kex {
			continue
		}
		s.Support++
		if ob.ErrClass2 != faults.ClassNone {
			s.PairFailed++
		} else if len(ob.KEXValue) > 0 && bytes.Equal(ob.KEXValue, ob.KEXValue2) {
			s.Reuse2x++
		}
	}
	return s
}

func multiSets(uf *scanner.UnionFind) [][]string {
	var out [][]string
	for _, g := range uf.Sets() {
		if len(g) > 1 {
			out = append(out, g)
		}
	}
	return out
}

// secretGroups unions domains that were ever observed using the same
// secret ID (Table 6's STEK groups).
func secretGroups(spans map[string]map[string]uint64) [][]string {
	uf := scanner.NewUnionFind()
	first := make(map[string]string)
	for domain, ids := range spans {
		for id := range ids {
			if prev, ok := first[id]; ok {
				uf.Union(prev, domain)
			} else {
				first[id] = domain
				uf.Find(domain)
			}
		}
	}
	return multiSets(uf)
}

// dhGroups unions domains sharing a reused key-exchange value and counts
// reused values confined to one domain (Table 7's singletons).
func dhGroups(spanSets ...map[string]map[string]uint64) ([][]string, int) {
	uf := scanner.NewUnionFind()
	domainsByID := make(map[string]map[string]bool)
	reused := make(map[string]bool)
	for _, spans := range spanSets {
		for domain, ids := range spans {
			for id, b := range ids {
				m := domainsByID[id]
				if m == nil {
					m = make(map[string]bool)
					domainsByID[id] = m
				}
				m[domain] = true
				if bits.OnesCount64(b) >= 2 {
					reused[id] = true
				}
			}
		}
	}
	singles := 0
	for id, domains := range domainsByID {
		if len(domains) > 1 {
			var prev string
			for d := range domains {
				if prev != "" {
					uf.Union(prev, d)
				}
				prev = d
			}
		} else if reused[id] {
			singles++
		}
	}
	return multiSets(uf), singles
}
