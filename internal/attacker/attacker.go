// Package attacker is the end-to-end harm proof of §7: a passive tap
// records a TLS conversation off the wire; later — when server secret
// state leaks — the recording is parsed and retrospectively decrypted.
// Captures persist in a simple TLSCAP01 file format so collections can
// wait for the keys to arrive (the paper's ex post facto workflow).
package attacker

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"os"
	"sync"

	"tlsshortcuts/internal/prf"
	"tlsshortcuts/internal/record"
	"tlsshortcuts/internal/ticket"
	"tlsshortcuts/internal/wire"
)

// Segment is a contiguous run of bytes in one direction.
type Segment struct {
	FromClient bool
	Data       []byte
}

// Conversation is an ordered passive recording of both directions.
type Conversation struct {
	Segments []Segment
}

// Tap wraps a client-side net.Conn and records everything that crosses
// it. It is itself a net.Conn, so it drops into tlsclient.Handshake.
type Tap struct {
	net.Conn
	mu   sync.Mutex
	conv Conversation
}

// NewTap wraps conn.
func NewTap(conn net.Conn) *Tap { return &Tap{Conn: conn} }

func (t *Tap) record(fromClient bool, b []byte) {
	t.mu.Lock()
	defer t.mu.Unlock()
	segs := t.conv.Segments
	if n := len(segs); n > 0 && segs[n-1].FromClient == fromClient {
		segs[n-1].Data = append(segs[n-1].Data, b...)
		t.conv.Segments = segs
		return
	}
	t.conv.Segments = append(segs, Segment{FromClient: fromClient, Data: append([]byte(nil), b...)})
}

func (t *Tap) Read(p []byte) (int, error) {
	n, err := t.Conn.Read(p)
	if n > 0 {
		t.record(false, p[:n])
	}
	return n, err
}

func (t *Tap) Write(p []byte) (int, error) {
	n, err := t.Conn.Write(p)
	if n > 0 {
		t.record(true, p[:n])
	}
	return n, err
}

// Conversation returns a deep copy of the recording so far. The snapshot
// shares nothing with the live tap, so it can be parsed (or saved) while
// the wrapped connection keeps flowing.
func (t *Tap) Conversation() *Conversation {
	t.mu.Lock()
	defer t.mu.Unlock()
	c := &Conversation{}
	if len(t.conv.Segments) > 0 {
		c.Segments = make([]Segment, len(t.conv.Segments))
		for i, s := range t.conv.Segments {
			c.Segments[i] = Segment{FromClient: s.FromClient, Data: append([]byte(nil), s.Data...)}
		}
	}
	return c
}

// ---- TLSCAP01 persistence ----

var capMagic = []byte("TLSCAP01")

// BadDirectionError reports a TLSCAP01 segment header whose direction
// byte is neither 0 (server-to-client) nor 1 (client-to-server). A
// corrupted capture must fail loudly: silently folding unknown bytes
// into one direction produced plausible-looking garbage transcripts.
type BadDirectionError struct {
	Offset int  // byte offset of the direction byte within the blob
	Dir    byte // the invalid value found there
}

func (e *BadDirectionError) Error() string {
	return fmt.Sprintf("attacker: invalid direction byte 0x%02x at offset %d", e.Dir, e.Offset)
}

// Save serializes the conversation.
func (c *Conversation) Save() []byte {
	out := append([]byte(nil), capMagic...)
	for _, s := range c.Segments {
		dir := byte(0)
		if s.FromClient {
			dir = 1
		}
		out = append(out, dir)
		out = binary.BigEndian.AppendUint32(out, uint32(len(s.Data)))
		out = append(out, s.Data...)
	}
	return out
}

// SaveFile writes the conversation to path.
func (c *Conversation) SaveFile(path string) error {
	return os.WriteFile(path, c.Save(), 0o644)
}

// Load parses a TLSCAP01 blob.
func Load(b []byte) (*Conversation, error) {
	if !bytes.HasPrefix(b, capMagic) {
		return nil, errors.New("attacker: not a TLSCAP01 capture")
	}
	off := len(capMagic)
	b = b[len(capMagic):]
	c := &Conversation{}
	for len(b) > 0 {
		if len(b) < 5 {
			return nil, errors.New("attacker: truncated capture")
		}
		if dir := b[0]; dir > 1 {
			return nil, &BadDirectionError{Offset: off, Dir: dir}
		}
		n := int(binary.BigEndian.Uint32(b[1:5]))
		if len(b) < 5+n {
			return nil, errors.New("attacker: truncated capture segment")
		}
		c.Segments = append(c.Segments, Segment{FromClient: b[0] == 1, Data: append([]byte(nil), b[5:5+n]...)})
		b = b[5+n:]
		off += 5 + n
	}
	return c, nil
}

// LoadFile reads a capture written by SaveFile.
func LoadFile(path string) (*Conversation, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return Load(b)
}

// ---- parsing ----

// EncRecord is one protected record from the recording.
type EncRecord struct {
	FromClient bool
	Type       uint8
	Payload    []byte // explicit nonce || ciphertext || tag
}

// Recovered is the parsed view of a conversation: everything a passive
// observer knows before any key material leaks.
type Recovered struct {
	Suite         uint16
	ClientRandom  []byte
	ServerRandom  []byte
	SessionID     []byte
	Resumed       bool // abbreviated handshake (no Certificate seen)
	OfferedTicket []byte
	IssuedTicket  []byte
	DHPrime       []byte // FFDH modulus from the ServerKeyExchange, if DHE
	Encrypted     []EncRecord
}

// Message is one decrypted application-data record.
type Message struct {
	FromClient bool
	Plain      []byte
}

// Parse reconstructs the handshake transcript and the protected records
// from a recording.
func Parse(conv *Conversation) (*Recovered, error) {
	rec := &Recovered{}
	sawCert := false
	for _, dir := range []bool{true, false} {
		var stream []byte
		for _, s := range conv.Segments {
			if s.FromClient == dir {
				stream = append(stream, s.Data...)
			}
		}
		armed := false
		var hsBuf []byte
		for len(stream) >= 5 {
			typ := stream[0]
			n := int(binary.BigEndian.Uint16(stream[3:5]))
			if len(stream) < 5+n {
				break // trailing partial record
			}
			payload := stream[5 : 5+n]
			stream = stream[5+n:]
			switch {
			case typ == record.TypeChangeCipherSpec:
				armed = true
			case armed:
				rec.Encrypted = append(rec.Encrypted, EncRecord{FromClient: dir, Type: typ, Payload: append([]byte(nil), payload...)})
			case typ == record.TypeHandshake:
				hsBuf = append(hsBuf, payload...)
			}
		}
		msgs, err := wire.ParseMsgs(hsBuf)
		if err != nil {
			return nil, fmt.Errorf("attacker: handshake parse: %w", err)
		}
		for _, m := range msgs {
			switch m.Type {
			case wire.TypeClientHello:
				ch, err := wire.ParseClientHello(m.Body)
				if err != nil {
					return nil, err
				}
				rec.ClientRandom = ch.Random[:]
				rec.OfferedTicket = ch.Ticket
			case wire.TypeServerHello:
				sh, err := wire.ParseServerHello(m.Body)
				if err != nil {
					return nil, err
				}
				rec.ServerRandom = sh.Random[:]
				rec.SessionID = sh.SessionID
				rec.Suite = sh.Suite
			case wire.TypeCertificate:
				sawCert = true
			case wire.TypeServerKeyExchange:
				// The ServerHello precedes the SKE in the same direction,
				// so rec.Suite is already populated here.
				if wire.SuiteKex(rec.Suite) == wire.KexDHE {
					ske, err := wire.ParseSKE(wire.KexDHE, m.Body)
					if err != nil {
						return nil, err
					}
					rec.DHPrime = append([]byte(nil), ske.P...)
				}
			case wire.TypeNewSessionTicket:
				nst, err := wire.ParseNewSessionTicket(m.Body)
				if err != nil {
					return nil, err
				}
				rec.IssuedTicket = nst.Ticket
			}
		}
	}
	if rec.ClientRandom == nil || rec.ServerRandom == nil {
		return nil, errors.New("attacker: capture missing hello exchange")
	}
	rec.Resumed = !sawCert
	return rec, nil
}

// MasterFromSTEK opens the conversation's ticket with stolen STEKs and
// returns the recovered 48-byte master secret. The issued ticket seals
// this very connection's state; the offered ticket (on resumption) seals
// the same master under an earlier key.
func (r *Recovered) MasterFromSTEK(keys ...*ticket.STEK) ([]byte, error) {
	for _, tkt := range [][]byte{r.IssuedTicket, r.OfferedTicket} {
		if len(tkt) == 0 {
			continue
		}
		for _, k := range keys {
			if st := k.Open(tkt); st != nil {
				return append([]byte(nil), st.MasterSecret[:]...), nil
			}
		}
	}
	return nil, errors.New("attacker: no supplied STEK opens the captured tickets")
}

// Decrypt derives the record keys from the master secret and the captured
// hello randoms, then decrypts every protected application-data record.
func (r *Recovered) Decrypt(master []byte) ([]Message, error) {
	if len(master) != 48 {
		return nil, fmt.Errorf("attacker: master secret must be 48 bytes, got %d", len(master))
	}
	kb := prf.KeyBlock(master, r.ServerRandom, r.ClientRandom, 40)
	cliAEAD, err := record.NewAEAD(kb[0:16])
	if err != nil {
		return nil, err
	}
	srvAEAD, err := record.NewAEAD(kb[16:32])
	if err != nil {
		return nil, err
	}
	var out []Message
	for _, er := range r.Encrypted {
		aead, salt := srvAEAD, kb[36:40]
		if er.FromClient {
			aead, salt = cliAEAD, kb[32:36]
		}
		plain, err := record.OpenPayload(aead, salt, er.Type, er.Payload)
		if err != nil {
			return nil, fmt.Errorf("attacker: record decrypt failed: %w", err)
		}
		if er.Type == record.TypeAppData {
			out = append(out, Message{FromClient: er.FromClient, Plain: plain})
		}
	}
	return out, nil
}
