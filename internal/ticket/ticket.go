// Package ticket implements RFC 5077 session tickets in the three wire
// formats the paper encountered — the RFC's recommended layout (16-byte
// key name), mbedTLS's 4-byte key name, and an SChannel-style wrapped
// format — plus the STEK managers (static, epoch-rotating with a
// previous-key acceptance window) whose rotation policies set the
// vulnerability windows of §6.
package ticket

import (
	"bytes"
	"crypto/aes"
	"crypto/cipher"
	"crypto/hmac"
	"crypto/sha256"
	"encoding/binary"
	"hash"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"tlsshortcuts/internal/session"
	"tlsshortcuts/internal/telemetry"
)

// countOpen records a ticket-resumption decrypt outcome on the process
// registry. Telemetry observes, never perturbs: with no registry
// installed this is a single atomic load and branch.
func countOpen(ok bool) {
	r := telemetry.Global()
	if r == nil {
		return
	}
	if ok {
		r.Counter("ticket/open_ok").Inc()
	} else {
		r.Counter("ticket/open_miss").Inc()
	}
}

// Format is a ticket wire format.
type Format int

const (
	FormatRFC5077  Format = iota // 16-byte key_name | IV | enc | HMAC
	FormatMbedTLS                // 4-byte key_name  | IV | enc | HMAC
	FormatSChannel               // 4-byte magic | 16-byte key GUID | IV | enc | HMAC
)

func (f Format) String() string {
	switch f {
	case FormatMbedTLS:
		return "mbedtls"
	case FormatSChannel:
		return "schannel"
	default:
		return "rfc5077"
	}
}

// nameLen is the key-name length on the wire for the format.
func (f Format) nameLen() int {
	if f == FormatMbedTLS {
		return 4
	}
	return 16
}

var schannelMagic = []byte{0x53, 0x43, 0x48, 0x31} // "SCH1"

// headerLen is the byte count preceding the IV for the format.
func headerLen(f Format) int {
	if f == FormatSChannel {
		return len(schannelMagic) + 16
	}
	return f.nameLen()
}

// sealedWireLen is the fixed on-wire length of any ticket the format
// seals: session states serialize to one known size, so the length alone
// separates the formats (130 bytes RFC 5077, 118 mbedTLS, 134 SChannel).
func sealedWireLen(f Format) int {
	return headerLen(f) + aes.BlockSize + 2 + paddedStateLen + sha256.Size
}

// FormatOf infers the wire format of a sealed ticket. The SChannel
// wrapper magic is definitive; RFC 5077 and mbedTLS are separated by the
// fixed sealed length their key-name widths imply.
func FormatOf(tkt []byte) (Format, bool) {
	if bytes.HasPrefix(tkt, schannelMagic) {
		if len(tkt) == sealedWireLen(FormatSChannel) {
			return FormatSChannel, true
		}
		return 0, false
	}
	switch len(tkt) {
	case sealedWireLen(FormatRFC5077):
		return FormatRFC5077, true
	case sealedWireLen(FormatMbedTLS):
		return FormatMbedTLS, true
	}
	return 0, false
}

// KeyName returns the format-aware key-name bytes of a sealed ticket
// (the key GUID for SChannel), or nil when the layout is unrecognized.
// Unlike ExtractKeyID it never over-reads a 4-byte mbedTLS name into the
// IV, so it is safe to index campaign-wide.
func KeyName(tkt []byte) []byte {
	f, ok := FormatOf(tkt)
	if !ok {
		return nil
	}
	if f == FormatSChannel {
		return tkt[len(schannelMagic):headerLen(f)]
	}
	return tkt[:f.nameLen()]
}

// IVOf returns the CBC initialization vector of a sealed ticket, or nil
// when the layout is unrecognized. A repeated IV under one key name is
// the keystream-reuse signal the cryptanalysis probes look for.
func IVOf(tkt []byte) []byte {
	f, ok := FormatOf(tkt)
	if !ok {
		return nil
	}
	h := headerLen(f)
	return tkt[h : h+aes.BlockSize]
}

// STEK is a session-ticket encryption key: the key name (format-specific
// length), an AES-128-CBC encryption key, and an HMAC-SHA256 key.
type STEK struct {
	Format Format
	Name   []byte
	AESKey [16]byte
	MACKey [32]byte

	// WeakIV, when set before the key's first use, makes every seal
	// derive its CBC IV deterministically from the key instead of drawing
	// it from rand — modeling the fixed-IV deployments behind the AWS
	// keystream-reuse flaw. Identical states then seal to byte-identical
	// tickets, which is exactly what the cryptanalysis probes detect.
	WeakIV bool

	// Lazily-built derived state: the expanded AES block cipher and the
	// wire header are fixed per key, and MAC instances are pooled, so the
	// scanner's thousands of opens per key skip the per-call setup.
	initOnce  sync.Once
	block     cipher.Block
	hdr       []byte
	weakIV    [aes.BlockSize]byte
	macPool   sync.Pool
	plainPool sync.Pool // *[]byte decrypt scratch for OpenInto
}

func (k *STEK) init() {
	k.initOnce.Do(func() {
		b, err := aes.NewCipher(k.AESKey[:])
		if err != nil {
			panic("ticket: bad AES key: " + err.Error()) // unreachable: key is 16 bytes
		}
		k.block = b
		k.hdr = k.header()
		if k.WeakIV {
			iv := sha256.Sum256(append([]byte("stek-weak-iv:"), k.AESKey[:]...))
			copy(k.weakIV[:], iv[:aes.BlockSize])
		}
	})
}

// macSum appends HMAC-SHA256(MACKey, body) to dst using a pooled MAC.
func (k *STEK) macSum(dst, body []byte) []byte {
	h, _ := k.macPool.Get().(hash.Hash)
	if h == nil {
		h = hmac.New(sha256.New, k.MACKey[:])
	}
	h.Reset()
	h.Write(body)
	dst = h.Sum(dst)
	k.macPool.Put(h)
	return dst
}

// Derive deterministically builds a STEK from seed material. Two servers
// deriving from the same seed share the key — the mechanism behind the
// cross-domain STEK groups of §5.2.
func Derive(seed []byte, f Format) *STEK {
	k := &STEK{Format: f}
	name := sha256.Sum256(append([]byte("stek-name:"), seed...))
	k.Name = append([]byte(nil), name[:f.nameLen()]...)
	enc := sha256.Sum256(append([]byte("stek-aes:"), seed...))
	copy(k.AESKey[:], enc[:16])
	mac := sha256.Sum256(append([]byte("stek-mac:"), seed...))
	k.MACKey = mac
	return k
}

// header returns the bytes that precede the IV for this key.
func (k *STEK) header() []byte {
	if k.Format == FormatSChannel {
		return append(append([]byte(nil), schannelMagic...), k.Name...)
	}
	return append([]byte(nil), k.Name...)
}

// Seal encrypts-then-MACs state into a ticket, drawing the IV from rand.
// The ticket is assembled in its final buffer — IV read into place,
// CBC encryption in place over the marshaled state — so a seal costs one
// output allocation plus the state marshal.
func (k *STEK) Seal(st *session.State, rand io.Reader) ([]byte, error) {
	k.init()
	return k.AppendSeal(make([]byte, 0, k.SealedLen()), st, rand)
}

// paddedStateLen is a marshaled State PKCS#7-padded to the AES block.
const paddedStateLen = session.MarshaledLen +
	(aes.BlockSize - session.MarshaledLen%aes.BlockSize)

// SealedLen is the fixed on-wire length of a ticket sealed by this key:
// states serialize to one known size, so the server can frame the
// NewSessionTicket message before sealing into it.
func (k *STEK) SealedLen() int {
	k.init()
	return len(k.hdr) + aes.BlockSize + 2 + paddedStateLen + sha256.Size
}

// AppendSeal appends the sealed ticket to dst (byte-identical to Seal,
// including the rand draw for the IV), so the server can seal straight
// into an outgoing message buffer with zero intermediate allocations.
func (k *STEK) AppendSeal(dst []byte, st *session.State, rand io.Reader) ([]byte, error) {
	k.init()
	tstart := len(dst)
	dst = append(dst, k.hdr...)
	ivStart := len(dst)
	var zero [aes.BlockSize]byte
	dst = append(dst, zero[:]...)
	if k.WeakIV {
		copy(dst[ivStart:], k.weakIV[:])
	} else if _, err := io.ReadFull(rand, dst[ivStart:ivStart+aes.BlockSize]); err != nil {
		return nil, err
	}
	dst = binary.BigEndian.AppendUint16(dst, uint16(paddedStateLen))
	encStart := len(dst)
	dst = st.AppendMarshal(dst)
	// PKCS#7 pad to the AES block size.
	pad := byte(paddedStateLen - session.MarshaledLen)
	for i := byte(0); i < pad; i++ {
		dst = append(dst, pad)
	}
	cipher.NewCBCEncrypter(k.block, dst[ivStart:ivStart+aes.BlockSize]).
		CryptBlocks(dst[encStart:], dst[encStart:])
	return k.macSum(dst, dst[tstart:]), nil
}

// Open authenticates and decrypts a ticket. It returns nil (no error
// detail) when the ticket was not sealed by this key or fails its MAC —
// exactly how a server falls back to a full handshake.
func (k *STEK) Open(tkt []byte) *session.State {
	st := new(session.State)
	if !k.OpenInto(st, tkt) {
		return nil
	}
	return st
}

// OpenInto is Open decoding into caller-owned state, reporting whether
// the ticket authenticated. The decrypt scratch is pooled per key, so
// the resume hot path allocates nothing.
func (k *STEK) OpenInto(dst *session.State, tkt []byte) bool {
	k.init()
	hdr := k.hdr
	minLen := len(hdr) + aes.BlockSize + 2 + sha256.Size
	if len(tkt) < minLen || !bytes.HasPrefix(tkt, hdr) {
		return false
	}
	body, mac := tkt[:len(tkt)-sha256.Size], tkt[len(tkt)-sha256.Size:]
	var sum [sha256.Size]byte
	if !hmac.Equal(k.macSum(sum[:0], body), mac) {
		return false
	}
	p := body[len(hdr):]
	iv := p[:aes.BlockSize]
	n := int(binary.BigEndian.Uint16(p[aes.BlockSize : aes.BlockSize+2]))
	enc := p[aes.BlockSize+2:]
	if n != len(enc) || n == 0 || n%aes.BlockSize != 0 {
		return false
	}
	buf, _ := k.plainPool.Get().(*[]byte)
	if buf == nil || cap(*buf) < n {
		b := make([]byte, 0, max(n, paddedStateLen))
		buf = &b
	}
	plain := (*buf)[:n]
	cipher.NewCBCDecrypter(k.block, iv).CryptBlocks(plain, enc)
	ok := false
	pad := int(plain[n-1])
	if pad > 0 && pad <= aes.BlockSize && pad <= n {
		ok = session.UnmarshalInto(dst, plain[:n-pad]) == nil
	}
	*buf = plain[:0]
	k.plainPool.Put(buf)
	return ok
}

// ExtractKeyID returns the best single-ticket guess at the STEK
// identifier: the SChannel key GUID when the wrapper magic is present,
// otherwise the leading 16 bytes (the RFC 5077 recommended key_name).
// Disambiguating 4-byte mbedTLS names requires two tickets — see
// DetectKeyID, which is what the scanner uses.
func ExtractKeyID(tkt []byte) []byte {
	if bytes.HasPrefix(tkt, schannelMagic) && len(tkt) >= 20 {
		return tkt[4:20]
	}
	if len(tkt) >= 16 {
		return tkt[:16]
	}
	return nil
}

// DetectKeyID recovers a stable key identifier from two tickets issued
// under the same STEK: the longest common prefix, clamped to the
// format's key-name length. Returns nil if the tickets do not share a
// plausible key name (different keys, mismatched formats, or a rotation
// boundary). Clamping matters both ways: an RFC 5077 pair whose 16-byte
// names merely share a few leading bytes must not yield a bogus 4-byte
// ID, and an mbedTLS pair with coincidentally matching IV prefix bytes
// must not inflate its 4-byte name into a 16-byte one — either error
// pollutes the cross-domain STEK groups with false merges.
func DetectKeyID(t1, t2 []byte) []byte {
	n := 0
	for n < len(t1) && n < len(t2) && t1[n] == t2[n] {
		n++
	}
	if f1, ok := FormatOf(t1); ok {
		f2, ok2 := FormatOf(t2)
		if !ok2 || f1 != f2 {
			return nil
		}
		// For SChannel the header includes the shared wrapper magic, so
		// n >= headerLen means the 16-byte key GUID matched.
		if hl := headerLen(f1); n >= hl {
			return t1[:hl]
		}
		return nil
	}
	// Unrecognized layout (not produced by our sealers): keep the legacy
	// heuristic, still bounded by the longest key-name length any format
	// carries.
	if bytes.HasPrefix(t1, schannelMagic) && bytes.HasPrefix(t2, schannelMagic) {
		if n >= 20 {
			return t1[:20]
		}
		return nil
	}
	switch {
	case n >= 16:
		return t1[:16]
	case n >= 4:
		return t1[:4]
	}
	return nil
}

// Manager is a server's STEK policy: which key seals new tickets now, and
// which keys are still accepted for resumption.
type Manager interface {
	// IssuingKey returns the key sealing tickets at time now.
	IssuingKey(now time.Time) *STEK
	// LookupKey returns the accepted key that sealed tkt, or nil.
	LookupKey(tkt []byte, now time.Time) *STEK
	// OpenTicket authenticates and decrypts tkt with whichever accepted
	// key sealed it, in one pass (LookupKey followed by Open decrypts
	// twice).
	OpenTicket(tkt []byte, now time.Time) *session.State
	// OpenTicketInto is OpenTicket decoding into caller-owned state,
	// reporting acceptance; the server's resume hot path uses it so a
	// ticket open costs no State allocation.
	OpenTicketInto(dst *session.State, tkt []byte, now time.Time) bool
	// ActiveKeys returns every key accepted at time now, issuing first.
	ActiveKeys(now time.Time) []*STEK
}

// Static is a never-rotated key — the paper's most damning finding (4.9%
// of trusted domains reused one STEK for the full measurement period).
type Static struct {
	key  *STEK
	keys []*STEK // the single-element ActiveKeys result, built once
}

// NewStatic builds a static manager from seed material.
func NewStatic(seed []byte, f Format) *Static {
	k := Derive(seed, f)
	return &Static{key: k, keys: []*STEK{k}}
}

// NewStaticFromKey wraps an already-built key — e.g. one with WeakIV set
// — in a static manager.
func NewStaticFromKey(k *STEK) *Static {
	return &Static{key: k, keys: []*STEK{k}}
}

func (s *Static) IssuingKey(time.Time) *STEK { return s.key }
func (s *Static) ActiveKeys(time.Time) []*STEK {
	return s.keys
}
func (s *Static) LookupKey(tkt []byte, _ time.Time) *STEK {
	if s.key.Open(tkt) != nil {
		return s.key
	}
	return nil
}

func (s *Static) OpenTicket(tkt []byte, _ time.Time) *session.State {
	st := s.key.Open(tkt)
	countOpen(st != nil)
	return st
}

func (s *Static) OpenTicketInto(dst *session.State, tkt []byte, _ time.Time) bool {
	ok := s.key.OpenInto(dst, tkt)
	countOpen(ok)
	return ok
}

// Rotating derives a fresh key every Period from Base, and keeps accepting
// tickets sealed by the previous AcceptPrevious keys (Google's measured
// policy: 14 h issue period, previous key accepted, ≈28 h window).
type Rotating struct {
	Seed           []byte
	Base           time.Time
	Period         time.Duration
	AcceptPrevious int
	Format         Format

	mu        sync.Mutex
	cache     map[int64]*STEK
	keysCache map[int64][]*STEK // epoch -> frozen ActiveKeys result

	// lastIssued is 1 + the epoch of the most recent IssuingKey call
	// (0 = none yet), so consecutive issues under different epochs —
	// rotations as a scanner would observe them — can be counted.
	lastIssued atomic.Int64
}

func (r *Rotating) epoch(now time.Time) int64 {
	if r.Period <= 0 {
		return 0
	}
	d := now.Sub(r.Base)
	if d < 0 {
		return 0
	}
	return int64(d / r.Period)
}

func (r *Rotating) key(epoch int64) *STEK {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.cache == nil {
		r.cache = make(map[int64]*STEK)
	}
	if k, ok := r.cache[epoch]; ok {
		return k
	}
	seed := binary.BigEndian.AppendUint64(append([]byte(nil), r.Seed...), uint64(epoch))
	k := Derive(seed, r.Format)
	r.cache[epoch] = k
	// Counted under r.mu: exactly one derivation per distinct epoch,
	// whatever the worker interleaving.
	telemetry.Global().Counter("ticket/stek_derived").Inc()
	// Evict keys the acceptance window can no longer reach from the
	// epoch just derived. Derive is a pure function of (Seed, epoch), so
	// an evicted key that is somehow needed again — a test rewinding the
	// clock — is re-derived bit-identically; without eviction a long
	// campaign retains one STEK (with its cached AES state) per elapsed
	// epoch per domain, and resident memory grows with days instead of
	// staying O(domains).
	if len(r.cache) > 4*(r.AcceptPrevious+1) {
		for e := range r.cache {
			if e < epoch-int64(r.AcceptPrevious) {
				delete(r.cache, e)
			}
		}
		for e := range r.keysCache {
			if e < epoch-int64(r.AcceptPrevious) {
				delete(r.keysCache, e)
			}
		}
	}
	return k
}

func (r *Rotating) IssuingKey(now time.Time) *STEK {
	e := r.epoch(now)
	// Exactly one caller observes each epoch transition (the atomic swap
	// hands the previous value to a single winner), and the lockstep
	// virtual clock fixes every phase's epoch, so the rotation count is
	// deterministic across worker counts.
	if prev := r.lastIssued.Swap(e + 1); prev != 0 && prev != e+1 {
		telemetry.Global().Counter(telemetry.CounterSTEKRotations).Inc()
	}
	return r.key(e)
}

func (r *Rotating) ActiveKeys(now time.Time) []*STEK {
	e := r.epoch(now)
	r.mu.Lock()
	if out, ok := r.keysCache[e]; ok {
		r.mu.Unlock()
		return out
	}
	r.mu.Unlock()
	out := []*STEK{r.key(e)}
	for i := int64(1); i <= int64(r.AcceptPrevious) && e-i >= 0; i++ {
		out = append(out, r.key(e-i))
	}
	r.mu.Lock()
	if r.keysCache == nil {
		r.keysCache = make(map[int64][]*STEK)
	}
	r.keysCache[e] = out
	r.mu.Unlock()
	return out
}

func (r *Rotating) LookupKey(tkt []byte, now time.Time) *STEK {
	for _, k := range r.ActiveKeys(now) {
		if k.Open(tkt) != nil {
			return k
		}
	}
	return nil
}

func (r *Rotating) OpenTicket(tkt []byte, now time.Time) *session.State {
	for _, k := range r.ActiveKeys(now) {
		if st := k.Open(tkt); st != nil {
			return st
		}
	}
	return nil
}

func (r *Rotating) OpenTicketInto(dst *session.State, tkt []byte, now time.Time) bool {
	for _, k := range r.ActiveKeys(now) {
		if k.OpenInto(dst, tkt) {
			return true
		}
	}
	return false
}
