package study

import (
	"encoding/hex"
	"fmt"
	"sort"
	"strings"

	"tlsshortcuts/internal/cryptanalysis"
	"tlsshortcuts/internal/vulnwindow"
)

// hebrokDecryptRate is the calibration target: Hebrok et al. passively
// decrypted traffic of 1.9% of the Tranco 100k via weak session-ticket
// deployments.
const hebrokDecryptRate = 0.019

// Cryptanalysis renders the weak-crypto probe findings and the measured
// replay yield. Only included in String() when the campaign ran the
// cryptanalysis pass (DS.Crypt non-nil).
func (r *Report) Cryptanalysis() string {
	c := r.DS.Crypt
	b := &strings.Builder{}
	b.WriteString("Cryptanalysis: weak-crypto probes and measured decryption yield\n")

	// Probe 1: one STEK key name observed at unrelated operators.
	shared := cryptanalysis.SharedKeyNames(c.KeyNames, r.DS.Operators)
	fmt.Fprintf(b, "  key-name reuse: %d key name(s) served by unrelated operators\n", len(shared))
	for _, g := range shared {
		fmt.Fprintf(b, "    %s… shared by %s (%d domains)\n",
			g.KeyName[:8], strings.Join(g.Operators, ", "), len(g.Domains))
	}

	// Probe 2: STEK entropy — a successful dictionary crack bounds the
	// key's seed entropy by the search space.
	distinct := map[string]bool{}
	for _, name := range c.Cracked {
		distinct[name] = true
	}
	fmt.Fprintf(b, "  weak STEKs: %d domain(s), %d distinct key(s) recovered by dictionary search (seed entropy ≤ %.0f bits)\n",
		len(c.Cracked), len(distinct), cryptanalysis.SeedEntropyBits())

	// Probe 3: repeated CBC IVs under one key (fixed-IV sealing).
	reuse := cryptanalysis.KeystreamReuse(c.IVs, c.KeyNames)
	fmt.Fprintf(b, "  keystream reuse: %d repeated-IV finding(s)\n", len(reuse))
	for _, f := range reuse {
		var sample []byte
		for _, d := range f.Domains {
			for _, iv := range c.IVs[d] {
				if raw, err := hex.DecodeString(iv); err == nil {
					sample = append(sample, raw...)
				}
			}
		}
		fmt.Fprintf(b, "    key %s…: IV %s… seen %dx across %d domain(s); observed IV entropy %.2f bits/byte\n",
			f.KeyName[:8], f.IV[:8], f.Count, len(f.Domains), cryptanalysis.ShannonBitsPerByte(sample))
	}

	// Probe 4: known-weak FFDH primes with the Logjam amortization math.
	byPrime := map[string][]string{}
	for d, id := range c.WeakPrime {
		byPrime[id] = append(byPrime[id], d)
	}
	ids := make([]string, 0, len(byPrime))
	for id := range byPrime {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	fmt.Fprintf(b, "  weak FFDH primes: %d registry prime(s) in service\n", len(ids))
	for _, id := range ids {
		doms := byPrime[id]
		pre := vulnwindow.PrecompForBits(cryptanalysis.WeakPrimeBits(id))
		fmt.Fprintf(b, "    %s (%d-bit): %d domain(s); one-time sieve %.0f core-years → %.1f core-years/domain amortized, then ~%.0f s per connection\n",
			id, pre.PrimeBits, len(doms), pre.CoreYears, pre.AmortizedCoreYears(len(doms)), pre.PerConnSeconds)
	}

	// The measured result: replaying the tap recordings against the
	// recovered keys.
	y := c.Yield
	core := len(r.DS.TrustedCore)
	fmt.Fprintf(b, "  replay yield: %d of %d captured conversations decrypted — %d domain(s), %d plaintext bytes recovered\n",
		y.Connections, y.Attempted, y.Domains, y.Bytes)
	fmt.Fprintf(b, "  decryptable fraction: %s of the trusted core (calibration target: %.1f%%, Hebrok et al.)\n",
		pct(y.Domains, core), 100*hebrokDecryptRate)
	return b.String()
}
