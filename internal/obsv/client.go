package obsv

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"tlsshortcuts/internal/telemetry"
)

// Client talks to one obsv.Server — a sibling shard's plane, a
// standalone aggregator, or a simweb's metrics mount. The zero HTTP
// client gets a conservative timeout so a dead peer cannot wedge a
// /cluster assembly.
type Client struct {
	// Base is the server's base URL, e.g. "http://127.0.0.1:9090".
	Base string
	// HTTP overrides the transport (tests inject httptest clients).
	HTTP *http.Client
}

// NewClient builds a Client over a base URL.
func NewClient(base string) *Client {
	return &Client{Base: strings.TrimRight(base, "/")}
}

func (c *Client) httpClient() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return &http.Client{Timeout: 5 * time.Second}
}

// get fetches path and decodes the JSON response into out.
func (c *Client) get(ctx context.Context, path string, out interface{}) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.Base+path, nil)
	if err != nil {
		return err
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 256))
		return fmt.Errorf("obsv: GET %s%s: %s: %s", c.Base, path, resp.Status, strings.TrimSpace(string(body)))
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// Snapshot pulls the peer's raw telemetry snapshot
// (/metrics?format=json).
func (c *Client) Snapshot(ctx context.Context) (*telemetry.Snapshot, error) {
	var s telemetry.Snapshot
	if err := c.get(ctx, "/metrics?format=json", &s); err != nil {
		return nil, err
	}
	return &s, nil
}

// Progress pulls the peer's current /progress.
func (c *Client) Progress(ctx context.Context) (Progress, error) {
	var p Progress
	err := c.get(ctx, "/progress", &p)
	return p, err
}

// Cluster pulls the peer's merged /cluster view (aggregators chain).
func (c *Client) Cluster(ctx context.Context) (ClusterView, error) {
	var v ClusterView
	err := c.get(ctx, "/cluster", &v)
	return v, err
}

// Journal pulls the last n flight-recorder events from /journal.
func (c *Client) Journal(ctx context.Context, n int) ([]Event, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, fmt.Sprintf("%s/journal?n=%d", c.Base, n), nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("obsv: GET %s/journal: %s", c.Base, resp.Status)
	}
	return DecodeEvents(resp.Body)
}

// Healthz probes /healthz; nil means the peer answered "ok".
func (c *Client) Healthz(ctx context.Context) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.Base+"/healthz", nil)
	if err != nil {
		return err
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 64))
	if resp.StatusCode != http.StatusOK || strings.TrimSpace(string(body)) != "ok" {
		return fmt.Errorf("obsv: %s/healthz: %s %q", c.Base, resp.Status, strings.TrimSpace(string(body)))
	}
	return nil
}
