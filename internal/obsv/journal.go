package obsv

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sync"
	"time"

	"tlsshortcuts/internal/telemetry"
)

// JournalVersion is the flight-recorder schema version every event
// carries. Readers reject events from a newer schema than they know;
// replay rules for the current version are in DESIGN.md §12.
const JournalVersion = 1

// Event types, in the order a healthy campaign emits them:
// campaign_start, then alternating phase_start/phase_end pairs, then
// exactly one terminal campaign_end (with the dataset hash) or
// campaign_aborted (with the error).
const (
	EventCampaignStart   = "campaign_start"
	EventPhaseStart      = "phase_start"
	EventPhaseEnd        = "phase_end"
	EventCampaignEnd     = "campaign_end"
	EventCampaignAborted = "campaign_aborted"
)

// Event is one sequence-numbered line of the flight-recorder journal:
// the replayable record of what a campaign did. Fields are a superset
// of telemetry.Span's so a phase_end event carries the whole span plus
// the per-phase counter deltas (failure classes, injected faults, STEK
// rotations) attributed to the phase they happened in.
//
// Determinism contract: Wall, WallNanos, Utilization, and Workers are
// scheduling- or wall-clock-dependent; everything else is a pure
// function of (seed, options, fault plan). DeterministicView strips
// exactly that set, and the obsv suite pins that the stripped journal
// is byte-identical across worker counts.
type Event struct {
	V    int    `json:"v"`
	Seq  uint64 `json:"seq"`
	Type string `json:"type"`
	// Wall is the wall-clock stamp (RFC 3339, nanoseconds) the event was
	// recorded at. Stripped from the deterministic view.
	Wall string `json:"wall,omitempty"`
	// Shard is "i/N" for a sharded campaign slice, "" for monolithic.
	Shard string `json:"shard,omitempty"`

	// Phase-identifying fields (phase_start and phase_end events).
	Phase       string `json:"phase,omitempty"`
	Day         int    `json:"day"`
	Days        int    `json:"days,omitempty"`
	VirtualDate string `json:"virtual_date,omitempty"`

	// Campaign-identifying fields (campaign_start).
	ListSize int   `json:"list_size,omitempty"`
	Seed     int64 `json:"seed,omitempty"`
	Workers  int   `json:"workers,omitempty"`

	// Phase results (phase_end).
	Domains        int               `json:"domains,omitempty"`
	Failures       int               `json:"failures,omitempty"`
	PairFailures   int               `json:"pair_failures,omitempty"`
	Handshakes     uint64            `json:"handshakes,omitempty"`
	Retries        uint64            `json:"retries,omitempty"`
	FailureClasses map[string]uint64 `json:"failure_classes,omitempty"`
	Faults         map[string]uint64 `json:"faults,omitempty"`
	STEKRotations  uint64            `json:"stek_rotations,omitempty"`
	WallNanos      int64             `json:"wall_ns,omitempty"`
	Utilization    float64           `json:"utilization,omitempty"`

	// Terminal fields: the dataset hash (campaign_end) or the abort
	// reason (campaign_aborted).
	DatasetSHA256 string `json:"dataset_sha256,omitempty"`
	Err           string `json:"err,omitempty"`
}

// Journal is the append-only flight recorder: a JSONL event log with
// explicit flush points (after campaign_start, after every phase_end,
// and at each terminal event) so the on-disk record is complete up to
// the last finished phase even if the process dies mid-campaign.
//
// Journal implements study.CampaignObserver structurally (OnPhase), and
// its observer path never fails the campaign: write errors are sticky
// and surface through Err/Close, not through the scan loop.
type Journal struct {
	mu     sync.Mutex
	w      *bufio.Writer
	c      io.Closer
	seq    uint64
	err    error
	closed bool
	tail   []Event // ring of the last tailSize events for /journal
	shard  string  // stamped on phase events; see SetShard
	now    func() time.Time
}

// tailSize bounds the in-memory event ring the /journal endpoint serves.
const tailSize = 256

// NewJournal wraps w in a flight recorder. The caller keeps ownership
// of w unless it is also an io.Closer, in which case Close closes it.
func NewJournal(w io.Writer) *Journal {
	j := &Journal{w: bufio.NewWriter(w), now: time.Now}
	if c, ok := w.(io.Closer); ok {
		j.c = c
	}
	return j
}

// CreateJournal opens (truncating) a journal file at path.
func CreateJournal(path string) (*Journal, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	return NewJournal(f), nil
}

// Record appends one event, assigning its schema version, sequence
// number, and wall stamp. Flush points: campaign_start, phase_end, and
// the terminal events flush through to the sink; phase_start events
// ride along with the next flush.
func (j *Journal) Record(ev Event) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return
	}
	ev.V = JournalVersion
	ev.Seq = j.seq
	ev.Wall = j.now().UTC().Format(time.RFC3339Nano)
	j.seq++
	if len(j.tail) < tailSize {
		j.tail = append(j.tail, ev)
	} else {
		copy(j.tail, j.tail[1:])
		j.tail[len(j.tail)-1] = ev
	}
	b, err := json.Marshal(ev)
	if err != nil {
		j.setErr(err)
		return
	}
	b = append(b, '\n')
	if _, err := j.w.Write(b); err != nil {
		j.setErr(err)
		return
	}
	switch ev.Type {
	case EventCampaignStart, EventPhaseEnd, EventCampaignEnd, EventCampaignAborted:
		j.setErr(j.w.Flush())
	}
}

// setErr keeps the first write error; callers hold j.mu.
func (j *Journal) setErr(err error) {
	if j.err == nil && err != nil {
		j.err = err
	}
}

// Err returns the first write error, if any. A campaign never aborts on
// journal write failure; operators check Err at the end.
func (j *Journal) Err() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.err
}

// Tail returns copies of the most recent n events (all of the retained
// ring when n <= 0 or exceeds it), oldest first.
func (j *Journal) Tail(n int) []Event {
	j.mu.Lock()
	defer j.mu.Unlock()
	if n <= 0 || n > len(j.tail) {
		n = len(j.tail)
	}
	out := make([]Event, n)
	copy(out, j.tail[len(j.tail)-n:])
	return out
}

// Flush forces buffered events to the sink.
func (j *Journal) Flush() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.setErr(j.w.Flush())
	return j.err
}

// Close flushes and closes the underlying sink (when it is closable)
// and returns the journal's first error. Records after Close are
// dropped.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return j.err
	}
	j.closed = true
	j.setErr(j.w.Flush())
	if j.c != nil {
		j.setErr(j.c.Close())
	}
	return j.err
}

// CampaignStart records the campaign-identifying header event.
func (j *Journal) CampaignStart(listSize, days int, seed int64, workers int, shard string) {
	j.Record(Event{
		Type:     EventCampaignStart,
		Day:      -1,
		ListSize: listSize,
		Days:     days,
		Seed:     seed,
		Workers:  workers,
		Shard:    shard,
	})
}

// CampaignEnd records the terminal event carrying the hash of the
// dataset the campaign produced.
func (j *Journal) CampaignEnd(datasetSHA256 string) {
	j.Record(Event{Type: EventCampaignEnd, Day: -1, DatasetSHA256: datasetSHA256})
}

// Abort finalizes the journal on the campaign's fatal-exit path: it
// records campaign_aborted with the error and flushes, so the journal
// is complete and parseable exactly when it is most needed.
func (j *Journal) Abort(reason error) {
	msg := "unknown"
	if reason != nil {
		msg = reason.Error()
	}
	j.Record(Event{Type: EventCampaignAborted, Day: -1, Err: msg})
}

// SetShard stamps subsequent phase events with the shard coordinate
// ("i/N"), so a mixed directory of shard journals self-identifies. Set
// once by the studyrun wiring before the campaign starts.
func (j *Journal) SetShard(shard string) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.shard = shard
}

// OnPhase implements study.CampaignObserver: phase_start on entry,
// phase_end (span plus per-phase deltas) on completion. It always
// returns nil — flight recording must never abort the measurement; the
// abort direction flows the other way, via Abort.
func (j *Journal) OnPhase(ev telemetry.PhaseEvent) error {
	out := Event{
		Phase:       ev.Span.Phase,
		Day:         ev.Span.Day,
		Days:        ev.Span.Days,
		VirtualDate: ev.Span.VirtualDate,
		Domains:     ev.Span.Domains,
		Workers:     ev.Span.Workers,
	}
	j.mu.Lock()
	out.Shard = j.shard
	j.mu.Unlock()
	if ev.Start {
		out.Type = EventPhaseStart
	} else {
		out.Type = EventPhaseEnd
		out.Failures = ev.Span.Failures
		out.PairFailures = ev.Span.PairFailures
		out.Handshakes = ev.Span.Handshakes
		out.Retries = ev.Span.Retries
		out.WallNanos = ev.Span.WallNanos
		out.Utilization = ev.Span.Utilization
		out.FailureClasses = ev.FailureClasses
		out.Faults = ev.Faults
		out.STEKRotations = ev.STEKRotations
	}
	j.Record(out)
	return nil
}

// DecodeEvents reads a JSONL journal back into memory, rejecting events
// written by a newer schema version.
func DecodeEvents(r io.Reader) ([]Event, error) {
	dec := json.NewDecoder(r)
	var out []Event
	for {
		var ev Event
		if err := dec.Decode(&ev); err == io.EOF {
			return out, nil
		} else if err != nil {
			return nil, fmt.Errorf("obsv: bad journal event %d: %w", len(out), err)
		}
		if ev.V > JournalVersion {
			return nil, fmt.Errorf("obsv: journal event %d has schema v%d, newer than supported v%d",
				len(out), ev.V, JournalVersion)
		}
		out = append(out, ev)
	}
}

// ReadJournal loads a journal file.
func ReadJournal(path string) ([]Event, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	evs, err := DecodeEvents(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return evs, nil
}

// ValidateJournal checks the structural invariants replay depends on:
// contiguous sequence numbers from zero, a campaign_start first, and at
// most one terminal event, last.
func ValidateJournal(events []Event) error {
	if len(events) == 0 {
		return fmt.Errorf("obsv: empty journal")
	}
	for i, ev := range events {
		if ev.Seq != uint64(i) {
			return fmt.Errorf("obsv: event %d has seq %d (journal truncated or reordered)", i, ev.Seq)
		}
		terminal := ev.Type == EventCampaignEnd || ev.Type == EventCampaignAborted
		if terminal && i != len(events)-1 {
			return fmt.Errorf("obsv: terminal %s at event %d of %d", ev.Type, i, len(events))
		}
	}
	if events[0].Type != EventCampaignStart {
		return fmt.Errorf("obsv: journal starts with %s, want %s", events[0].Type, EventCampaignStart)
	}
	return nil
}

// DeterministicView returns a copy of the journal with every wall- or
// scheduling-dependent field zeroed: Wall stamps, WallNanos,
// Utilization, and Workers. What remains must be identical for any
// worker count — the journal-level analogue of
// telemetry.Snapshot.Deterministic.
func DeterministicView(events []Event) []Event {
	out := make([]Event, len(events))
	for i, ev := range events {
		ev.Wall = ""
		ev.WallNanos = 0
		ev.Utilization = 0
		ev.Workers = 0
		out[i] = ev
	}
	return out
}

// MergeJournalsDeterministic correlates N shard journals of the same
// campaign into the deterministic journal the monolithic run would have
// produced: events are aligned positionally (every shard emits the
// identical phase sequence), per-phase additive results (domains,
// failures, handshakes, retries, failure classes, faults) are summed,
// and shard-variant fields are normalized away — Shard coordinates,
// per-shard dataset hashes, and STEKRotations (a per-operator manager
// rotates lazily in every shard that touches its domains, so rotation
// counts are per-process observations, not partitions of the monolithic
// count). Passing a single monolithic journal applies the same
// normalization, so merged-shards and normalized-monolithic views are
// directly comparable.
func MergeJournalsDeterministic(journals ...[]Event) ([]Event, error) {
	if len(journals) == 0 {
		return nil, fmt.Errorf("obsv: no journals to merge")
	}
	views := make([][]Event, len(journals))
	for i, evs := range journals {
		if err := ValidateJournal(evs); err != nil {
			return nil, fmt.Errorf("journal %d: %w", i, err)
		}
		views[i] = DeterministicView(evs)
		if len(views[i]) != len(views[0]) {
			return nil, fmt.Errorf("obsv: journal %d has %d events, journal 0 has %d",
				i, len(views[i]), len(views[0]))
		}
	}
	out := make([]Event, len(views[0]))
	for i, base := range views[0] {
		merged := base
		merged.Shard = ""
		merged.DatasetSHA256 = ""
		merged.STEKRotations = 0
		merged.FailureClasses = cloneCounts(base.FailureClasses)
		merged.Faults = cloneCounts(base.Faults)
		for vi, view := range views[1:] {
			ev := view[i]
			if ev.Type != base.Type || ev.Phase != base.Phase || ev.Day != base.Day {
				return nil, fmt.Errorf("obsv: journal %d event %d is %s/%s day %d, journal 0 has %s/%s day %d",
					vi+1, i, ev.Type, ev.Phase, ev.Day, base.Type, base.Phase, base.Day)
			}
			if ev.VirtualDate != base.VirtualDate {
				return nil, fmt.Errorf("obsv: journal %d event %d virtual date %q != %q (campaigns not in lockstep)",
					vi+1, i, ev.VirtualDate, base.VirtualDate)
			}
			if ev.ListSize != base.ListSize || ev.Days != base.Days || ev.Seed != base.Seed {
				return nil, fmt.Errorf("obsv: journal %d event %d is from a different campaign (%d domains x %d days seed %d vs %d x %d seed %d)",
					vi+1, i, ev.ListSize, ev.Days, ev.Seed, base.ListSize, base.Days, base.Seed)
			}
			merged.Domains += ev.Domains
			merged.Failures += ev.Failures
			merged.PairFailures += ev.PairFailures
			merged.Handshakes += ev.Handshakes
			merged.Retries += ev.Retries
			merged.FailureClasses = addCounts(merged.FailureClasses, ev.FailureClasses)
			merged.Faults = addCounts(merged.Faults, ev.Faults)
		}
		merged.Seq = uint64(i)
		out[i] = merged
	}
	return out, nil
}

func cloneCounts(m map[string]uint64) map[string]uint64 {
	if m == nil {
		return nil
	}
	out := make(map[string]uint64, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

func addCounts(dst, src map[string]uint64) map[string]uint64 {
	if len(src) == 0 {
		return dst
	}
	if dst == nil {
		dst = make(map[string]uint64, len(src))
	}
	for k, v := range src {
		dst[k] += v
	}
	return dst
}
