// Command simweb exposes one simulated domain's SSL terminator on a real
// TCP port, so cmd/tlsscan (or any client speaking this repository's TLS
// 1.2 subset) can poke it interactively:
//
//	simweb -domain yahoo.com -listen 127.0.0.1:4433 &
//	tlsscan -addr 127.0.0.1:4433 -sni yahoo.com -conns 3
//
// With -metrics the terminator's telemetry registry is mounted on an
// observability endpoint (the same /metrics and /healthz contract as
// studyrun -obsv), so a long-lived simweb can be scraped:
//
//	simweb -domain yahoo.com -metrics 127.0.0.1:9091 &
//	curl http://127.0.0.1:9091/metrics
//
// The terminator keeps its configured shortcuts — session cache, tickets,
// STEK policy, KEX reuse — so resumption and reuse behave exactly as in the
// virtual study, except on the wall clock.
package main

import (
	"flag"
	"log"
	"net"
	"net/http"
	"time"

	"tlsshortcuts/internal/obsv"
	"tlsshortcuts/internal/population"
	"tlsshortcuts/internal/simclock"
	"tlsshortcuts/internal/telemetry"
	"tlsshortcuts/internal/tlsserver"
)

func main() {
	var (
		domain   = flag.String("domain", "yahoo.com", "simulated domain whose terminator to expose")
		listen   = flag.String("listen", "127.0.0.1:4433", "listen address")
		listSize = flag.Int("listsize", 2000, "sim world size")
		seed     = flag.Int64("seed", 1, "sim world seed")
		metrics  = flag.String("metrics", "", "serve /metrics and /healthz over the terminator's registry on this address")
	)
	flag.Parse()

	// The registry is installed before the world is built so every
	// terminator-side collector (session cache, ticket/STEK, keyex
	// reuse) reports into it.
	var reg *telemetry.Registry
	if *metrics != "" {
		reg = telemetry.NewRegistry()
		defer telemetry.SetGlobal(reg)()
	}

	w, err := population.Build(population.Options{
		ListSize: *listSize,
		Seed:     *seed,
		Clock:    simclock.System(),
		Start:    time.Now(),
	})
	if err != nil {
		log.Fatalf("building world: %v", err)
	}
	info := w.Domains[*domain]
	if info == nil || len(info.Terms) == 0 {
		log.Fatalf("domain %q not served in this world", *domain)
	}
	cfg := info.Terms[0].Config

	if *metrics != "" {
		mln, err := net.Listen("tcp", *metrics)
		if err != nil {
			log.Fatalf("metrics listen: %v", err)
		}
		log.Printf("metrics on http://%s/metrics", mln.Addr())
		go func() {
			if err := http.Serve(mln, metricsHandler(reg)); err != nil {
				log.Printf("metrics server: %v", err)
			}
		}()
	}

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		log.Fatalf("listen: %v", err)
	}
	log.Printf("serving %s (operator %s) on %s — scan with: tlsscan -addr %s -sni %s",
		*domain, info.Operator, *listen, *listen, *domain)
	log.Printf("behavior: tickets=%v cache=%v stek-period=%v dhe=%v ecdhe=%v",
		info.Terms[0].Behavior.Tickets, info.Terms[0].Behavior.CacheLifetime,
		info.Terms[0].Behavior.STEK.Period, info.Terms[0].Behavior.DHE.Mode,
		info.Terms[0].Behavior.ECDHE.Mode)
	serveLoop(ln, cfg)
}

// metricsHandler mounts the observability plane's /metrics and /healthz
// over reg. Kept separate from main so the smoke test can drive it with
// the obsv client against a live terminator.
func metricsHandler(reg *telemetry.Registry) http.Handler {
	return obsv.NewServer(obsv.Config{Registry: reg})
}

// serveLoop accepts terminator connections forever.
func serveLoop(ln net.Listener, cfg *tlsserver.Config) {
	for {
		conn, err := ln.Accept()
		if err != nil {
			log.Fatalf("accept: %v", err)
		}
		go func(c net.Conn) {
			if err := tlsserver.Serve(c, cfg); err != nil {
				log.Printf("connection error: %v", err)
			}
		}(conn)
	}
}
