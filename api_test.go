package tlsshortcuts_test

// Smoke tests for the public façade: a downstream user drives the whole
// pipeline through the root package only.

import (
	"testing"

	"tlsshortcuts"
)

func TestPublicAPIWorldAndStudy(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign in -short mode")
	}
	world, err := tlsshortcuts.BuildWorld(tlsshortcuts.WorldOptions{ListSize: 300, Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	if len(world.TrustedCoreDomains()) == 0 {
		t.Fatal("empty world")
	}

	ds, err := tlsshortcuts.RunStudy(tlsshortcuts.StudyOptions{
		ListSize: 300, Days: 8, Seed: 17, Workers: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep := tlsshortcuts.BuildReport(ds)
	if rep.String() == "" {
		t.Fatal("empty report")
	}
	c := tlsshortcuts.ClassifyExposures(rep.Exposures)
	if c.Total == 0 {
		t.Fatal("no exposures classified")
	}
}

func TestPublicAPIRunner(t *testing.T) {
	r, err := tlsshortcuts.NewRunner(tlsshortcuts.StudyOptions{ListSize: 200, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if r.World == nil || r.Scan == nil || r.Clock == nil {
		t.Fatal("runner not wired")
	}
	// One ad-hoc experiment through the runner's scanner.
	core := r.World.TrustedCoreDomains()
	obs := r.Scan.Daily(core[:10], 0, nil, true)
	ok := 0
	for _, o := range obs {
		if o.OK {
			ok++
		}
	}
	if ok < 8 {
		t.Fatalf("only %d/10 scans succeeded", ok)
	}
}
