package study

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"tlsshortcuts/internal/traffic"
)

func sha256Hex(b []byte) string {
	h := sha256.Sum256(b)
	return hex.EncodeToString(h[:])
}

// trafficOpts is the traffic-plane contract campaign: small enough to
// run several times in a test, busy enough that every policy resumes,
// evicts, and crosses hostnames.
func trafficOpts() Options {
	return Options{
		ListSize: 120, Days: 4, Seed: 11, Workers: 8,
		Traffic: &traffic.Options{Users: 60},
	}
}

func runTraffic(t *testing.T, o Options) *Dataset {
	t.Helper()
	ds, err := Run(o)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return ds
}

func marshal(t *testing.T, v interface{}) []byte {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	return b
}

// TestTrafficDatasetPopulated sanity-checks the plane's measurements:
// visits completed, sessions resumed via both mechanisms, chains closed
// with mass conservation (chain lengths sum to completed connections),
// and the window join found real in-window traffic.
func TestTrafficDatasetPopulated(t *testing.T) {
	ds := runTraffic(t, trafficOpts())
	tr := ds.Traffic
	if tr == nil {
		t.Fatal("traffic campaign produced no Traffic results")
	}
	if tr.Days != 4 || tr.Users != 60 {
		t.Fatalf("Traffic identity = %d users / %d days, want 60/4", tr.Users, tr.Days)
	}
	var users int
	var conns, resumed, viaTicket, viaID, full, chains, lenMass uint64
	for i := range tr.Policies {
		p := &tr.Policies[i]
		users += p.Users
		conns += p.Conns
		resumed += p.Resumed
		viaTicket += p.ResumedTicket
		viaID += p.ResumedID
		full += p.Full
		chains += p.Chains
		for _, n := range p.ChainLen {
			lenMass += n
		}
		if p.Full+p.Resumed != p.Conns {
			t.Errorf("policy %s: full %d + resumed %d != conns %d",
				p.Policy.Name, p.Full, p.Resumed, p.Conns)
		}
	}
	if users != 60 {
		t.Errorf("per-policy user counts sum to %d, want 60", users)
	}
	if conns == 0 || resumed == 0 || viaTicket == 0 || viaID == 0 {
		t.Errorf("want nonzero conns/resumed/ticket/id, got %d/%d/%d/%d",
			conns, resumed, viaTicket, viaID)
	}
	// Every chain starts at exactly one full handshake and every chain
	// closes by campaign end, so chains == full handshakes and the
	// length histogram's mass is one entry per chain.
	if chains == 0 || chains != full || lenMass != chains {
		t.Errorf("chains %d (histogram mass %d) != full handshakes %d",
			chains, lenMass, full)
	}
	j := tr.Join
	if j == nil {
		t.Fatal("traffic results missing the window join")
	}
	if j.Connections.Total != conns {
		t.Errorf("join total %d != completed conns %d", j.Connections.Total, conns)
	}
	if j.Connections.InWindow == 0 || j.Bytes.InWindow == 0 {
		t.Errorf("want nonzero in-window traffic, got %d conns / %d bytes",
			j.Connections.InWindow, j.Bytes.InWindow)
	}
	// The report must render the Traffic section for a traffic dataset.
	rep := BuildReport(ds).String()
	if !strings.Contains(rep, "Traffic: measured exposure") {
		t.Error("report is missing the Traffic section")
	}
	if !strings.Contains(rep, "resumption tracking chains") {
		t.Error("report is missing the tracking-chain section")
	}
}

// TestTrafficDeterministicAcrossWorkers pins the contract that worker
// scheduling cannot show in the dataset: 3 and 13 workers (scanner and
// traffic pools both) produce byte-identical JSON.
func TestTrafficDeterministicAcrossWorkers(t *testing.T) {
	a := trafficOpts()
	a.Workers = 3
	b := trafficOpts()
	b.Workers = 13
	da := marshal(t, runTraffic(t, a))
	db := marshal(t, runTraffic(t, b))
	if !bytes.Equal(da, db) {
		t.Fatalf("3-worker and 13-worker traffic datasets differ (%d vs %d bytes)", len(da), len(db))
	}
}

// TestTrafficShardMergeMatchesMonolithic runs the traffic campaign as
// two shards (domains round-robin, users by user id) and checks the
// merged dataset — including the recomputed window join — is
// byte-identical to the monolithic run's.
func TestTrafficShardMergeMatchesMonolithic(t *testing.T) {
	mono := runTraffic(t, trafficOpts())

	shards := make([]*Dataset, 2)
	for i := range shards {
		o := trafficOpts()
		o.Shard = &ShardSpec{Index: i, Count: 2}
		shards[i] = runTraffic(t, o)
	}
	merged, err := MergeDatasets(shards...)
	if err != nil {
		t.Fatalf("MergeDatasets: %v", err)
	}
	dm, dmono := marshal(t, merged), marshal(t, mono)
	if !bytes.Equal(dm, dmono) {
		t.Fatalf("merged traffic dataset differs from monolithic (%d vs %d bytes)", len(dm), len(dmono))
	}
}

// TestTrafficScannerInert pins the plane's central isolation claim:
// running the golden 200x8 seed-7 campaign WITH traffic enabled leaves
// every scanner-measured field byte-identical — stripping the Traffic
// section out of the traffic-on dataset reproduces the committed golden
// hash exactly.
func TestTrafficScannerInert(t *testing.T) {
	o := detOpts
	o.Traffic = &traffic.Options{Users: 40}
	ds := runTraffic(t, o)
	if ds.Traffic == nil || ds.Traffic.Conns() == 0 {
		t.Fatal("traffic plane did not run")
	}
	ds.Traffic = nil
	b := marshal(t, ds)
	h := sha256Hex(b)
	golden := filepath.Join("testdata", "campaign_200x8_seed7.sha256")
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden: %v", err)
	}
	if got, w := h, strings.TrimSpace(string(want)); got != w {
		t.Fatalf("traffic-on campaign perturbed scanner results:\n  got  %s\n  want %s", got, w)
	}
}
