// Package keyex is the unified key-exchange abstraction over FFDH and
// ECDHE (P-256), with deterministic epoch-derived private values so server
// policies can reuse a KEX value across connections and terminators.
//
// In Reuse mode the derived value is a pure function of (Seed, Base,
// Period, epoch), so it is cached per epoch: re-deriving it on every
// handshake (a SHA-256 loop plus scalar validation for P-256, a modular
// exponentiation for FFDH) produced bit-identical results at ~100x the
// cost. The cache is observationally equivalent to per-handshake
// derivation; internal/study's equivalence test proves it by comparing
// cache-on and cache-off campaign datasets byte for byte.
package keyex

import (
	"crypto/ecdh"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"math/big"
	"sync"
	"time"

	"tlsshortcuts/internal/ffdh"
	"tlsshortcuts/internal/perf"
	"tlsshortcuts/internal/telemetry"
)

// ReuseMode says how a server treats its ephemeral KEX value.
type ReuseMode int

const (
	Fresh ReuseMode = iota // new value per handshake (true ephemerality)
	Reuse                  // epoch-derived value, stable for Period
)

func (m ReuseMode) String() string {
	if m == Reuse {
		return "reuse"
	}
	return "fresh"
}

// Policy configures server-side KEX value handling. A zero Policy means a
// fresh value per handshake. Seed names the value-sharing group: two
// terminators with the same Seed (and Base/Period) serve the same value.
type Policy struct {
	Mode   ReuseMode
	Period time.Duration
	Base   time.Time
	Seed   []byte
}

// epoch returns the policy's epoch counter at now.
func (p *Policy) epoch(now time.Time) uint64 {
	if p.Period <= 0 {
		return 0
	}
	d := now.Sub(p.Base)
	if d <= 0 {
		return 0
	}
	return uint64(d / p.Period)
}

// epochSeed folds an epoch counter into the policy's seed.
func (p *Policy) epochSeedAt(e uint64) []byte {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], e)
	h := sha256.New()
	h.Write(p.Seed)
	h.Write(b[:])
	return h.Sum(nil)
}

// epochSeed folds the policy's epoch counter into its seed.
func (p *Policy) epochSeed(now time.Time) []byte {
	return p.epochSeedAt(p.epoch(now))
}

// ---- epoch-keyed derivation cache ----

// cacheKey identifies one policy-epoch derivation. Two policies with the
// same (Seed, Base, Period) derive the same values, so terminators in a
// sharing group hit a single entry.
type cacheKey struct {
	kind   uint8 // 'E' ecdhe, 'D' dhe
	group  *ffdh.Group
	seed   string
	base   int64
	period time.Duration
	epoch  uint64
}

type cacheVal struct {
	ecdheKey *ecdh.PrivateKey
	ecdhePub []byte
	dhePriv  *big.Int
	dhePub   []byte
}

var (
	cacheMu sync.RWMutex
	cache   = map[cacheKey]*cacheVal{}
)

// maxCacheEntries bounds the cache across many campaigns in one process;
// one campaign touches a handful of epochs per reuse policy.
const maxCacheEntries = 4096

func cacheGet(k cacheKey) (*cacheVal, bool) {
	cacheMu.RLock()
	v, ok := cache[k]
	cacheMu.RUnlock()
	return v, ok
}

func cachePut(k cacheKey, v *cacheVal) {
	cacheMu.Lock()
	if len(cache) >= maxCacheEntries {
		cache = map[cacheKey]*cacheVal{}
	}
	if _, ok := cache[k]; !ok {
		// Fill count under the write lock with an existence check: two
		// workers may both miss the same epoch concurrently, so counting
		// misses would be racy — counting first inserts is not. Still
		// wall/: the cache is package-global and persists across
		// campaigns in one process, so fills depend on process history.
		telemetry.Global().Counter("wall/keyex/cache_fill").Inc()
	}
	cache[k] = v
	cacheMu.Unlock()
}

func (p *Policy) key(kind uint8, e uint64) cacheKey {
	return cacheKey{kind: kind, seed: string(p.Seed), base: p.Base.UnixNano(), period: p.Period, epoch: e}
}

// deriveECDHE runs the deterministic P-256 derivation loop for seed.
func deriveECDHE(seed []byte) (*ecdh.PrivateKey, error) {
	curve := ecdh.P256()
	for i := 0; i < 64; i++ {
		h := sha256.New()
		h.Write([]byte("ecdhe-priv"))
		h.Write(seed)
		h.Write([]byte{byte(i)})
		if k, err := curve.NewPrivateKey(h.Sum(nil)); err == nil {
			return k, nil
		}
	}
	return nil, fmt.Errorf("keyex: could not derive P-256 key")
}

// ECDHEKey returns the server's P-256 private key for this handshake under
// the policy; rand supplies entropy for Fresh mode.
func ECDHEKey(p *Policy, now time.Time, rand interface{ Read([]byte) (int, error) }) (*ecdh.PrivateKey, error) {
	k, _, err := ECDHEKeyPub(p, now, rand)
	return k, err
}

// ECDHEKeyPub is ECDHEKey plus the serialized public value (the bytes the
// ServerKeyExchange carries). In Reuse mode both come from the epoch
// cache, so neither the derivation loop nor the point serialization runs
// more than once per epoch. The returned slice must not be modified.
func ECDHEKeyPub(p *Policy, now time.Time, rand interface{ Read([]byte) (int, error) }) (*ecdh.PrivateKey, []byte, error) {
	if p == nil || p.Mode == Fresh {
		telemetry.Global().Counter("keyex/fresh_keys").Inc()
		// Draw explicit scalar bytes instead of ecdh.GenerateKey(rand):
		// GenerateKey does not consume a caller-supplied reader
		// deterministically, which would make fresh server values (and the
		// recorded ECDHE spans) differ between same-seed runs.
		var seed [32]byte
		if _, err := rand.Read(seed[:]); err != nil {
			return nil, nil, err
		}
		k, err := deriveECDHE(seed[:])
		if err != nil {
			return nil, nil, err
		}
		pub := k.PublicKey().Bytes()
		if perf.CryptoAmortization() {
			scalarStore(pub, k, false)
		}
		return k, pub, nil
	}
	telemetry.Global().Counter("keyex/reuse_lookups").Inc()
	e := p.epoch(now)
	ck := p.key('E', e)
	if perf.CryptoCaches() {
		if v, ok := cacheGet(ck); ok {
			telemetry.Global().Counter("wall/keyex/cache_hit").Inc()
			return v.ecdheKey, v.ecdhePub, nil
		}
	}
	k, err := deriveECDHE(p.epochSeedAt(e))
	if err != nil {
		return nil, nil, err
	}
	pub := k.PublicKey().Bytes()
	if perf.CryptoCaches() {
		cachePut(ck, &cacheVal{ecdheKey: k, ecdhePub: pub})
	}
	if perf.CryptoAmortization() {
		scalarStore(pub, k, true)
	}
	return k, pub, nil
}

// DHEPrivate returns the server's FFDH exponent seed for this handshake.
func DHEPrivate(g *ffdh.Group, p *Policy, now time.Time, rand interface{ Read([]byte) (int, error) }) ([]byte, error) {
	if p == nil || p.Mode == Fresh {
		buf := make([]byte, 32)
		if _, err := rand.Read(buf); err != nil {
			return nil, err
		}
		return buf, nil
	}
	return p.epochSeed(now), nil
}

// DHEKey returns the server's FFDH private exponent and its serialized
// public value (left-padded to the modulus width). In Reuse mode the
// exponent derivation and the g^x modexp are served from the epoch cache.
// The returned values must not be modified.
func DHEKey(g *ffdh.Group, p *Policy, now time.Time, rand interface{ Read([]byte) (int, error) }) (*big.Int, []byte, error) {
	if p == nil || p.Mode == Fresh {
		telemetry.Global().Counter("keyex/fresh_keys").Inc()
		seed, err := DHEPrivate(g, p, now, rand)
		if err != nil {
			return nil, nil, err
		}
		priv := g.PrivateFromSeed(seed)
		return priv, g.Bytes(g.Public(priv)), nil
	}
	telemetry.Global().Counter("keyex/reuse_lookups").Inc()
	e := p.epoch(now)
	ck := p.key('D', e)
	ck.group = g
	if perf.CryptoCaches() {
		if v, ok := cacheGet(ck); ok {
			telemetry.Global().Counter("wall/keyex/cache_hit").Inc()
			return v.dhePriv, v.dhePub, nil
		}
	}
	priv := g.PrivateFromSeed(p.epochSeedAt(e))
	pub := g.Bytes(g.Public(priv))
	if perf.CryptoCaches() {
		cachePut(ck, &cacheVal{dhePriv: priv, dhePub: pub})
	}
	return priv, pub, nil
}
