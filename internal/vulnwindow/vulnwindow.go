// Package vulnwindow models §6's security-harm metric: for each domain
// and shortcut mechanism, the window during which a later server-side
// compromise retroactively decrypts a recorded connection; per-domain
// windows combine by taking the worst mechanism.
package vulnwindow

import "time"

// Mechanism identifies the crypto shortcut behind an exposure.
type Mechanism string

// The four measured mechanisms.
const (
	MechTicket Mechanism = "ticket"
	MechCache  Mechanism = "cache"
	MechDHE    Mechanism = "dhe"
	MechECDHE  Mechanism = "ecdhe"
)

// Exposure is one (domain, mechanism) vulnerability window.
type Exposure struct {
	Domain    string
	Mechanism Mechanism
	Window    time.Duration
}

// TicketWindow is the STEK exposure: a connection made any time during
// the key's observed lifetime (span) stays decryptable until the key is
// destroyed, plus the tail during which old tickets are still accepted.
func TicketWindow(spanDays int, acceptance time.Duration) time.Duration {
	return time.Duration(spanDays)*24*time.Hour + acceptance
}

// CacheWindow is the session-cache exposure: the measured time the server
// keeps the master secret resumable.
func CacheWindow(lifetime time.Duration) time.Duration {
	return lifetime
}

// KexWindow is the finite-field or elliptic DH exposure for a key-exchange
// value observed on spanDays distinct days. Sub-day reuse is treated as
// no exposure (the paper reports reuse at day granularity).
func KexWindow(spanDays int) time.Duration {
	if spanDays < 1 {
		return 0
	}
	return time.Duration(spanDays) * 24 * time.Hour
}

// Combine reduces exposures to the per-domain maximum window: an
// eavesdropped connection is as vulnerable as the worst shortcut in play.
func Combine(exps []Exposure) map[string]time.Duration {
	out := make(map[string]time.Duration)
	for _, e := range exps {
		if w, ok := out[e.Domain]; !ok || e.Window > w {
			out[e.Domain] = e.Window
		}
	}
	return out
}

// Classification buckets combined windows by exceedance threshold
// (Figure 8's headline cut points). Comparisons are strict: a window of
// exactly 24h does not count as "over 24h".
type Classification struct {
	Total   int // domains with any exposure
	Over24h int
	Over7d  int
	Over30d int
}

// Frac returns n as a fraction of Total (0 when Total is 0).
func (c Classification) Frac(n int) float64 {
	if c.Total == 0 {
		return 0
	}
	return float64(n) / float64(c.Total)
}

// Classify combines exposures and counts threshold exceedances.
func Classify(exps []Exposure) Classification {
	return ClassifyCombined(Combine(exps))
}

// ClassifyCombined counts exceedances over already-combined windows.
func ClassifyCombined(windows map[string]time.Duration) Classification {
	c := Classification{Total: len(windows)}
	day := 24 * time.Hour
	for _, w := range windows {
		if w > day {
			c.Over24h++
		}
		if w > 7*day {
			c.Over7d++
		}
		if w > 30*day {
			c.Over30d++
		}
	}
	return c
}
