package study

import (
	"encoding/hex"
	"sort"

	"tlsshortcuts/internal/faults"
	"tlsshortcuts/internal/scanner"
	"tlsshortcuts/internal/wire"
)

// failKey is one (scan, class) cell of the running failure tally.
type failKey struct {
	scan  string
	class faults.ErrClass
}

// aggregator folds scan results into the Dataset as they are produced,
// so a campaign retains only per-domain aggregates — secret-ID day
// bitmasks, failure tallies, attendance records — instead of per-day
// observation slices. Resident memory is O(domains), not O(domains ×
// days): each day's Observation buffer is reused by the next day (see
// Scanner.DailyInto), and everything BuildReport and the §6
// vulnerability-window model need survives in the aggregates.
type aggregator struct {
	ds    *Dataset
	fails map[failKey]int
}

func newAggregator(ds *Dataset) *aggregator {
	return &aggregator{ds: ds, fails: make(map[failKey]int)}
}

// addFail tallies one failed connection; ClassNone (success) is ignored
// so call sites can pass classifications through unconditionally.
func (a *aggregator) addFail(scan string, c faults.ErrClass) {
	if c != faults.ClassNone {
		a.fails[failKey{scan, c}]++
	}
}

// foldLifetime accounts a lifetime-probe pass's initial-handshake
// failures under the given scan name.
func (a *aggregator) foldLifetime(scan string, prs []scanner.ProbeResult) {
	for _, pr := range prs {
		a.addFail(scan, pr.ErrClass)
	}
}

// foldTicketDay folds one day's two-connection ticket scan: STEK span
// bitmasks, the attendance record behind the consistent core, and the
// failure taxonomy. It returns the day's (first-connection, pair)
// failure counts for span tracing.
func (a *aggregator) foldTicketDay(obs []scanner.Observation, day int) (dayFails, pairFails int) {
	for _, ob := range obs {
		if ob.ErrClass != faults.ClassNone {
			a.addFail("ticket", ob.ErrClass)
			missDay(a.ds, ob.Domain, day)
			dayFails++
		}
		a.addFail("ticket-pair", ob.ErrClass2)
		if ob.ErrClass2 != faults.ClassNone {
			pairFails++
		}
		if ob.OK && ob.Trusted && len(ob.STEKID) > 0 {
			mark(a.ds.STEKSpans, ob.Domain, hex.EncodeToString(ob.STEKID), day)
		}
	}
	return dayFails, pairFails
}

// foldKexDay folds one day's forced-suite key-exchange scan into the
// given span map. Only transient first-connection classes count as
// failures: a forced-suite alert from a server that does not speak the
// suite is a measurement, not a failure.
func (a *aggregator) foldKexDay(obs []scanner.Observation, scan string, kex wire.Kex, spans map[string]map[string]uint64, day int) (dayFails, pairFails int) {
	for _, ob := range obs {
		if faults.Transient(ob.ErrClass) {
			a.addFail(scan, ob.ErrClass)
			dayFails++
		}
		a.addFail(scan+"-pair", ob.ErrClass2)
		if ob.ErrClass2 != faults.ClassNone {
			pairFails++
		}
		if ob.OK && ob.Kex == kex && len(ob.KEXValue) > 0 {
			mark(spans, ob.Domain, valueID(ob.KEXValue), day)
		}
	}
	return dayFails, pairFails
}

// finish materializes the failure tally as the Dataset's sorted table.
func (a *aggregator) finish() {
	if len(a.fails) == 0 {
		return
	}
	for k, n := range a.fails {
		a.ds.Failures = append(a.ds.Failures, FailureCount{Scan: k.scan, Class: string(k.class), Count: n})
	}
	sort.Slice(a.ds.Failures, func(i, j int) bool {
		if a.ds.Failures[i].Scan != a.ds.Failures[j].Scan {
			return a.ds.Failures[i].Scan < a.ds.Failures[j].Scan
		}
		return a.ds.Failures[i].Class < a.ds.Failures[j].Class
	})
}
