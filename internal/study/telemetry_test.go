package study

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"tlsshortcuts/internal/faults"
	"tlsshortcuts/internal/simclock"
	"tlsshortcuts/internal/telemetry"
)

// readGolden returns the committed golden campaign hash.
func readGolden(t *testing.T) string {
	t.Helper()
	want, err := os.ReadFile(filepath.Join("testdata", "campaign_200x8_seed7.sha256"))
	if err != nil {
		t.Fatalf("read golden: %v", err)
	}
	return strings.TrimSpace(string(want))
}

// TestTelemetryObservationallyInert is the tentpole's hard requirement,
// in two parts.
//
// Part 1 — byte inertness: the golden 200×8 campaign must serialize to
// the committed hash with telemetry disabled AND with a registry plus a
// JSONL trace fully enabled. Telemetry observes, never perturbs: it may
// not draw entropy, shift the virtual clock, or reorder probes.
//
// Part 2 — metric determinism: under a fixed non-empty fault plan, the
// deterministic view of the telemetry snapshot (everything outside the
// wall/ prefix) must be identical for 3 and 13 workers. Counters and
// virtual-latency histograms are functions of (seed, fault plan, probe
// schedule), never of goroutine scheduling.
func TestTelemetryObservationallyInert(t *testing.T) {
	if testing.Short() {
		t.Skip("runs four campaigns")
	}
	want := readGolden(t)

	// Part 1: disabled run.
	if got := datasetHash(t, detOpts); got != want {
		t.Fatalf("telemetry-disabled campaign diverged from golden:\n  got  %s\n  want %s", got, want)
	}

	// Part 1: enabled run — registry plus trace writer.
	var trace bytes.Buffer
	o := detOpts
	o.Telemetry = telemetry.NewRegistry()
	o.Trace = &trace
	if got := datasetHash(t, o); got != want {
		t.Fatalf("ENABLED telemetry perturbed the campaign:\n  got  %s\n  want %s", got, want)
	}
	snap := o.Telemetry.Snapshot()
	if snap.Counters[telemetry.CounterProbes] == 0 {
		t.Fatal("enabled registry recorded no probes")
	}
	if snap.Counters["simnet/dials"] != snap.Counters[telemetry.CounterHandshakesStarted] {
		t.Fatalf("dials (%d) != handshakes started (%d)",
			snap.Counters["simnet/dials"], snap.Counters[telemetry.CounterHandshakesStarted])
	}
	if got := snap.Counters[telemetry.CounterDaysCompleted]; got != uint64(detOpts.Days) {
		t.Fatalf("days_completed = %d, want %d", got, detOpts.Days)
	}
	if trace.Len() == 0 {
		t.Fatal("trace writer received no spans")
	}

	// Part 2: fixed fault plan, 3 vs 13 workers.
	fo := &faults.Options{Seed: 11, Refuse: 0.06, Reset: 0.03, Stall: 0.01, Flap: 0.05, Churn: 0.08, ChurnMaxDays: 3}
	base := Options{ListSize: 120, Days: 5, Seed: 7, ProbeTimeout: 120 * time.Millisecond, Faults: fo}
	snaps := make([]*telemetry.Snapshot, 2)
	for i, workers := range []int{3, 13} {
		o := base
		o.Workers = workers
		o.Telemetry = telemetry.NewRegistry()
		if _, err := Run(o); err != nil {
			t.Fatalf("faulted run (%d workers): %v", workers, err)
		}
		snaps[i] = o.Telemetry.Snapshot().Deterministic()
	}
	if !reflect.DeepEqual(snaps[0], snaps[1]) {
		a, _ := json.MarshalIndent(snaps[0], "", "  ")
		b, _ := json.MarshalIndent(snaps[1], "", "  ")
		t.Fatalf("deterministic telemetry differs across worker counts:\n--- 3 workers ---\n%s\n--- 13 workers ---\n%s", a, b)
	}
	if snaps[0].Counters["scanner/retries"] == 0 {
		t.Fatal("faulted campaign recorded no retries")
	}
	foundFault := false
	for name := range snaps[0].Counters {
		if strings.HasPrefix(name, "simnet/faults/") {
			foundFault = true
		}
	}
	if !foundFault {
		t.Fatalf("no simnet fault-kind counters recorded: %v", snaps[0].Counters)
	}
}

// TestScanDayTraceSpans checks the JSONL trace a campaign emits: one
// span per lifetime pass, per scan day, and for the cross-domain pass,
// with the schema fields the operator dashboards would key on.
func TestScanDayTraceSpans(t *testing.T) {
	var trace bytes.Buffer
	o := Options{ListSize: 60, Days: 3, Seed: 7, Workers: 4, Trace: &trace}
	if _, err := Run(o); err != nil {
		t.Fatalf("Run: %v", err)
	}
	spans, err := telemetry.DecodeSpans(&trace)
	if err != nil {
		t.Fatalf("decode trace: %v", err)
	}
	wantPhases := []string{"lifetime-id", "lifetime-ticket", "day", "day", "day", "cross-domain"}
	if len(spans) != len(wantPhases) {
		t.Fatalf("got %d spans, want %d: %+v", len(spans), len(wantPhases), spans)
	}
	for i, s := range spans {
		if s.Phase != wantPhases[i] {
			t.Fatalf("span %d phase = %q, want %q", i, s.Phase, wantPhases[i])
		}
		if s.Days != o.Days || s.Workers != o.Workers {
			t.Fatalf("span %d carries days=%d workers=%d, want %d/%d", i, s.Days, s.Workers, o.Days, o.Workers)
		}
		if s.Handshakes == 0 {
			t.Fatalf("span %d recorded no handshakes: %+v", i, s)
		}
		if s.Phase == "day" {
			if want := i - 2; s.Day != want {
				t.Fatalf("span %d day = %d, want %d", i, s.Day, want)
			}
			// Scan day d runs with the virtual clock at start + d·24h.
			wantDate := simclock.Epoch.Add(time.Duration(s.Day) * 24 * time.Hour).Format(time.RFC3339)
			if s.VirtualDate != wantDate {
				t.Fatalf("span %d virtual date = %q, want %q", i, s.VirtualDate, wantDate)
			}
		} else if s.Day != -1 {
			t.Fatalf("non-day span %d has day %d", i, s.Day)
		}
	}
}

// TestReportRenderingDeterministic is the satellite's regression test:
// the failure table and the telemetry section must render identically
// across calls — Go randomizes map iteration order, so any unsorted map
// walk in either renderer fails this within a few repetitions.
func TestReportRenderingDeterministic(t *testing.T) {
	ds := &Dataset{
		ListSize: 10, Days: 3, TrustedCore: []string{"a.example", "b.example"},
		Operators: map[string]string{"a.example": "opA", "b.example": "opB"},
		Failures: []FailureCount{
			{Scan: "lifetime-ticket", Class: "timeout", Count: 2},
			{Scan: "ticket", Class: "dial", Count: 7},
			{Scan: "ticket-pair", Class: "reset", Count: 1},
		},
	}
	rep := BuildReport(ds)

	reg := telemetry.NewRegistry()
	for _, n := range []string{
		"simnet/dials", "scanner/probes", "wall/scanner/busy_ns",
		"ticket/open_ok", "session/cache_hit", "keyex/reuse_lookups",
		"scanner/errors/timeout", "simnet/faults/refuse", "study/days_completed",
	} {
		reg.Counter(n).Add(uint64(len(n)))
	}
	reg.Histogram("scanner/vlatency/daily|ticket").Observe(250 * time.Millisecond)
	reg.Histogram("wall/scanner/latency/daily|ticket").Observe(80 * time.Microsecond)
	snap := reg.Snapshot()

	table := rep.FailureTable()
	section := TelemetrySection(snap)
	for i := 0; i < 25; i++ {
		if got := rep.FailureTable(); got != table {
			t.Fatalf("FailureTable not deterministic:\n%s\nvs\n%s", table, got)
		}
		if got := TelemetrySection(snap); got != section {
			t.Fatalf("TelemetrySection not deterministic:\n%s\nvs\n%s", section, got)
		}
	}
	// Alignment: the class column must start at the same offset in every
	// failure row, whatever the scan-name lengths.
	var cols []int
	for _, class := range []string{"timeout", "dial", "reset"} {
		for _, line := range strings.Split(strings.TrimRight(table, "\n"), "\n") {
			if i := strings.Index(line, " "+class+" "); i >= 0 {
				cols = append(cols, i)
			}
		}
	}
	if len(cols) != 3 {
		t.Fatalf("expected 3 failure rows in:\n%s", table)
	}
	for _, c := range cols[1:] {
		if c != cols[0] {
			t.Fatalf("failure rows not aligned (class column offsets %v):\n%s", cols, table)
		}
	}
	if !strings.Contains(section, "session/cache_hit") || !strings.Contains(section, "p50") {
		t.Fatalf("telemetry section missing expected content:\n%s", section)
	}
}
