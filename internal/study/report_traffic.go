package study

import (
	"fmt"
	"strings"
	"time"

	"tlsshortcuts/internal/traffic"
)

// Traffic renders the traffic plane's measurements: the measured
// in-window exposure (real connections and bytes joined against the §6
// vulnerability windows) and the per-policy resumption tracking chains.
// Only included in String() when the campaign ran the plane
// (DS.Traffic non-nil).
func (r *Report) Traffic() string {
	tr := r.DS.Traffic
	b := &strings.Builder{}
	fmt.Fprintf(b, "Traffic: measured exposure of %d simulated users over %d day(s)\n",
		tr.Users, tr.Days)

	var conns, failed, full, resumed, viaTicket, viaID, cross, bytes uint64
	for i := range tr.Policies {
		p := &tr.Policies[i]
		conns += p.Conns
		failed += p.Failed
		full += p.Full
		resumed += p.Resumed
		viaTicket += p.ResumedTicket
		viaID += p.ResumedID
		cross += p.CrossHostResumes
		bytes += p.Bytes
	}
	fmt.Fprintf(b, "  connections: %d completed, %d failed; %s resumed (%d tickets, %d session IDs, %d cross-hostname)\n",
		conns, failed, fracPct(resumed, conns), viaTicket, viaID, cross)
	fmt.Fprintf(b, "  bytes: %d application bytes\n", bytes)

	if j := tr.Join; j != nil {
		b.WriteString("  in-window exposure (connections | bytes inside a domain's combined §6 window):\n")
		fmt.Fprintf(b, "    any window: %s | %s\n",
			fracPct(j.Connections.InWindow, j.Connections.Total), fracPct(j.Bytes.InWindow, j.Bytes.Total))
		fmt.Fprintf(b, "    window >24h: %s | %s\n",
			fracPct(j.Connections.Over24h, j.Connections.Total), fracPct(j.Bytes.Over24h, j.Bytes.Total))
		fmt.Fprintf(b, "    window >7d:  %s | %s\n",
			fracPct(j.Connections.Over7d, j.Connections.Total), fracPct(j.Bytes.Over7d, j.Bytes.Total))
		fmt.Fprintf(b, "    window >30d: %s | %s\n",
			fracPct(j.Connections.Over30d, j.Connections.Total), fracPct(j.Bytes.Over30d, j.Bytes.Total))
		for _, pj := range j.PerPolicy {
			fmt.Fprintf(b, "    %-8s any window: %s of connections, %s of bytes\n", pj.Policy,
				fracPct(pj.Connections.InWindow, pj.Connections.Total), fracPct(pj.Bytes.InWindow, pj.Bytes.Total))
		}
	}

	b.WriteString("  resumption tracking chains per browser policy:\n")
	for i := range tr.Policies {
		p := &tr.Policies[i]
		fmt.Fprintf(b, "    %-8s %d users, lifetime %s, cache cap %d: %d chains (%s cross-hostname), longest %d links\n",
			p.Policy.Name, p.Users, p.Policy.Lifetime, p.Policy.CacheCap,
			p.Chains, fracPct(p.CrossChains, p.Chains), p.MaxChainLen)
		fmt.Fprintf(b, "      length   %s\n", histRow(traffic.ChainLenBuckets[:], p.ChainLen[:]))
		fmt.Fprintf(b, "      tracked  %s\n", histRow(traffic.ChainDurBuckets[:], p.ChainDur[:]))
		if p.Chains > 0 {
			mean := time.Duration(p.UnlinkSeconds/p.Chains) * time.Second
			max := time.Duration(p.MaxUnlinkSeconds) * time.Second
			fmt.Fprintf(b, "      time-to-unlinkability: mean %s, max %s\n", mean, max)
		}
	}
	return b.String()
}

func fracPct(n, total uint64) string {
	if total == 0 {
		return "0.0%"
	}
	return fmt.Sprintf("%.1f%%", 100*float64(n)/float64(total))
}

func histRow(labels []string, counts []uint64) string {
	parts := make([]string, len(labels))
	for i, l := range labels {
		parts[i] = fmt.Sprintf("%s:%d", l, counts[i])
	}
	return strings.Join(parts, " ")
}
