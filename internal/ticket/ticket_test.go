package ticket

import (
	"bytes"
	"crypto/rand"
	"testing"
	"time"

	"tlsshortcuts/internal/session"
	"tlsshortcuts/internal/simclock"
)

func testState() *session.State {
	st := &session.State{Version: 0x0303, Suite: 0xC02F, CreatedAt: simclock.Epoch}
	for i := range st.MasterSecret {
		st.MasterSecret[i] = byte(i * 3)
	}
	return st
}

func TestSealOpenRoundTripAllFormats(t *testing.T) {
	st := testState()
	for _, f := range []Format{FormatRFC5077, FormatMbedTLS, FormatSChannel} {
		k := Derive([]byte("round-trip"), f)
		tkt, err := k.Seal(st, rand.Reader)
		if err != nil {
			t.Fatalf("%v: seal: %v", f, err)
		}
		got := k.Open(tkt)
		if got == nil {
			t.Fatalf("%v: open failed", f)
		}
		if got.Suite != st.Suite || got.Version != st.Version ||
			!got.CreatedAt.Equal(st.CreatedAt) || got.MasterSecret != st.MasterSecret {
			t.Errorf("%v: state mismatch after round trip: %+v", f, got)
		}
		// A different key with the same format must not open it.
		if other := Derive([]byte("other"), f); other.Open(tkt) != nil {
			t.Errorf("%v: foreign key opened the ticket", f)
		}
	}
}

func TestTamperRejection(t *testing.T) {
	st := testState()
	for _, f := range []Format{FormatRFC5077, FormatMbedTLS, FormatSChannel} {
		k := Derive([]byte("tamper"), f)
		tkt, err := k.Seal(st, rand.Reader)
		if err != nil {
			t.Fatal(err)
		}
		for _, pos := range []int{0, len(tkt) / 2, len(tkt) - 1} {
			mut := append([]byte(nil), tkt...)
			mut[pos] ^= 0x01
			if k.Open(mut) != nil {
				t.Errorf("%v: accepted ticket with byte %d flipped", f, pos)
			}
		}
		if k.Open(tkt[:len(tkt)-5]) != nil {
			t.Errorf("%v: accepted truncated ticket", f)
		}
		if k.Open(nil) != nil {
			t.Errorf("%v: accepted empty ticket", f)
		}
	}
}

func TestExtractKeyID(t *testing.T) {
	st := testState()

	// RFC 5077: the 16-byte key name leads the ticket.
	k16 := Derive([]byte("a"), FormatRFC5077)
	tkt, err := k16.Seal(st, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	if id := ExtractKeyID(tkt); !bytes.Equal(id, k16.Name) || len(id) != 16 {
		t.Errorf("rfc5077 key ID = %x, want name %x", id, k16.Name)
	}

	// SChannel: magic precedes the 16-byte GUID.
	ks := Derive([]byte("a"), FormatSChannel)
	tkt, err = ks.Seal(st, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	if id := ExtractKeyID(tkt); !bytes.Equal(id, ks.Name) {
		t.Errorf("schannel key ID = %x, want GUID %x", id, ks.Name)
	}
}

func TestDetectKeyID(t *testing.T) {
	st := testState()
	for _, tc := range []struct {
		format Format
		idLen  int
	}{
		{FormatRFC5077, 16},
		{FormatMbedTLS, 4},
		{FormatSChannel, 20},
	} {
		k := Derive([]byte("detect"), tc.format)
		t1, err := k.Seal(st, rand.Reader)
		if err != nil {
			t.Fatal(err)
		}
		t2, err := k.Seal(st, rand.Reader)
		if err != nil {
			t.Fatal(err)
		}
		id := DetectKeyID(t1, t2)
		if len(id) != tc.idLen {
			t.Errorf("%v: key ID length %d, want %d", tc.format, len(id), tc.idLen)
		}
		// Tickets under different keys share no ID — including the
		// SChannel case, where both carry the same 4-byte magic.
		k2 := Derive([]byte("detect-2"), tc.format)
		t3, err := k2.Seal(st, rand.Reader)
		if err != nil {
			t.Fatal(err)
		}
		if id := DetectKeyID(t1, t3); id != nil {
			t.Errorf("%v: cross-key detection returned %x, want nil", tc.format, id)
		}
	}
}

func TestStaticManager(t *testing.T) {
	mgr := NewStatic([]byte("static"), FormatRFC5077)
	now := simclock.Epoch
	tkt, err := mgr.IssuingKey(now).Seal(testState(), rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	// A static key never rotates: still accepted years later.
	if mgr.LookupKey(tkt, now.AddDate(2, 0, 0)) == nil {
		t.Error("static key rejected its own ticket")
	}
	if keys := mgr.ActiveKeys(now); len(keys) != 1 {
		t.Errorf("static manager has %d active keys, want 1", len(keys))
	}
}

func TestRotatingPreviousKeyWindow(t *testing.T) {
	base := simclock.Epoch
	mgr := &Rotating{
		Seed: []byte("rot"), Base: base, Period: 14 * time.Hour,
		AcceptPrevious: 1, Format: FormatRFC5077,
	}
	tkt, err := mgr.IssuingKey(base).Seal(testState(), rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	// Accepted through its own epoch and one successor (Google's 14h+1).
	for _, d := range []time.Duration{time.Hour, 13 * time.Hour, 20 * time.Hour, 27 * time.Hour} {
		if mgr.LookupKey(tkt, base.Add(d)) == nil {
			t.Errorf("ticket rejected at +%v, inside the acceptance window", d)
		}
	}
	// Rejected two epochs later.
	if mgr.LookupKey(tkt, base.Add(29*time.Hour)) != nil {
		t.Error("ticket accepted after the previous-key window closed")
	}
	// Issuing keys differ across epochs.
	k0 := mgr.IssuingKey(base)
	k1 := mgr.IssuingKey(base.Add(14 * time.Hour))
	if bytes.Equal(k0.Name, k1.Name) {
		t.Error("rotation produced identical key names across epochs")
	}
	// Both current and previous keys are active inside an epoch.
	if keys := mgr.ActiveKeys(base.Add(20 * time.Hour)); len(keys) != 2 {
		t.Errorf("active keys = %d, want 2 (current + previous)", len(keys))
	}
}

func TestRotatingDeterminism(t *testing.T) {
	base := simclock.Epoch
	a := &Rotating{Seed: []byte("same"), Base: base, Period: time.Hour, Format: FormatMbedTLS}
	b := &Rotating{Seed: []byte("same"), Base: base, Period: time.Hour, Format: FormatMbedTLS}
	at := base.Add(90 * time.Minute)
	if !bytes.Equal(a.IssuingKey(at).Name, b.IssuingKey(at).Name) {
		t.Error("identically-seeded managers derived different keys")
	}
}
