package scanner

import "testing"

// TestTelemetryMetricLabel pins the histogram-family reduction: per-day
// and per-poll-step segments must fold away so series stay bounded.
func TestTelemetryMetricLabel(t *testing.T) {
	cases := []struct{ in, want string }{
		{"daily|ticket|3|1", "daily|ticket"},
		{"daily|kex0033|17|2", "daily|kex0033"},
		{"lt|id|poll|7200", "lt|id"},
		{"lt|ticket|init", "lt|ticket"},
		{"xd|init", "xd|init"},
		{"xd|probe|example.com", "xd|probe"},
		{"bare", "bare"},
	}
	for _, c := range cases {
		if got := metricLabel(c.in); got != c.want {
			t.Errorf("metricLabel(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}
