package study

import (
	"encoding/json"
	"fmt"
	"sort"

	"tlsshortcuts/internal/cryptanalysis"
	"tlsshortcuts/internal/faults"
	"tlsshortcuts/internal/scanner"
	"tlsshortcuts/internal/traffic"
)

// MergeDatasets recombines a complete set of shard datasets — one Run
// per ShardSpec{i, N} for i in [0, N) over the same campaign options —
// into a dataset byte-identical (as JSON) to the monolithic Run's.
//
// Identity holds because every per-domain field is computed from that
// domain's own probes (entropy, fault decisions, and backend choice are
// keyed on the domain, never on global dial order), each domain belongs
// to exactly one shard, and every cross-shard structure is either a sum
// (snapshots, failure tallies, XD denominators), a disjoint union
// (span maps, missed days), an order-canonicalized sort (lifetime rows
// by rank, failure rows by scan/class), or a union-find closure whose
// edges are fully owned by the initiating domain's shard (cache groups).
// The groups derived purely from spans (STEK/DH groups) are simply
// recomputed from the merged spans with the same functions Run uses.
func MergeDatasets(shards ...*Dataset) (*Dataset, error) {
	if len(shards) == 0 {
		return nil, fmt.Errorf("study: merge needs at least one shard")
	}
	ordered := make([]*Dataset, len(shards))
	for _, sd := range shards {
		if sd == nil {
			return nil, fmt.Errorf("study: merge: nil shard dataset")
		}
		if sd.Shard == nil {
			return nil, fmt.Errorf("study: merge: dataset has no shard spec (monolithic?)")
		}
		if err := sd.Shard.Validate(); err != nil {
			return nil, err
		}
		if sd.Shard.Count != len(shards) {
			return nil, fmt.Errorf("study: merge: got %d shards but spec says %d",
				len(shards), sd.Shard.Count)
		}
		if ordered[sd.Shard.Index] != nil {
			return nil, fmt.Errorf("study: merge: duplicate shard index %d", sd.Shard.Index)
		}
		ordered[sd.Shard.Index] = sd
	}

	first := ordered[0]
	for _, sd := range ordered[1:] {
		if err := compatibleShards(first, sd); err != nil {
			return nil, err
		}
	}

	out := &Dataset{
		ListSize:    first.ListSize,
		Days:        first.Days,
		Seed:        first.Seed,
		ScaleFactor: first.ScaleFactor,
		TrustedCore: first.TrustedCore,
		Operators:   first.Operators,
		Ranks:       first.Ranks,
		STEKSpans:   make(map[string]map[string]uint64),
		DHESpans:    make(map[string]map[string]uint64),
		ECDHESpans:  make(map[string]map[string]uint64),
		FaultPlan:   first.FaultPlan,
	}

	fails := make(map[failKey]int)
	var xd scanner.XDStats
	xdSeen, xdMissing := 0, 0
	for _, sd := range ordered {
		out.TicketSnapshot = addSnapshot(out.TicketSnapshot, sd.TicketSnapshot)
		out.DHESnapshot = addSnapshot(out.DHESnapshot, sd.DHESnapshot)
		out.ECDHESnapshot = addSnapshot(out.ECDHESnapshot, sd.ECDHESnapshot)
		if err := unionSpans(out.STEKSpans, sd.STEKSpans, sd.Shard.Index, "STEK"); err != nil {
			return nil, err
		}
		if err := unionSpans(out.DHESpans, sd.DHESpans, sd.Shard.Index, "DHE"); err != nil {
			return nil, err
		}
		if err := unionSpans(out.ECDHESpans, sd.ECDHESpans, sd.Shard.Index, "ECDHE"); err != nil {
			return nil, err
		}
		for domain, mask := range sd.MissedDays {
			if out.MissedDays == nil {
				out.MissedDays = make(map[string]uint64)
			}
			if _, dup := out.MissedDays[domain]; dup {
				return nil, fmt.Errorf("study: merge: domain %q missed days in two shards", domain)
			}
			out.MissedDays[domain] = mask
		}
		for _, fc := range sd.Failures {
			fails[failKey{fc.Scan, faults.ErrClass(fc.Class)}] += fc.Count
		}
		out.IDLifetime = append(out.IDLifetime, sd.IDLifetime...)
		out.TicketLifetime = append(out.TicketLifetime, sd.TicketLifetime...)
		if sd.XDStats != nil {
			xd.Probed += sd.XDStats.Probed
			xd.Sessioned += sd.XDStats.Sessioned
			xd.InitFailed += sd.XDStats.InitFailed
			xd.ProbeFailed += sd.XDStats.ProbeFailed
			xdSeen++
		} else {
			xdMissing++
		}
		out.Dials += sd.Dials
	}

	// Monolithic order for the lifetime tables is the trusted core's —
	// rank ascending — and ranks are unique, so sorting the concatenated
	// shard rows reproduces it exactly.
	sortByRank(out.IDLifetime, out.Ranks)
	sortByRank(out.TicketLifetime, out.Ranks)

	if len(fails) > 0 {
		a := &aggregator{ds: out, fails: fails}
		a.finish()
	}

	// A shard run always records its XD denominators; the monolithic run
	// records them only when some connection failed. Merge reproduces the
	// monolithic condition.
	if xdSeen > 0 && xdMissing > 0 && (xd.InitFailed > 0 || xd.ProbeFailed > 0) {
		return nil, fmt.Errorf("study: merge: %d shard(s) missing XDStats while others report failures", xdMissing)
	}
	if xd.InitFailed > 0 || xd.ProbeFailed > 0 {
		st := xd
		out.XDStats = &st
	}

	// Cache groups: each shard reports the ≥2-member components of the
	// edges its initiators own. Re-unioning those components as cliques
	// reconstructs the monolithic connected components (singletons never
	// appear in either output, so dropping them per-shard loses nothing).
	uf := scanner.NewUnionFind()
	for _, sd := range ordered {
		for _, g := range sd.CacheGroups {
			for i := 1; i < len(g); i++ {
				uf.Union(g[0], g[i])
			}
		}
	}
	out.CacheGroups = multiSets(uf)
	out.STEKGroups = secretGroups(out.STEKSpans)
	out.DHGroups, out.DHSingleton = dhGroups(out.DHESpans, out.ECDHESpans)

	// Cryptanalysis findings: flat per-domain maps union disjointly and
	// the replay yield sums; either every shard ran the pass or none did.
	crypt, missing := 0, 0
	for _, sd := range ordered {
		if sd.Crypt != nil {
			crypt++
		} else {
			missing++
		}
	}
	if crypt > 0 && missing > 0 {
		return nil, fmt.Errorf("study: merge: %d shard(s) missing cryptanalysis findings while others carry them", missing)
	}
	if crypt > 0 {
		out.Crypt = cryptanalysis.NewFindings()
		for _, sd := range ordered {
			if err := out.Crypt.Merge(sd.Crypt); err != nil {
				return nil, fmt.Errorf("study: merge: %w", err)
			}
		}
	}

	// Traffic plane: per-policy tallies sum over the shards' disjoint
	// user partitions (either every shard ran the plane or none did),
	// then the window join is rebuilt against the merged campaign's
	// windows — a shard's own join only saw its slice's windows.
	tr, trMissing := 0, 0
	for _, sd := range ordered {
		if sd.Traffic != nil {
			tr++
		} else {
			trMissing++
		}
	}
	if tr > 0 && trMissing > 0 {
		return nil, fmt.Errorf("study: merge: %d shard(s) missing traffic results while others carry them", trMissing)
	}
	if tr > 0 {
		merged := &traffic.Results{}
		*merged = *ordered[0].Traffic
		merged.Policies = append([]traffic.PolicyStats(nil), ordered[0].Traffic.Policies...)
		for i := range merged.Policies {
			ps := &merged.Policies[i]
			doms := ps.Domains
			ps.Domains = make(map[string]traffic.DomainTally, len(doms))
			for d, t := range doms {
				ps.Domains[d] = t
			}
		}
		for _, sd := range ordered[1:] {
			if err := merged.Merge(sd.Traffic); err != nil {
				return nil, fmt.Errorf("study: merge: %w", err)
			}
		}
		out.Traffic = merged
		joinTraffic(out)
	}
	return out, nil
}

// compatibleShards rejects shards from different campaigns: every
// world-derived field must match the first shard's exactly.
func compatibleShards(a, b *Dataset) error {
	switch {
	case a.ListSize != b.ListSize:
		return fmt.Errorf("study: merge: ListSize mismatch (%d vs %d)", a.ListSize, b.ListSize)
	case a.Days != b.Days:
		return fmt.Errorf("study: merge: Days mismatch (%d vs %d)", a.Days, b.Days)
	case a.Seed != b.Seed:
		return fmt.Errorf("study: merge: Seed mismatch (%d vs %d)", a.Seed, b.Seed)
	case a.ScaleFactor != b.ScaleFactor:
		return fmt.Errorf("study: merge: ScaleFactor mismatch")
	case len(a.TrustedCore) != len(b.TrustedCore):
		return fmt.Errorf("study: merge: TrustedCore size mismatch")
	case len(a.Ranks) != len(b.Ranks):
		return fmt.Errorf("study: merge: Ranks size mismatch")
	}
	for i := range a.TrustedCore {
		if a.TrustedCore[i] != b.TrustedCore[i] {
			return fmt.Errorf("study: merge: TrustedCore differs at %d", i)
		}
	}
	pa, err := json.Marshal(a.FaultPlan)
	if err != nil {
		return err
	}
	pb, err := json.Marshal(b.FaultPlan)
	if err != nil {
		return err
	}
	if string(pa) != string(pb) {
		return fmt.Errorf("study: merge: fault plans differ")
	}
	return nil
}

// unionSpans moves one shard's span map into the merged map, rejecting
// domains already claimed by another shard — complementary shards never
// observe the same domain, so overlap means the inputs are not a
// partition of one campaign.
func unionSpans(dst, src map[string]map[string]uint64, shard int, kind string) error {
	for domain, ids := range src {
		if _, dup := dst[domain]; dup {
			return fmt.Errorf("study: merge: %s spans for %q in two shards (second: shard %d)", kind, domain, shard)
		}
		dst[domain] = ids
	}
	return nil
}

func addSnapshot(a, b Snapshot) Snapshot {
	return Snapshot{
		Scanned:    a.Scanned + b.Scanned,
		Trusted:    a.Trusted + b.Trusted,
		Support:    a.Support + b.Support,
		Reuse2x:    a.Reuse2x + b.Reuse2x,
		PairFailed: a.PairFailed + b.PairFailed,
	}
}

func sortByRank(prs []scanner.ProbeResult, ranks map[string]int) {
	sort.Slice(prs, func(i, j int) bool {
		return ranks[prs[i].Domain] < ranks[prs[j].Domain]
	})
}
