// Package scanner implements the measurement client of §3: daily
// two-connection ticket scans (STEK identity via key-name prefixing),
// single-connection key-exchange scans, binary-search-free lifetime
// probes in lockstep virtual time, and the cross-domain session
// resumption probes that map shared session caches.
package scanner

import (
	"hash/fnv"
	"math/rand"
	"net"
	"sort"
	"sync"
	"time"

	"tlsshortcuts/internal/pki"
	"tlsshortcuts/internal/simclock"
	"tlsshortcuts/internal/ticket"
	"tlsshortcuts/internal/tlsclient"
	"tlsshortcuts/internal/wire"
)

// Dialer is anything that can open a connection to a domain (in the
// simulation, *simnet.Net).
type Dialer interface {
	Dial(domain string) (net.Conn, error)
}

// Topology exposes the AS/IP neighbor lists the cross-domain probes walk.
type Topology interface {
	SameAS(domain string) []string
	SameIP(domain string) []string
}

// Scanner drives measurement connections through a worker pool.
type Scanner struct {
	Dialer  Dialer
	Roots   *pki.RootStore
	Clock   simclock.Clock
	Workers int
}

func (s *Scanner) workers() int {
	if s.Workers > 0 {
		return s.Workers
	}
	return 8
}

// forEach runs fn(i) for i in [0,n) on the worker pool.
func (s *Scanner) forEach(n int, fn func(i int)) {
	workers := s.workers()
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
}

func (s *Scanner) connect(domain string, cfg *tlsclient.Config) (*tlsclient.Capture, error) {
	conn, err := s.Dialer.Dial(domain)
	if err != nil {
		return nil, err
	}
	defer conn.Close()
	cfg.ServerName = domain
	cfg.Clock = s.Clock
	cfg.Roots = s.Roots
	return tlsclient.Handshake(conn, cfg)
}

// Observation is one domain's result from a daily scan.
type Observation struct {
	Domain       string
	Day          int
	OK           bool
	Trusted      bool
	Suite        uint16
	Kex          wire.Kex
	KEXValue     []byte // server key-exchange public value, first connection
	KEXValue2    []byte // second connection (key-exchange scans only)
	TicketIssued bool
	LifetimeHint time.Duration
	STEKID       []byte // stable ticket-key ID from the two-connection scan
	Err          error
}

// Daily scans each domain once for the given virtual day. With
// offerTicket set it makes the paper's two back-to-back ticket
// connections and derives the STEK ID from the pair; with a non-nil
// suite list it restricts the offered suites (key-exchange scans) and
// makes two connections to detect server value reuse.
func (s *Scanner) Daily(domains []string, day int, suites []uint16, offerTicket bool) []Observation {
	out := make([]Observation, len(domains))
	s.forEach(len(domains), func(i int) {
		o := Observation{Domain: domains[i], Day: day}
		cap1, err := s.connect(domains[i], &tlsclient.Config{Suites: suites, OfferTicket: offerTicket})
		if err != nil {
			o.Err = err
			out[i] = o
			return
		}
		o.OK = true
		o.Trusted = cap1.Trusted
		o.Suite = cap1.CipherSuite
		o.Kex = cap1.KexAlg
		o.KEXValue = cap1.ServerKEXValue
		o.TicketIssued = cap1.TicketIssued
		o.LifetimeHint = cap1.LifetimeHint
		if offerTicket && cap1.TicketIssued {
			if cap2, err := s.connect(domains[i], &tlsclient.Config{Suites: suites, OfferTicket: true}); err == nil && cap2.TicketIssued {
				o.STEKID = ticket.DetectKeyID(cap1.Ticket, cap2.Ticket)
			}
		} else if suites != nil {
			if cap2, err := s.connect(domains[i], &tlsclient.Config{Suites: suites}); err == nil {
				o.KEXValue2 = cap2.ServerKEXValue
			}
		}
		out[i] = o
	})
	return out
}

// ProbeResult is one domain's lifetime-probe outcome.
type ProbeResult struct {
	Domain      string
	OK          bool          // initial handshake succeeded and produced a session
	ResumedAt1s bool          // the 1-second sanity resumption succeeded
	MaxDelay    time.Duration // longest delay at which resumption still worked
	Hint        time.Duration // server's ticket lifetime hint, if any
}

// LifetimeProbe measures how long sessions stay resumable (§3, Figures
// 1-2). All targets are probed in lockstep on the shared virtual clock:
// an initial handshake, a 1 s sanity resumption, then polls every poll up
// to max, stopping each domain at its first failed resumption. Resumption
// always replays the ORIGINAL session, so the result measures the
// server-side lifetime of the first secret, not a sliding refresh.
func (s *Scanner) LifetimeProbe(targets []string, useTicket bool, poll, max time.Duration) []ProbeResult {
	clock, ok := s.Clock.(*simclock.Manual)
	if !ok {
		panic("scanner: LifetimeProbe requires a *simclock.Manual clock")
	}
	start := clock.Now()
	out := make([]ProbeResult, len(targets))
	sessions := make([]*tlsclient.Session, len(targets))
	s.forEach(len(targets), func(i int) {
		out[i].Domain = targets[i]
		cap, err := s.connect(targets[i], &tlsclient.Config{OfferTicket: useTicket})
		if err != nil {
			return
		}
		if useTicket && !cap.TicketIssued {
			return
		}
		if !useTicket && len(cap.SessionID) == 0 {
			return
		}
		out[i].OK = true
		out[i].Hint = cap.LifetimeHint
		sessions[i] = cap.Session
	})

	alive := make([]bool, len(targets))
	probe := func(i int) bool {
		cap, err := s.connect(targets[i], &tlsclient.Config{
			Resume: sessions[i], ResumeViaTicket: useTicket,
		})
		return err == nil && cap.Resumed
	}

	clock.Set(start.Add(time.Second))
	s.forEach(len(targets), func(i int) {
		if out[i].OK && probe(i) {
			out[i].ResumedAt1s = true
			alive[i] = true
		}
	})
	for d := poll; d <= max; d += poll {
		clock.Set(start.Add(d))
		any := false
		s.forEach(len(targets), func(i int) {
			if !alive[i] {
				return
			}
			if probe(i) {
				out[i].MaxDelay = d
			} else {
				alive[i] = false
			}
		})
		for i := range alive {
			if alive[i] {
				any = true
				break
			}
		}
		if !any {
			break
		}
	}
	clock.Set(start)
	return out
}

// CrossDomainGroups maps shared session caches (§5, Table 5): for each
// target it establishes a session, then tries to resume it against up to
// nAS same-AS and nIP same-IP neighbors, unioning every pair that accepts
// a foreign session ID. Candidates are a prefix of a per-domain seeded
// shuffle, so a larger budget strictly extends a smaller one.
func (s *Scanner) CrossDomainGroups(targets []string, topo Topology, nAS, nIP int) *UnionFind {
	inPop := make(map[string]bool, len(targets))
	for _, d := range targets {
		inPop[d] = true
	}
	uf := NewUnionFind()
	var mu sync.Mutex
	s.forEach(len(targets), func(i int) {
		domain := targets[i]
		cap, err := s.connect(domain, &tlsclient.Config{})
		if err != nil || len(cap.SessionID) == 0 {
			return
		}
		cands := seededPrefix(domain, topo.SameAS(domain), nAS)
		cands = append(cands, seededPrefix(domain, topo.SameIP(domain), nIP)...)
		seen := map[string]bool{domain: true}
		for _, cand := range cands {
			if seen[cand] || !inPop[cand] {
				continue
			}
			seen[cand] = true
			if c2, err := s.connect(cand, &tlsclient.Config{Resume: cap.Session}); err == nil && c2.Resumed {
				mu.Lock()
				uf.Union(domain, cand)
				mu.Unlock()
			}
		}
	})
	return uf
}

// seededPrefix returns the first n elements of a deterministic per-domain
// shuffle of list.
func seededPrefix(domain string, list []string, n int) []string {
	if len(list) == 0 || n <= 0 {
		return nil
	}
	h := fnv.New64a()
	h.Write([]byte(domain))
	rng := rand.New(rand.NewSource(int64(h.Sum64())))
	shuffled := append([]string(nil), list...)
	rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
	if n > len(shuffled) {
		n = len(shuffled)
	}
	return shuffled[:n]
}

// UnionFind tracks connected components of domain names.
type UnionFind struct {
	parent map[string]string
}

// NewUnionFind returns an empty structure.
func NewUnionFind() *UnionFind { return &UnionFind{parent: make(map[string]string)} }

// Find returns the component representative, adding x if unseen.
func (u *UnionFind) Find(x string) string {
	p, ok := u.parent[x]
	if !ok {
		u.parent[x] = x
		return x
	}
	if p == x {
		return x
	}
	root := u.Find(p)
	u.parent[x] = root
	return root
}

// Union merges the components of a and b.
func (u *UnionFind) Union(a, b string) {
	ra, rb := u.Find(a), u.Find(b)
	if ra != rb {
		u.parent[rb] = ra
	}
}

// Sets returns the components, each sorted, largest first.
func (u *UnionFind) Sets() [][]string {
	groups := make(map[string][]string)
	for x := range u.parent {
		r := u.Find(x)
		groups[r] = append(groups[r], x)
	}
	out := make([][]string, 0, len(groups))
	for _, g := range groups {
		sort.Strings(g)
		out = append(out, g)
	}
	sort.Slice(out, func(i, j int) bool {
		if len(out[i]) != len(out[j]) {
			return len(out[i]) > len(out[j])
		}
		return out[i][0] < out[j][0]
	})
	return out
}
