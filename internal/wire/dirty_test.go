package wire

import (
	"bytes"
	"reflect"
	"testing"
)

// dirtyCH returns a ClientHello destination pre-filled with garbage, the
// worst case a pooled parse destination can present.
func dirtyCH() *ClientHello {
	d := &ClientHello{
		Suites:      []uint16{0xdead, 0xbeef, 0xcafe},
		ServerName:  "stale.example",
		OfferTicket: true,
		SessionID:   []byte("stale-session"),
		Ticket:      []byte("stale-ticket"),
	}
	for i := range d.Random {
		d.Random[i] = 0xaa
	}
	return d
}

// TestParseIntoDirtyDestinations table-fuzzes the pooled-destination
// parsers: every message variant is parsed both into a zero destination
// and into one dirtied with a previous message's fields, and the results
// must match exactly. Connection recycling hands these parsers reused
// structs on every handshake, so a single field that survives a reparse
// would corrupt a measurement.
func TestParseIntoDirtyDestinations(t *testing.T) {
	chVariants := []*ClientHello{
		{Suites: []uint16{SuiteDHE}},
		{Suites: []uint16{SuiteECDHE, SuiteDHE, SuiteRSA}, ServerName: "x.example"},
		{Suites: []uint16{SuiteECDHE}, SessionID: bytes.Repeat([]byte{7}, 32)},
		{Suites: []uint16{SuiteECDHE}, OfferTicket: true},
		{Suites: []uint16{SuiteECDHE}, OfferTicket: true, Ticket: bytes.Repeat([]byte{9}, 96), ServerName: "y.example"},
	}
	for i, v := range chVariants {
		body := v.AppendTo(nil)[4:]
		var clean ClientHello
		if err := ParseClientHelloInto(&clean, body); err != nil {
			t.Fatalf("ch[%d] clean parse: %v", i, err)
		}
		dirty := dirtyCH()
		if err := ParseClientHelloInto(dirty, body); err != nil {
			t.Fatalf("ch[%d] dirty parse: %v", i, err)
		}
		// Suites reuses the dirty destination's backing array by design;
		// compare contents, then the rest of the struct.
		if !reflect.DeepEqual(clean.Suites, dirty.Suites) {
			t.Fatalf("ch[%d] suites differ: clean %v dirty %v", i, clean.Suites, dirty.Suites)
		}
		clean.Suites, dirty.Suites = nil, nil
		if !reflect.DeepEqual(&clean, dirty) {
			t.Fatalf("ch[%d] dirty destination diverged:\n  clean %+v\n  dirty %+v", i, &clean, dirty)
		}
	}

	shVariants := []*ServerHello{
		{Suite: SuiteDHE},
		{Suite: SuiteECDHE, SessionID: bytes.Repeat([]byte{3}, 32)},
		{Suite: SuiteECDHE, TicketAck: true},
	}
	for i, v := range shVariants {
		body := v.AppendTo(nil)[4:]
		var clean ServerHello
		if err := ParseServerHelloInto(&clean, body); err != nil {
			t.Fatalf("sh[%d] clean parse: %v", i, err)
		}
		dirty := &ServerHello{Suite: 0xdead, SessionID: []byte("stale"), TicketAck: true}
		for j := range dirty.Random {
			dirty.Random[j] = 0xbb
		}
		if err := ParseServerHelloInto(dirty, body); err != nil {
			t.Fatalf("sh[%d] dirty parse: %v", i, err)
		}
		if !reflect.DeepEqual(&clean, dirty) {
			t.Fatalf("sh[%d] dirty destination diverged:\n  clean %+v\n  dirty %+v", i, &clean, dirty)
		}
	}

	skeVariants := []*SKE{
		{Kex: KexECDHE, Public: bytes.Repeat([]byte{4}, 65), Sig: []byte("sig")},
		{Kex: KexDHE, P: bytes.Repeat([]byte{0xfe}, 64), G: []byte{2}, Public: bytes.Repeat([]byte{5}, 64), Sig: []byte("sg2")},
	}
	for i, v := range skeVariants {
		body := v.Marshal().Body
		var clean SKE
		if err := ParseSKEInto(&clean, v.Kex, body); err != nil {
			t.Fatalf("ske[%d] clean parse: %v", i, err)
		}
		dirty := &SKE{Kex: KexDHE, P: []byte("staleP"), G: []byte("staleG"), Public: []byte("stalePub"), Sig: []byte("staleSig")}
		if err := ParseSKEInto(dirty, v.Kex, body); err != nil {
			t.Fatalf("ske[%d] dirty parse: %v", i, err)
		}
		if !reflect.DeepEqual(&clean, dirty) {
			t.Fatalf("ske[%d] dirty destination diverged:\n  clean %+v\n  dirty %+v", i, &clean, dirty)
		}
	}

	chain := [][]byte{bytes.Repeat([]byte{1}, 400), bytes.Repeat([]byte{2}, 300)}
	body := MarshalCertificate(chain).Body
	clean, err := ParseCertificateInto(nil, body)
	if err != nil {
		t.Fatal(err)
	}
	dirty := [][]byte{[]byte("stale-cert-a"), []byte("stale-cert-b"), []byte("stale-cert-c")}
	got, err := ParseCertificateInto(dirty[:0], body)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(clean, got) {
		t.Fatalf("certificate dirty destination diverged: clean %d certs, dirty %d certs", len(clean), len(got))
	}
}

// TestParseIntoTruncatedInputs feeds every truncation of valid messages
// to the pooled-destination parsers with dirty destinations: no prefix
// may panic, and a destination that saw a failed parse must still parse
// the next valid message correctly (the pool does not discard structs
// after an error).
func TestParseIntoTruncatedInputs(t *testing.T) {
	ch := &ClientHello{
		Suites:      []uint16{SuiteECDHE, SuiteDHE},
		ServerName:  "t.example",
		OfferTicket: true,
		SessionID:   bytes.Repeat([]byte{7}, 32),
		Ticket:      bytes.Repeat([]byte{9}, 48),
	}
	chBody := ch.AppendTo(nil)[4:]
	dst := dirtyCH()
	for n := 0; n <= len(chBody); n++ {
		_ = ParseClientHelloInto(dst, chBody[:n]) // must not panic
	}
	if err := ParseClientHelloInto(dst, chBody); err != nil {
		t.Fatalf("parse after truncation storm: %v", err)
	}
	if dst.ServerName != "t.example" || !dst.OfferTicket || len(dst.Suites) != 2 {
		t.Fatalf("destination corrupted by failed parses: %+v", dst)
	}

	sh := &ServerHello{Suite: SuiteECDHE, SessionID: bytes.Repeat([]byte{3}, 32), TicketAck: true}
	shBody := sh.AppendTo(nil)[4:]
	var shDst ServerHello
	for n := 0; n <= len(shBody); n++ {
		_ = ParseServerHelloInto(&shDst, shBody[:n])
	}
	if err := ParseServerHelloInto(&shDst, shBody); err != nil {
		t.Fatalf("ServerHello parse after truncation storm: %v", err)
	}
	if !shDst.TicketAck || shDst.Suite != SuiteECDHE {
		t.Fatalf("ServerHello destination corrupted: %+v", shDst)
	}

	ske := &SKE{Kex: KexDHE, P: bytes.Repeat([]byte{0xfe}, 64), G: []byte{2}, Public: bytes.Repeat([]byte{5}, 64), Sig: []byte("sig")}
	skeBody := ske.Marshal().Body
	var skeDst SKE
	for n := 0; n <= len(skeBody); n++ {
		_ = ParseSKEInto(&skeDst, KexDHE, skeBody[:n])
	}
	certBody := MarshalCertificate([][]byte{bytes.Repeat([]byte{1}, 64)}).Body
	scratch := make([][]byte, 0, 4)
	for n := 0; n <= len(certBody); n++ {
		_, _ = ParseCertificateInto(scratch[:0], certBody[:n])
	}
}
