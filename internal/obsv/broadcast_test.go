package obsv

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestBroadcasterChurn hammers the broadcaster with concurrent
// publishers and aggressively connecting/disconnecting subscribers
// (run under -race in CI). The two properties pinned:
//
//  1. publish never blocks — slow subscribers lose events instead of
//     stalling the publisher (the scan loop's ticker);
//  2. nothing vanishes silently — for every subscriber,
//     delivered + dropped == targeted, and the broadcaster's global
//     drop counter equals the sum of per-subscriber drops.
func TestBroadcasterChurn(t *testing.T) {
	b := newBroadcaster()
	const (
		publishers = 4
		churners   = 8
		duration   = 150 * time.Millisecond
	)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	var published atomic.Uint64

	for p := 0; p < publishers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			msg := []byte(fmt.Sprintf("pub%d", p))
			for {
				select {
				case <-stop:
					return
				default:
					b.publish(msg)
					published.Add(1)
				}
			}
		}(p)
	}

	// Churners subscribe with tiny buffers, read a few events (or
	// none), and bail — the pathological slow-consumer pattern.
	var totalTargeted, totalDelivered, totalDropped atomic.Uint64
	for c := 0; c < churners; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				sub := b.subscribe(1 + c%3)
				reads := c % 5 // some subscribers never read at all
				for r := 0; r < reads; r++ {
					select {
					case <-sub.ch:
					case <-time.After(time.Millisecond):
					}
				}
				b.unsubscribe(sub)
				// Post-unsubscribe the counters are quiescent: no
				// publisher holds a reference once publish's lock section
				// ends, so drain then check the per-subscriber invariant.
				for {
					select {
					case <-sub.ch:
						continue
					default:
					}
					break
				}
				tg, dl, dr := sub.targeted.Load(), sub.delivered.Load(), sub.dropped.Load()
				if dl+dr != tg {
					t.Errorf("subscriber accounting leak: targeted %d != delivered %d + dropped %d", tg, dl, dr)
				}
				totalTargeted.Add(tg)
				totalDelivered.Add(dl)
				totalDropped.Add(dr)
			}
		}(c)
	}

	time.Sleep(duration)
	close(stop)
	wg.Wait()

	pub, dropped, subs := b.counts()
	if subs != 0 {
		t.Errorf("%d subscribers leaked after churn", subs)
	}
	if pub != published.Load() {
		t.Errorf("broadcaster counted %d publishes, publishers made %d", pub, published.Load())
	}
	// Every miss is accounted: global drop counter covers exactly the
	// drops charged to subscribers that completed their lifecycle.
	if got, want := totalDelivered.Load()+totalDropped.Load(), totalTargeted.Load(); got != want {
		t.Errorf("aggregate accounting leak: delivered+dropped %d != targeted %d", got, want)
	}
	if dropped < totalDropped.Load() {
		t.Errorf("global dropped %d < sum of per-subscriber drops %d", dropped, totalDropped.Load())
	}
	if published.Load() == 0 {
		t.Fatal("no publishes happened; test proved nothing")
	}
	t.Logf("published %d, dropped %d, churned subscribers saw %d targeted",
		published.Load(), dropped, totalTargeted.Load())
}

// TestBroadcasterNeverBlocks pins the non-blocking guarantee directly:
// publishing to a full, never-read subscriber completes immediately.
func TestBroadcasterNeverBlocks(t *testing.T) {
	b := newBroadcaster()
	sub := b.subscribe(1)
	defer b.unsubscribe(sub)
	done := make(chan struct{})
	go func() {
		for i := 0; i < 1000; i++ {
			b.publish([]byte("x"))
		}
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("publish blocked on a slow subscriber")
	}
	if tg, dl, dr := sub.targeted.Load(), sub.delivered.Load(), sub.dropped.Load(); dl+dr != tg || dr != 999 || dl != 1 {
		t.Errorf("want 1 delivered + 999 dropped of 1000 targeted, got targeted=%d delivered=%d dropped=%d", tg, dl, dr)
	}
}
