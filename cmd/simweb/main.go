// Command simweb exposes one simulated domain's SSL terminator on a real
// TCP port, so cmd/tlsscan (or any client speaking this repository's TLS
// 1.2 subset) can poke it interactively:
//
//	simweb -domain yahoo.com -listen 127.0.0.1:4433 &
//	tlsscan -addr 127.0.0.1:4433 -sni yahoo.com -conns 3
//
// The terminator keeps its configured shortcuts — session cache, tickets,
// STEK policy, KEX reuse — so resumption and reuse behave exactly as in the
// virtual study, except on the wall clock.
package main

import (
	"flag"
	"log"
	"net"
	"time"

	"tlsshortcuts/internal/population"
	"tlsshortcuts/internal/simclock"
	"tlsshortcuts/internal/tlsserver"
)

func main() {
	var (
		domain   = flag.String("domain", "yahoo.com", "simulated domain whose terminator to expose")
		listen   = flag.String("listen", "127.0.0.1:4433", "listen address")
		listSize = flag.Int("listsize", 2000, "sim world size")
		seed     = flag.Int64("seed", 1, "sim world seed")
	)
	flag.Parse()

	w, err := population.Build(population.Options{
		ListSize: *listSize,
		Seed:     *seed,
		Clock:    simclock.System(),
		Start:    time.Now(),
	})
	if err != nil {
		log.Fatalf("building world: %v", err)
	}
	info := w.Domains[*domain]
	if info == nil || len(info.Terms) == 0 {
		log.Fatalf("domain %q not served in this world", *domain)
	}
	cfg := info.Terms[0].Config

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		log.Fatalf("listen: %v", err)
	}
	log.Printf("serving %s (operator %s) on %s — scan with: tlsscan -addr %s -sni %s",
		*domain, info.Operator, *listen, *listen, *domain)
	log.Printf("behavior: tickets=%v cache=%v stek-period=%v dhe=%v ecdhe=%v",
		info.Terms[0].Behavior.Tickets, info.Terms[0].Behavior.CacheLifetime,
		info.Terms[0].Behavior.STEK.Period, info.Terms[0].Behavior.DHE.Mode,
		info.Terms[0].Behavior.ECDHE.Mode)
	for {
		conn, err := ln.Accept()
		if err != nil {
			log.Fatalf("accept: %v", err)
		}
		go func(c net.Conn) {
			if err := tlsserver.Serve(c, cfg); err != nil {
				log.Printf("connection error: %v", err)
			}
		}(conn)
	}
}
