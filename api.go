// Package tlsshortcuts reproduces "Measuring the Security Harm of TLS
// Crypto Shortcuts" (IMC 2016) against a simulated HTTPS Internet: it
// builds a synthetic population of SSL terminators with realistic
// shortcut policies, runs the paper's nine-week measurement campaign in
// virtual time, and regenerates the tables, figures, and vulnerability
// windows from the resulting dataset.
//
// This root package is a thin façade over the internal packages; see
// cmd/studyrun and cmd/report for the command-line pipeline.
package tlsshortcuts

import (
	"tlsshortcuts/internal/attacker"
	"tlsshortcuts/internal/cryptanalysis"
	"tlsshortcuts/internal/faults"
	"tlsshortcuts/internal/population"
	"tlsshortcuts/internal/scanner"
	"tlsshortcuts/internal/simclock"
	"tlsshortcuts/internal/study"
	"tlsshortcuts/internal/telemetry"
	"tlsshortcuts/internal/vulnwindow"
)

// WorldOptions configures a synthetic population build.
type WorldOptions = population.Options

// StudyOptions configures a measurement campaign.
type StudyOptions = study.Options

// FaultOptions configures deterministic network fault injection for a
// campaign (StudyOptions.Faults). The zero value injects nothing.
type FaultOptions = faults.Options

// ErrClass is the scan-failure taxonomy (dial / timeout / reset / alert /
// protocol) carried in observations and the dataset failure table.
type ErrClass = faults.ErrClass

// ClassifyError maps one scan connection's error into the taxonomy.
func ClassifyError(err error) ErrClass { return faults.Classify(err) }

// Telemetry is the campaign instrumentation registry
// (StudyOptions.Telemetry). Attaching one is proven not to change a
// single dataset byte; its Snapshot carries counters, latency
// histograms, and the wall/-vs-deterministic split.
type Telemetry = telemetry.Registry

// TelemetrySnapshot is a point-in-time copy of a Telemetry registry.
type TelemetrySnapshot = telemetry.Snapshot

// NewTelemetry returns an empty instrumentation registry to pass as
// StudyOptions.Telemetry.
func NewTelemetry() *Telemetry { return telemetry.NewRegistry() }

// World is the simulated population.
type World = population.World

// Dataset is a campaign's serializable measurement output.
type Dataset = study.Dataset

// Report is the analysis layer over a dataset.
type Report = study.Report

// Exposure is one (domain, mechanism) vulnerability window.
type Exposure = vulnwindow.Exposure

// CryptFindings is the per-campaign cryptanalysis output — observed key
// names and IVs, dictionary-cracked STEKs, weak-prime sightings, and the
// measured replay yield. Present on Dataset.Crypt only when
// StudyOptions.WeakCrypto is set.
type CryptFindings = cryptanalysis.Findings

// DecryptionYield counts what an attacker replaying captured traffic
// against recovered STEKs actually decrypts.
type DecryptionYield = attacker.Yield

// Classification buckets combined windows by exceedance threshold.
type Classification = vulnwindow.Classification

// BuildWorld constructs a synthetic population.
func BuildWorld(o WorldOptions) (*World, error) {
	return population.Build(o)
}

// ShardSpec selects one deterministic slice of a campaign's domain list
// (StudyOptions.Shard): shard Index of Count scans the domains at rank
// positions p with p % Count == Index.
type ShardSpec = study.ShardSpec

// RunStudy executes a full measurement campaign — or, when
// StudyOptions.Shard is set, one shard of it.
func RunStudy(o StudyOptions) (*Dataset, error) {
	return study.Run(o)
}

// MergeDatasets recombines a complete set of shard datasets into a
// dataset byte-identical to the monolithic campaign's.
func MergeDatasets(shards ...*Dataset) (*Dataset, error) {
	return study.MergeDatasets(shards...)
}

// MergeTelemetry sums per-shard telemetry snapshots into one
// campaign-wide snapshot.
func MergeTelemetry(shards ...*TelemetrySnapshot) *TelemetrySnapshot {
	return telemetry.MergeSnapshots(shards...)
}

// BuildReport computes exposures, windows, and report sections.
func BuildReport(ds *Dataset) *Report {
	return study.BuildReport(ds)
}

// ClassifyExposures combines per-mechanism exposures into per-domain
// windows and counts threshold exceedances.
func ClassifyExposures(exps []Exposure) Classification {
	return vulnwindow.Classify(exps)
}

// Runner bundles a world with a ready scanner for ad-hoc experiments.
type Runner struct {
	World *World
	Scan  *scanner.Scanner
	Clock simclock.Clock
}

// NewRunner builds a world and wires a scanner to it.
func NewRunner(o StudyOptions) (*Runner, error) {
	world, err := population.Build(population.Options{ListSize: o.ListSize, Seed: o.Seed})
	if err != nil {
		return nil, err
	}
	return &Runner{
		World: world,
		Scan: &scanner.Scanner{
			Dialer:  world.Net,
			Roots:   world.Roots,
			Clock:   world.Clock,
			Workers: o.Workers,
		},
		Clock: world.Clock,
	}, nil
}
