package session

import (
	"encoding/binary"
	"testing"
	"time"
)

func sid(i int) []byte {
	b := make([]byte, 8)
	binary.BigEndian.PutUint64(b, uint64(i))
	return b
}

func TestSweepOnPutEvictsExpiredEntries(t *testing.T) {
	c := NewCache(time.Hour)
	t0 := time.Date(2016, time.March, 2, 0, 0, 0, 0, time.UTC)
	for i := 0; i < 100; i++ {
		c.Put(sid(i), &State{}, t0)
	}
	// 100 more puts two hours later: the first batch is expired, and put
	// number 128 triggers the periodic sweep that removes it.
	t1 := t0.Add(2 * time.Hour)
	for i := 100; i < 200; i++ {
		c.Put(sid(i), &State{}, t1)
	}
	// Inspect the map directly (Len would itself sweep): the Put-time
	// sweep must already have dropped the expired batch.
	c.mu.Lock()
	raw := len(c.entries)
	c.mu.Unlock()
	if raw != 100 {
		t.Fatalf("map holds %d entries after Put-time sweep, want 100", raw)
	}
	if got := c.Len(); got != 100 {
		t.Fatalf("Len() = %d after sweep, want 100 live entries", got)
	}
	if st := c.Get(sid(0), t1); st != nil {
		t.Fatal("Get returned an expired entry")
	}
	if st := c.Get(sid(150), t1); st == nil {
		t.Fatal("Get dropped a live entry")
	}
}

func TestLenReportsLiveEntriesWithoutSweepTrigger(t *testing.T) {
	c := NewCache(time.Hour)
	t0 := time.Date(2016, time.March, 2, 0, 0, 0, 0, time.UTC)
	for i := 0; i < 5; i++ {
		c.Put(sid(i), &State{}, t0)
	}
	// Far fewer than sweepEvery puts, so no periodic sweep has run; Len
	// must still count only entries Get would return at the latest time
	// the cache has seen.
	c.Put(sid(99), &State{}, t0.Add(2*time.Hour))
	if got := c.Len(); got != 1 {
		t.Fatalf("Len() = %d, want 1 live entry", got)
	}
}

func TestZeroLifetimeNeverExpires(t *testing.T) {
	c := NewCache(0)
	t0 := time.Date(2016, time.March, 2, 0, 0, 0, 0, time.UTC)
	for i := 0; i < 300; i++ {
		c.Put(sid(i), &State{}, t0.Add(time.Duration(i)*time.Hour))
	}
	if got := c.Len(); got != 300 {
		t.Fatalf("Len() = %d with zero lifetime, want 300", got)
	}
	if st := c.Get(sid(0), t0.Add(1000*time.Hour)); st == nil {
		t.Fatal("zero-lifetime cache expired an entry")
	}
}

func TestGetEvictsExpiredEntry(t *testing.T) {
	c := NewCache(time.Hour)
	t0 := time.Date(2016, time.March, 2, 0, 0, 0, 0, time.UTC)
	c.Put(sid(1), &State{}, t0)
	if st := c.Get(sid(1), t0.Add(30*time.Minute)); st == nil {
		t.Fatal("entry expired too early")
	}
	if st := c.Get(sid(1), t0.Add(2*time.Hour)); st != nil {
		t.Fatal("expired entry returned")
	}
	if got := c.Len(); got != 0 {
		t.Fatalf("Len() = %d after expiry eviction, want 0", got)
	}
}
