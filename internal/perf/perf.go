// Package perf holds the process-wide switches for the campaign engine's
// performance layers. Every switch defaults to on; the equivalence tests
// flip them off to prove the fast paths are observationally identical to
// the straightforward ones (same seed -> byte-identical Dataset).
//
// The switches exist for verification only — production code never turns
// them off.
package perf

import "sync/atomic"

var (
	cryptoCaches   atomic.Bool // epoch-keyed KEX caches, cert-marshal/parse caches
	clientKexReuse atomic.Bool // scanner reuses its client-side ephemeral keys
	bufferedPipes  atomic.Bool // simnet dials buffered pipes instead of net.Pipe
	reportMemoized atomic.Bool // study.BuildReport memoizes per Dataset
	kexOnlyProbes  atomic.Bool // forced-suite scans disconnect after the SKE
)

func init() {
	cryptoCaches.Store(true)
	clientKexReuse.Store(true)
	bufferedPipes.Store(true)
	reportMemoized.Store(true)
	kexOnlyProbes.Store(true)
}

// CryptoCaches reports whether the epoch-keyed crypto caches are enabled.
func CryptoCaches() bool { return cryptoCaches.Load() }

// SetCryptoCaches toggles the epoch-keyed crypto caches (tests only).
func SetCryptoCaches(on bool) { cryptoCaches.Store(on) }

// ClientKexReuse reports whether the scanner reuses client KEX keys.
func ClientKexReuse() bool { return clientKexReuse.Load() }

// SetClientKexReuse toggles scanner client-key reuse (tests only).
func SetClientKexReuse(on bool) { clientKexReuse.Store(on) }

// BufferedPipes reports whether simnet uses the buffered transport.
func BufferedPipes() bool { return bufferedPipes.Load() }

// SetBufferedPipes toggles the buffered transport (tests only).
func SetBufferedPipes(on bool) { bufferedPipes.Store(on) }

// ReportMemoized reports whether BuildReport memoizes per Dataset.
func ReportMemoized() bool { return reportMemoized.Load() }

// SetReportMemoized toggles BuildReport memoization (tests only).
func SetReportMemoized(on bool) { reportMemoized.Store(on) }

// KexOnlyProbes reports whether key-exchange scans stop after capturing
// the ServerKeyExchange (zgrab-style) instead of completing the
// handshake. Everything those scans record is on the wire before the
// client's first flight, so the abbreviated probe observes exactly what
// the full handshake would.
func KexOnlyProbes() bool { return kexOnlyProbes.Load() }

// SetKexOnlyProbes toggles SKE-and-disconnect probing (tests only).
func SetKexOnlyProbes(on bool) { kexOnlyProbes.Store(on) }
