package ticket

import (
	"bytes"
	"crypto/rand"
	"testing"
)

// stekNamed builds a key with a caller-chosen name and key material, for
// adversarial DetectKeyID inputs Derive cannot produce.
func stekNamed(name []byte, aesSeed byte, f Format) *STEK {
	k := &STEK{Format: f, Name: append([]byte(nil), name...)}
	for i := range k.AESKey {
		k.AESKey[i] = aesSeed ^ byte(i)
	}
	for i := range k.MACKey {
		k.MACKey[i] = aesSeed ^ byte(i*7)
	}
	return k
}

// Regression: two RFC 5077 tickets under different keys whose 16-byte
// names merely share a few leading bytes must not yield a bogus 4-byte
// ID. The pre-clamp heuristic returned t1[:4] for any LCP >= 4.
func TestDetectKeyIDRejectsPartialNameMatch(t *testing.T) {
	st := testState()
	n1 := []byte("vendAAAAAAAAAAAA") // 16 bytes, shared "vend" prefix
	n2 := []byte("vendBBBBBBBBBBBB")
	k1 := stekNamed(n1, 0x11, FormatRFC5077)
	k2 := stekNamed(n2, 0x22, FormatRFC5077)
	t1, err := k1.Seal(st, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	t2, err := k2.Seal(st, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	if id := DetectKeyID(t1, t2); id != nil {
		t.Errorf("different 16-byte names sharing a 4-byte prefix produced ID %x, want nil", id)
	}
}

// Regression: an mbedTLS pair whose LCP runs past the 4-byte name into
// shared IV bytes must clamp the ID to the name length. The pre-clamp
// heuristic inflated any LCP >= 16 into a 16-byte ID containing IV (and
// here even length-field) bytes, splitting one key into per-IV "keys" —
// or, under a fixed-IV sealer, merging unrelated domains.
func TestDetectKeyIDClampsToNameLen(t *testing.T) {
	st := testState()
	name := []byte{0xde, 0xad, 0xbe, 0xef}
	k1 := stekNamed(name, 0x33, FormatMbedTLS)
	k2 := stekNamed(name, 0x44, FormatMbedTLS) // same wire name, different key

	// Both seals draw the same IV, so the LCP spans name+IV+len field
	// before the ciphertexts (different AES keys) diverge.
	iv := bytes.Repeat([]byte{0x5a}, 16)
	t1, err := k1.Seal(st, bytes.NewReader(iv))
	if err != nil {
		t.Fatal(err)
	}
	t2, err := k2.Seal(st, bytes.NewReader(iv))
	if err != nil {
		t.Fatal(err)
	}
	lcp := 0
	for lcp < len(t1) && t1[lcp] == t2[lcp] {
		lcp++
	}
	if lcp < 16 {
		t.Fatalf("test setup: LCP %d does not reach the legacy 16-byte threshold", lcp)
	}
	id := DetectKeyID(t1, t2)
	if !bytes.Equal(id, name) {
		t.Errorf("DetectKeyID = %x, want the 4-byte name %x", id, name)
	}

	// Same key with a fixed IV: still exactly the name, never name+IV.
	k1b := stekNamed(name, 0x33, FormatMbedTLS)
	t3, err := k1b.Seal(st, bytes.NewReader(iv))
	if err != nil {
		t.Fatal(err)
	}
	if id := DetectKeyID(t1, t3); !bytes.Equal(id, name) {
		t.Errorf("same-key fixed-IV pair: DetectKeyID = %x, want %x", id, name)
	}
}

func TestFormatOfAndAccessors(t *testing.T) {
	st := testState()
	for _, f := range []Format{FormatRFC5077, FormatMbedTLS, FormatSChannel} {
		k := Derive([]byte("fmt"), f)
		tkt, err := k.Seal(st, rand.Reader)
		if err != nil {
			t.Fatal(err)
		}
		got, ok := FormatOf(tkt)
		if !ok || got != f {
			t.Errorf("FormatOf(%v ticket) = %v, %v", f, got, ok)
		}
		if !bytes.Equal(KeyName(tkt), k.Name) {
			t.Errorf("%v: KeyName = %x, want %x", f, KeyName(tkt), k.Name)
		}
		if iv := IVOf(tkt); len(iv) != 16 {
			t.Errorf("%v: IVOf length %d, want 16", f, len(iv))
		}
	}
	if f, ok := FormatOf([]byte("short")); ok {
		t.Errorf("FormatOf accepted junk as %v", f)
	}
	if KeyName([]byte("short")) != nil || IVOf([]byte("short")) != nil {
		t.Error("accessors returned data for an unrecognized layout")
	}
}

func TestWeakIVSealsAreDeterministic(t *testing.T) {
	st := testState()
	k := Derive([]byte("weak-iv"), FormatMbedTLS)
	k.WeakIV = true
	t1, err := k.Seal(st, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	t2, err := k.Seal(st, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(t1, t2) {
		t.Error("WeakIV seals of identical state differ — IV not fixed")
	}
	if k.Open(t1) == nil {
		t.Error("WeakIV ticket failed to open under its own key")
	}
	// A normally-derived twin draws random IVs and must not collide.
	k2 := Derive([]byte("weak-iv"), FormatMbedTLS)
	t3, err := k2.Seal(st, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(IVOf(t1), IVOf(t3)) {
		t.Error("random-IV seal reproduced the weak IV")
	}
}
