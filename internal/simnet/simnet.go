// Package simnet is the simulated Internet's plumbing: a registry of
// domains bound to SSL-terminator backends, a dialer that returns real
// net.Conn pipes (spawning the server side per connection), load-balancer
// fan-out without client affinity, and the AS/IP topology the
// cross-domain resumption probes walk.
package simnet

import (
	"fmt"
	"hash/fnv"
	"net"
	"sort"
	"sync"
	"sync/atomic"

	"tlsshortcuts/internal/perf"
	"tlsshortcuts/internal/tlsserver"
)

// Endpoint is one terminator backend.
type Endpoint struct {
	Config *tlsserver.Config
}

type binding struct {
	backends []*Endpoint
	as       int
	ips      []string
	// dialSeq is per-domain so the k-th connection to a domain always
	// lands on the same backend regardless of how dials to other
	// domains interleave — which keeps A-record jitter deterministic
	// for a deterministic probe schedule.
	dialSeq atomic.Uint64
}

// Net is the address space and dialer.
type Net struct {
	mu      sync.RWMutex
	domains map[string]*binding
	byAS    map[int][]string
	byIP    map[string][]string
	dials   atomic.Uint64
}

// New returns an empty network.
func New() *Net {
	return &Net{
		domains: make(map[string]*binding),
		byAS:    make(map[int][]string),
		byIP:    make(map[string][]string),
	}
}

// Register binds a domain to its AS, IPs, and backends.
func (n *Net) Register(domain string, as int, ips []string, backends ...*Endpoint) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.domains[domain] = &binding{backends: backends, as: as, ips: ips}
	n.byAS[as] = append(n.byAS[as], domain)
	for _, ip := range ips {
		n.byIP[ip] = append(n.byIP[ip], domain)
	}
}

// HasDomain reports whether the domain resolves.
func (n *Net) HasDomain(domain string) bool {
	n.mu.RLock()
	defer n.mu.RUnlock()
	_, ok := n.domains[domain]
	return ok
}

// Domains returns every registered name, sorted.
func (n *Net) Domains() []string {
	n.mu.RLock()
	defer n.mu.RUnlock()
	out := make([]string, 0, len(n.domains))
	for d := range n.domains {
		out = append(out, d)
	}
	sort.Strings(out)
	return out
}

// Dial opens a connection to the domain. The backend is chosen without
// client affinity: successive dials may land on different terminators,
// exactly the balancer behavior that frustrates naive run-length metrics.
func (n *Net) Dial(domain string) (net.Conn, error) {
	n.mu.RLock()
	b, ok := n.domains[domain]
	n.mu.RUnlock()
	if !ok || len(b.backends) == 0 {
		return nil, fmt.Errorf("simnet: no route to %q", domain)
	}
	n.dials.Add(1)
	seq := b.dialSeq.Add(1)
	h := fnv.New64a()
	h.Write([]byte(domain))
	var buf [8]byte
	for i := 0; i < 8; i++ {
		buf[i] = byte(seq >> (8 * i))
	}
	h.Write(buf[:])
	// FNV's low bits alternate for consecutive sequence numbers; run the
	// sum through a 64-bit finalizer so back-to-back dials pick
	// independently.
	ep := b.backends[mix64(h.Sum64())%uint64(len(b.backends))]
	var cli, srv net.Conn
	if perf.BufferedPipes() {
		cli, srv = NewBufferedPipe()
	} else {
		cli, srv = net.Pipe()
	}
	go func() {
		defer srv.Close()
		_ = tlsserver.Serve(srv, ep.Config)
	}()
	return cli, nil
}

// DialCount returns the number of connections opened so far — the
// campaign benchmarks divide it by wall time for handshakes/sec.
func (n *Net) DialCount() uint64 { return n.dials.Load() }

// mix64 is the splitmix64 finalizer.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// SameAS returns the other domains announced from the domain's AS,
// sorted (the scanner samples a prefix of a seeded shuffle).
func (n *Net) SameAS(domain string) []string {
	n.mu.RLock()
	defer n.mu.RUnlock()
	b, ok := n.domains[domain]
	if !ok {
		return nil
	}
	return others(n.byAS[b.as], domain)
}

// SameIP returns the other domains sharing any of the domain's IPs.
func (n *Net) SameIP(domain string) []string {
	n.mu.RLock()
	defer n.mu.RUnlock()
	b, ok := n.domains[domain]
	if !ok {
		return nil
	}
	seen := map[string]bool{domain: true}
	var out []string
	for _, ip := range b.ips {
		for _, d := range n.byIP[ip] {
			if !seen[d] {
				seen[d] = true
				out = append(out, d)
			}
		}
	}
	sort.Strings(out)
	return out
}

func others(list []string, self string) []string {
	out := make([]string, 0, len(list))
	for _, d := range list {
		if d != self {
			out = append(out, d)
		}
	}
	sort.Strings(out)
	return out
}
