// Package session holds the server-side TLS session state: the resumable
// State blob (what a ticket seals, what a cache entry stores) and the
// session cache with a lifetime policy. A single Cache instance shared by
// many terminators models the cross-domain cache groups of §5.
package session

import (
	"encoding/binary"
	"fmt"
	"sync"
	"time"

	"tlsshortcuts/internal/telemetry"
)

// State is the resumable session state. Its serialization is the RFC 5077
// "StatePlaintext" analog that tickets encrypt.
type State struct {
	Version      uint16
	Suite        uint16
	CreatedAt    time.Time
	MasterSecret [48]byte
}

const stateLen = 2 + 2 + 8 + 48

// Marshal serializes the state for sealing into a ticket.
func (s *State) Marshal() []byte {
	return s.AppendMarshal(make([]byte, 0, stateLen))
}

// AppendMarshal appends the serialized state to dst, so a ticket seal
// can marshal straight into the outgoing message buffer.
func (s *State) AppendMarshal(dst []byte) []byte {
	var out [stateLen]byte
	binary.BigEndian.PutUint16(out[0:2], s.Version)
	binary.BigEndian.PutUint16(out[2:4], s.Suite)
	binary.BigEndian.PutUint64(out[4:12], uint64(s.CreatedAt.Unix()))
	copy(out[12:], s.MasterSecret[:])
	return append(dst, out[:]...)
}

// MarshaledLen is the fixed serialized length of a State.
const MarshaledLen = stateLen

// Unmarshal reverses Marshal.
func Unmarshal(b []byte) (*State, error) {
	s := &State{}
	if err := UnmarshalInto(s, b); err != nil {
		return nil, err
	}
	return s, nil
}

// UnmarshalInto is Unmarshal decoding into caller-owned storage, for the
// server's pooled per-connection ticket scratch.
func UnmarshalInto(dst *State, b []byte) error {
	if len(b) != stateLen {
		return fmt.Errorf("session: bad state length %d", len(b))
	}
	dst.Version = binary.BigEndian.Uint16(b[0:2])
	dst.Suite = binary.BigEndian.Uint16(b[2:4])
	dst.CreatedAt = time.Unix(int64(binary.BigEndian.Uint64(b[4:12])), 0).UTC()
	copy(dst.MasterSecret[:], b[12:])
	return nil
}

// Cache is a server-side session cache (ID -> State) with a lifetime
// policy. The zero Lifetime means entries never expire by age.
//
// Expired entries are evicted on Get and by a periodic sweep piggybacked
// on Put (every sweepEvery inserts): without the sweep, sessions never
// re-touched — the overwhelming majority in a scan campaign — would
// accumulate for the campaign's whole lifetime. The sweep only removes
// entries Get would already refuse to return, so it is observationally
// inert.
//
// Capacity, when positive, bounds the cache to that many entries with
// LRU eviction — the traffic plane's browser cache caps. "Least
// recently used" orders by last-use virtual time (Put or Get hit), with
// ties broken by touch order, so eviction is deterministic for a
// deterministic operation sequence even when the virtual clock stands
// still or rewinds. Campaign server caches leave Capacity zero
// (unbounded), keeping the golden dataset untouched.
type Cache struct {
	Lifetime time.Duration
	Capacity int

	mu      sync.Mutex
	entries map[string]entry
	puts    int       // Put count, for sweep scheduling
	seq     uint64    // touch sequence, for deterministic LRU ties
	lastNow time.Time // most recent time passed to Put/Get
}

// sweepEvery is how many Puts pass between expiry sweeps; the amortized
// sweep cost per insert stays O(1) while dead state is bounded by one
// sweep window.
const sweepEvery = 128

type entry struct {
	st      *State
	created time.Time
	used    time.Time // last Put/Get-hit virtual time (LRU ordering)
	seq     uint64    // touch sequence (LRU tie-break)
}

// NewCache builds a cache with the given entry lifetime.
func NewCache(lifetime time.Duration) *Cache {
	return &Cache{Lifetime: lifetime, entries: make(map[string]entry)}
}

// NewBoundedCache builds a cache with a lifetime and an LRU capacity
// bound — the shape a browser-policy client session store uses.
func NewBoundedCache(lifetime time.Duration, capacity int) *Cache {
	return &Cache{Lifetime: lifetime, Capacity: capacity, entries: make(map[string]entry)}
}

// Put stores state under id at time now.
func (c *Cache) Put(id []byte, st *State, now time.Time) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.entries == nil {
		c.entries = make(map[string]entry)
	}
	c.seq++
	c.entries[string(id)] = entry{st: st, created: now, used: now, seq: c.seq}
	c.lastNow = now
	c.puts++
	telemetry.Global().Counter("session/cache_put").Inc()
	if c.Lifetime > 0 && c.puts%sweepEvery == 0 {
		c.sweepLocked(now)
	}
	if c.Capacity > 0 && len(c.entries) > c.Capacity {
		// Expired entries go first — they are free to drop — then LRU.
		if c.Lifetime > 0 {
			c.sweepLocked(now)
		}
		for len(c.entries) > c.Capacity {
			c.evictLRULocked()
		}
	}
}

// evictLRULocked removes the least-recently-used entry: oldest last-use
// virtual time, ties broken by oldest touch sequence. Callers hold c.mu
// and guarantee the map is non-empty.
func (c *Cache) evictLRULocked() {
	var victim string
	var vUsed time.Time
	var vSeq uint64
	first := true
	for k, e := range c.entries {
		if first || e.used.Before(vUsed) || (e.used.Equal(vUsed) && e.seq < vSeq) {
			victim, vUsed, vSeq = k, e.used, e.seq
			first = false
		}
	}
	delete(c.entries, victim)
	telemetry.Global().Counter("session/cache_evicted").Inc()
}

// Get returns the live state for id at time now, or nil if absent or
// expired (expired entries are evicted). A hit refreshes the entry's
// LRU position.
func (c *Cache) Get(id []byte, now time.Time) *State {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.lastNow = now
	e, ok := c.entries[string(id)]
	if !ok {
		// "stale" covers both never-stored and already-evicted lookups:
		// whether an expired entry was swept or is caught here depends on
		// sweep timing, so only the combined count is deterministic.
		telemetry.Global().Counter("session/cache_stale").Inc()
		return nil
	}
	if c.Lifetime > 0 && now.Sub(e.created) > c.Lifetime {
		delete(c.entries, string(id))
		tel := telemetry.Global()
		tel.Counter("session/cache_stale").Inc()
		tel.Counter("wall/session/cache_expired_get").Inc()
		return nil
	}
	c.seq++
	e.used, e.seq = now, c.seq
	c.entries[string(id)] = e
	telemetry.Global().Counter("session/cache_hit").Inc()
	return e.st
}

// sweepLocked drops every entry that Get would refuse at time now.
// Callers hold c.mu.
func (c *Cache) sweepLocked(now time.Time) {
	swept := uint64(0)
	for k, e := range c.entries {
		if now.Sub(e.created) > c.Lifetime {
			delete(c.entries, k)
			swept++
		}
	}
	if swept > 0 {
		// Sweep timing depends on Put interleaving, hence wall/.
		telemetry.Global().Counter("wall/session/cache_swept").Add(swept)
	}
}

// Len reports the number of live entries as of the most recent time the
// cache was told about (the lifetime probes rewind the virtual clock, so
// the cache tracks the latest Put/Get time rather than calling time.Now).
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.Lifetime > 0 {
		c.sweepLocked(c.lastNow)
	}
	return len(c.entries)
}
