package simnet

import (
	"testing"

	"tlsshortcuts/internal/faults"
	"tlsshortcuts/internal/simclock"
	"tlsshortcuts/internal/telemetry"
)

// TestTelemetryDialCounters: an installed registry must see every dial,
// the chosen backend index, no-route errors, and injected fault kinds —
// and dial outcomes must not change because a registry is watching.
func TestTelemetryDialCounters(t *testing.T) {
	n := faultNet()
	reg := telemetry.NewRegistry()
	n.SetTelemetry(reg)

	c, err := n.Dial("a.example")
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	c.Close()
	if got := reg.Value("simnet/dials"); got != 1 {
		t.Fatalf("simnet/dials = %d, want 1", got)
	}
	if got := reg.Value("simnet/backend/0"); got != 1 {
		t.Fatalf("simnet/backend/0 = %d, want 1", got)
	}

	if _, err := n.Dial("nonexistent.example"); err == nil {
		t.Fatal("dial to an unregistered domain succeeded")
	}
	if got := reg.Value("simnet/dial_errors"); got != 1 {
		t.Fatalf("simnet/dial_errors = %d, want 1", got)
	}

	clock := simclock.NewManual(simclock.Epoch)
	n.SetFaults(faults.NewPlan(faults.Options{Seed: 1, Refuse: 1}, clock))
	if _, err := n.DialProbe("a.example", "probe"); err == nil {
		t.Fatal("Refuse=1 plan let a dial through")
	}
	if got := reg.Value("simnet/faults/refuse"); got != 1 {
		t.Fatalf("simnet/faults/refuse = %d, want 1", got)
	}
	// A refused dial is still a dial: it routes, picks a backend, and
	// only then hits the fault decision.
	if got := reg.Value("simnet/dials"); got != 2 {
		t.Fatalf("simnet/dials after refused dial = %d, want 2", got)
	}

	// Clearing the registry restores the uninstrumented path.
	n.SetTelemetry(nil)
	n.SetFaults(nil)
	c, err = n.Dial("a.example")
	if err != nil {
		t.Fatalf("dial after clearing telemetry: %v", err)
	}
	c.Close()
	if got := reg.Value("simnet/dials"); got != 2 {
		t.Fatalf("cleared registry still counted: dials = %d", got)
	}
}
