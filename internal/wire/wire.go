// Package wire encodes and decodes the TLS 1.2 handshake messages and
// extensions this repository's engines speak: ClientHello, ServerHello,
// Certificate, ServerKeyExchange, ServerHelloDone, ClientKeyExchange,
// Finished, NewSessionTicket, plus the SNI and session-ticket extensions.
package wire

import (
	"encoding/binary"
	"fmt"
	"sync"
	"time"
)

// Cipher suites (TLS registry values; the study offers restricted subsets
// to isolate each key-exchange family, exactly like the paper's zgrab).
const (
	SuiteECDHE uint16 = 0xC02B // ECDHE-ECDSA-AES128-GCM-SHA256
	SuiteDHE   uint16 = 0x009E // DHE-AES128-GCM-SHA256
	SuiteRSA   uint16 = 0x009C // RSA-AES128-GCM-SHA256
)

// SuiteName renders a cipher-suite value for humans.
func SuiteName(s uint16) string {
	switch s {
	case SuiteECDHE:
		return "ECDHE-ECDSA-AES128-GCM-SHA256"
	case SuiteDHE:
		return "DHE-AES128-GCM-SHA256"
	case SuiteRSA:
		return "RSA-AES128-GCM-SHA256"
	case 0xC02F:
		return "ECDHE-RSA-AES128-GCM-SHA256"
	default:
		return fmt.Sprintf("0x%04X", s)
	}
}

// Kex identifies the key-exchange family of a negotiated suite.
type Kex uint8

const (
	KexNone Kex = iota
	KexDHE
	KexECDHE
	KexRSA
)

func (k Kex) String() string {
	switch k {
	case KexDHE:
		return "DHE"
	case KexECDHE:
		return "ECDHE"
	case KexRSA:
		return "RSA"
	}
	return "none"
}

// SuiteKex maps a suite to its KEX family.
func SuiteKex(s uint16) Kex {
	switch s {
	case SuiteECDHE:
		return KexECDHE
	case SuiteDHE:
		return KexDHE
	case SuiteRSA:
		return KexRSA
	}
	return KexNone
}

// Handshake message types.
const (
	TypeClientHello       uint8 = 1
	TypeServerHello       uint8 = 2
	TypeNewSessionTicket  uint8 = 4
	TypeCertificate       uint8 = 11
	TypeServerKeyExchange uint8 = 12
	TypeServerHelloDone   uint8 = 14
	TypeClientKeyExchange uint8 = 16
	TypeFinished          uint8 = 20
)

// Extension numbers.
const (
	ExtSNI           uint16 = 0
	ExtSessionTicket uint16 = 35
)

// VersionTLS12 is the only protocol version the engines negotiate.
const VersionTLS12 uint16 = 0x0303

// Msg is one handshake message: type byte plus body (header excluded).
type Msg struct {
	Type uint8
	Body []byte
}

// Marshal frames the message with its 4-byte handshake header.
func (m *Msg) Marshal() []byte {
	out := make([]byte, 4+len(m.Body))
	out[0] = m.Type
	putUint24(out[1:4], len(m.Body))
	copy(out[4:], m.Body)
	return out
}

// AppendTo appends the framed message (header plus body) to dst. The
// engines marshal every handshake message into per-connection scratch
// through the Append flavors; the Marshal forms remain for the attacker
// and tests, where a fresh slice per message is the clearer API.
func (m *Msg) AppendTo(dst []byte) []byte {
	dst = append(dst, m.Type, byte(len(m.Body)>>16), byte(len(m.Body)>>8), byte(len(m.Body)))
	return append(dst, m.Body...)
}

// ParseMsgs splits a concatenation of handshake messages.
func ParseMsgs(b []byte) ([]Msg, error) {
	var out []Msg
	for len(b) > 0 {
		if len(b) < 4 {
			return nil, fmt.Errorf("wire: short handshake header")
		}
		n := uint24(b[1:4])
		if len(b) < 4+n {
			return nil, fmt.Errorf("wire: truncated handshake message")
		}
		out = append(out, Msg{Type: b[0], Body: b[4 : 4+n]})
		b = b[4+n:]
	}
	return out, nil
}

func putUint24(b []byte, v int) {
	b[0], b[1], b[2] = byte(v>>16), byte(v>>8), byte(v)
}
func uint24(b []byte) int { return int(b[0])<<16 | int(b[1])<<8 | int(b[2]) }

// ---- ClientHello ----

type ClientHello struct {
	Random      [32]byte
	SessionID   []byte
	Suites      []uint16
	ServerName  string
	OfferTicket bool   // include an (empty or filled) session_ticket ext
	Ticket      []byte // non-empty: resume via this ticket
}

func (h *ClientHello) Marshal() *Msg {
	b := newBuilder()
	b.u16(VersionTLS12)
	b.raw(h.Random[:])
	b.vec8(h.SessionID)
	b.u16(uint16(2 * len(h.Suites)))
	for _, s := range h.Suites {
		b.u16(s)
	}
	b.raw([]byte{1, 0}) // compression: null only
	ext := newBuilder()
	if h.ServerName != "" {
		sni := newBuilder()
		inner := newBuilder()
		inner.byte(0)
		inner.vec16([]byte(h.ServerName))
		sni.vec16(inner.bytes())
		ext.u16(ExtSNI)
		ext.vec16(sni.bytes())
	}
	if h.OfferTicket || len(h.Ticket) > 0 {
		ext.u16(ExtSessionTicket)
		ext.vec16(h.Ticket)
	}
	b.vec16(ext.bytes())
	return &Msg{Type: TypeClientHello, Body: b.bytes()}
}

// AppendTo appends the framed ClientHello, byte-identical to
// Marshal().Marshal(), without the intermediate builders.
func (h *ClientHello) AppendTo(dst []byte) []byte {
	dst, msg := beginMsg(dst, TypeClientHello)
	dst = binary.BigEndian.AppendUint16(dst, VersionTLS12)
	dst = append(dst, h.Random[:]...)
	dst = append(dst, byte(len(h.SessionID)))
	dst = append(dst, h.SessionID...)
	dst = binary.BigEndian.AppendUint16(dst, uint16(2*len(h.Suites)))
	for _, s := range h.Suites {
		dst = binary.BigEndian.AppendUint16(dst, s)
	}
	dst = append(dst, 1, 0) // compression: null only
	dst, exts := beginVec16(dst)
	if h.ServerName != "" {
		var ext, list, name int
		dst = binary.BigEndian.AppendUint16(dst, ExtSNI)
		dst, ext = beginVec16(dst)
		dst, list = beginVec16(dst)
		dst = append(dst, 0) // name_type: host_name
		dst, name = beginVec16(dst)
		dst = append(dst, h.ServerName...)
		dst = endVec16(dst, name)
		dst = endVec16(dst, list)
		dst = endVec16(dst, ext)
	}
	if h.OfferTicket || len(h.Ticket) > 0 {
		dst = binary.BigEndian.AppendUint16(dst, ExtSessionTicket)
		dst = appendVec16(dst, h.Ticket)
	}
	dst = endVec16(dst, exts)
	return endMsg(dst, msg)
}

func ParseClientHello(body []byte) (*ClientHello, error) {
	h := &ClientHello{}
	if err := ParseClientHelloInto(h, body); err != nil {
		return nil, err
	}
	return h, nil
}

// ParseClientHelloInto parses into a caller-owned ClientHello, reusing
// its Suites backing array. Terminators parse one ClientHello per
// connection; with a pooled destination the parse allocates nothing but
// the SNI string.
func ParseClientHelloInto(h *ClientHello, body []byte) error {
	p := &parser{b: body}
	*h = ClientHello{Suites: h.Suites[:0]}
	if p.u16() != VersionTLS12 {
		return fmt.Errorf("wire: bad client version")
	}
	copy(h.Random[:], p.raw(32))
	h.SessionID = p.vec8()
	ns := int(p.u16()) / 2
	for i := 0; i < ns; i++ {
		h.Suites = append(h.Suites, p.u16())
	}
	p.vec8() // compression
	exts := p.vec16()
	ep := &parser{b: exts}
	for len(ep.b) > 0 && ep.err == nil {
		typ := ep.u16()
		data := ep.vec16()
		switch typ {
		case ExtSNI:
			sp := &parser{b: data}
			list := sp.vec16()
			lp := &parser{b: list}
			lp.raw(1)
			h.ServerName = internName(lp.vec16())
		case ExtSessionTicket:
			h.OfferTicket = true
			h.Ticket = data
		}
	}
	return p.err
}

// ---- ServerHello ----

type ServerHello struct {
	Random    [32]byte
	SessionID []byte
	Suite     uint16
	TicketAck bool // server will send NewSessionTicket
}

func (h *ServerHello) Marshal() *Msg {
	b := newBuilder()
	b.u16(VersionTLS12)
	b.raw(h.Random[:])
	b.vec8(h.SessionID)
	b.u16(h.Suite)
	b.byte(0) // compression null
	ext := newBuilder()
	if h.TicketAck {
		ext.u16(ExtSessionTicket)
		ext.vec16(nil)
	}
	b.vec16(ext.bytes())
	return &Msg{Type: TypeServerHello, Body: b.bytes()}
}

// AppendTo appends the framed ServerHello, byte-identical to
// Marshal().Marshal().
func (h *ServerHello) AppendTo(dst []byte) []byte {
	dst, msg := beginMsg(dst, TypeServerHello)
	dst = binary.BigEndian.AppendUint16(dst, VersionTLS12)
	dst = append(dst, h.Random[:]...)
	dst = append(dst, byte(len(h.SessionID)))
	dst = append(dst, h.SessionID...)
	dst = binary.BigEndian.AppendUint16(dst, h.Suite)
	dst = append(dst, 0) // compression null
	dst, exts := beginVec16(dst)
	if h.TicketAck {
		dst = binary.BigEndian.AppendUint16(dst, ExtSessionTicket)
		dst = append(dst, 0, 0)
	}
	dst = endVec16(dst, exts)
	return endMsg(dst, msg)
}

func ParseServerHello(body []byte) (*ServerHello, error) {
	h := &ServerHello{}
	if err := ParseServerHelloInto(h, body); err != nil {
		return nil, err
	}
	return h, nil
}

// ParseServerHelloInto parses into a caller-owned ServerHello; with a
// pooled destination the parse is allocation-free (SessionID aliases
// body).
func ParseServerHelloInto(h *ServerHello, body []byte) error {
	p := &parser{b: body}
	*h = ServerHello{}
	if p.u16() != VersionTLS12 {
		return fmt.Errorf("wire: bad server version")
	}
	copy(h.Random[:], p.raw(32))
	h.SessionID = p.vec8()
	h.Suite = p.u16()
	p.raw(1)
	exts := p.vec16()
	ep := &parser{b: exts}
	for len(ep.b) > 0 && ep.err == nil {
		typ := ep.u16()
		ep.vec16()
		if typ == ExtSessionTicket {
			h.TicketAck = true
		}
	}
	return p.err
}

// ---- Certificate ----

func MarshalCertificate(chain [][]byte) *Msg {
	inner := newBuilder()
	for _, c := range chain {
		inner.vec24(c)
	}
	b := newBuilder()
	b.vec24(inner.bytes())
	return &Msg{Type: TypeCertificate, Body: b.bytes()}
}

func ParseCertificate(body []byte) ([][]byte, error) {
	return ParseCertificateInto(nil, body)
}

// ParseCertificateInto parses the chain into dst's backing array (grown as
// needed); certificates alias body. With a pooled dst of sufficient
// capacity the parse is allocation-free. Pass dst[:0] to reuse.
func ParseCertificateInto(dst [][]byte, body []byte) ([][]byte, error) {
	p := &parser{b: body}
	all := p.vec24()
	if p.err != nil {
		return nil, p.err
	}
	chain := dst[:0]
	cp := &parser{b: all}
	for len(cp.b) > 0 && cp.err == nil {
		chain = append(chain, cp.vec24())
	}
	if cp.err != nil {
		return nil, cp.err
	}
	return chain, nil
}

// internName deduplicates SNI host names: a campaign parses the same few
// thousand domain names hundreds of times each, and the string conversion
// was the ClientHello parse's only remaining per-call allocation.
// Interning is semantics-free (identical bytes in, identical string out);
// the map is cleared wholesale at the bound to stay finite across many
// populations in one process.
var nameIntern struct {
	mu sync.RWMutex
	m  map[string]string
}

const maxInternedNames = 16384

func internName(b []byte) string {
	nameIntern.mu.RLock()
	s, ok := nameIntern.m[string(b)]
	nameIntern.mu.RUnlock()
	if ok {
		return s
	}
	s = string(b)
	nameIntern.mu.Lock()
	if nameIntern.m == nil || len(nameIntern.m) >= maxInternedNames {
		nameIntern.m = make(map[string]string, 1024)
	}
	nameIntern.m[s] = s
	nameIntern.mu.Unlock()
	return s
}

// ---- ServerKeyExchange ----

// SKE carries the server's ephemeral value. For DHE: P, G, Public are the
// group parameters and value. For ECDHE: Public is the uncompressed P-256
// point (P and G are nil). Sig is an ECDSA/RSA signature over
// client_random || server_random || params.
type SKE struct {
	Kex    Kex
	P, G   []byte
	Public []byte
	Sig    []byte
}

func (s *SKE) appendParams(dst []byte) []byte {
	if s.Kex == KexDHE {
		dst = appendVec16(dst, s.P)
		dst = appendVec16(dst, s.G)
		return appendVec16(dst, s.Public)
	}
	dst = append(dst, 3)                         // named_curve
	dst = binary.BigEndian.AppendUint16(dst, 23) // secp256r1
	dst = append(dst, byte(len(s.Public)))
	return append(dst, s.Public...)
}

// SignedParams is the blob the server signs (and the client verifies).
func (s *SKE) SignedParams(clientRandom, serverRandom []byte) []byte {
	return s.AppendSignedParams(make([]byte, 0, 64+len(s.Public)+len(s.P)+len(s.G)+16), clientRandom, serverRandom)
}

// AppendSignedParams appends the to-be-signed blob to dst.
func (s *SKE) AppendSignedParams(dst, clientRandom, serverRandom []byte) []byte {
	dst = append(dst, clientRandom...)
	dst = append(dst, serverRandom...)
	return s.appendParams(dst)
}

func (s *SKE) Marshal() *Msg {
	b := newBuilder()
	b.raw(s.appendParams(nil))
	b.u16(0x0403) // ecdsa_secp256r1_sha256 (informational)
	b.vec16(s.Sig)
	return &Msg{Type: TypeServerKeyExchange, Body: b.bytes()}
}

// AppendTo appends the framed ServerKeyExchange, byte-identical to
// Marshal().Marshal().
func (s *SKE) AppendTo(dst []byte) []byte {
	dst, msg := beginMsg(dst, TypeServerKeyExchange)
	dst = s.appendParams(dst)
	dst = binary.BigEndian.AppendUint16(dst, 0x0403)
	dst = appendVec16(dst, s.Sig)
	return endMsg(dst, msg)
}

func ParseSKE(kex Kex, body []byte) (*SKE, error) {
	s := &SKE{}
	if err := ParseSKEInto(s, kex, body); err != nil {
		return nil, err
	}
	return s, nil
}

// ParseSKEInto parses into a caller-owned SKE; every field aliases body,
// so with a pooled destination the parse is allocation-free.
func ParseSKEInto(s *SKE, kex Kex, body []byte) error {
	p := &parser{b: body}
	*s = SKE{Kex: kex}
	if kex == KexDHE {
		s.P = p.vec16()
		s.G = p.vec16()
		s.Public = p.vec16()
	} else {
		p.raw(3)
		s.Public = p.vec8()
	}
	p.u16() // sig alg
	s.Sig = p.vec16()
	return p.err
}

// ---- ClientKeyExchange ----

func MarshalCKE(kex Kex, public []byte) *Msg {
	b := newBuilder()
	if kex == KexDHE {
		b.vec16(public)
	} else {
		b.vec8(public)
	}
	return &Msg{Type: TypeClientKeyExchange, Body: b.bytes()}
}

// AppendCKE appends the framed ClientKeyExchange to dst.
func AppendCKE(dst []byte, kex Kex, public []byte) []byte {
	dst, msg := beginMsg(dst, TypeClientKeyExchange)
	if kex == KexDHE {
		dst = appendVec16(dst, public)
	} else {
		dst = append(dst, byte(len(public)))
		dst = append(dst, public...)
	}
	return endMsg(dst, msg)
}

func ParseCKE(kex Kex, body []byte) ([]byte, error) {
	p := &parser{b: body}
	var pub []byte
	if kex == KexDHE {
		pub = p.vec16()
	} else {
		pub = p.vec8()
	}
	if p.err != nil {
		return nil, p.err
	}
	return pub, nil
}

// ---- NewSessionTicket ----

type NewSessionTicket struct {
	LifetimeHint time.Duration
	Ticket       []byte
}

func (t *NewSessionTicket) Marshal() *Msg {
	b := newBuilder()
	b.u32(uint32(t.LifetimeHint / time.Second))
	b.vec16(t.Ticket)
	return &Msg{Type: TypeNewSessionTicket, Body: b.bytes()}
}

// AppendTo appends the framed NewSessionTicket, byte-identical to
// Marshal().Marshal().
func (t *NewSessionTicket) AppendTo(dst []byte) []byte {
	dst, msg := beginMsg(dst, TypeNewSessionTicket)
	dst = binary.BigEndian.AppendUint32(dst, uint32(t.LifetimeHint/time.Second))
	dst = appendVec16(dst, t.Ticket)
	return endMsg(dst, msg)
}

// AppendNSTPrefix appends the fixed NewSessionTicket message prefix —
// handshake header, lifetime hint, ticket length — for a ticket of known
// length. Appending exactly ticketLen ticket bytes afterwards yields the
// same bytes as NewSessionTicket.AppendTo; the server caches this prefix
// per (STEK, hint) and seals the ticket directly behind it.
func AppendNSTPrefix(dst []byte, hint time.Duration, ticketLen int) []byte {
	n := 4 + 2 + ticketLen
	dst = append(dst, TypeNewSessionTicket, byte(n>>16), byte(n>>8), byte(n))
	dst = binary.BigEndian.AppendUint32(dst, uint32(hint/time.Second))
	return binary.BigEndian.AppendUint16(dst, uint16(ticketLen))
}

func ParseNewSessionTicket(body []byte) (*NewSessionTicket, error) {
	p := &parser{b: body}
	t := &NewSessionTicket{}
	t.LifetimeHint = time.Duration(p.u32()) * time.Second
	t.Ticket = p.vec16()
	if p.err != nil {
		return nil, p.err
	}
	return t, nil
}

// ---- builder / parser ----

// beginMsg reserves a 4-byte handshake header in dst; endMsg backfills
// the length. Between the two, start indexes the header's first byte.
func beginMsg(dst []byte, typ uint8) ([]byte, int) {
	return append(dst, typ, 0, 0, 0), len(dst)
}

func endMsg(dst []byte, start int) []byte {
	putUint24(dst[start+1:start+4], len(dst)-start-4)
	return dst
}

// beginVec16 reserves a 16-bit length prefix; endVec16 backfills it.
func beginVec16(dst []byte) ([]byte, int) { return append(dst, 0, 0), len(dst) }

func endVec16(dst []byte, start int) []byte {
	binary.BigEndian.PutUint16(dst[start:start+2], uint16(len(dst)-start-2))
	return dst
}

func appendVec16(dst, v []byte) []byte {
	dst = binary.BigEndian.AppendUint16(dst, uint16(len(v)))
	return append(dst, v...)
}

type builder struct{ b []byte }

func newBuilder() *builder       { return &builder{} }
func (w *builder) bytes() []byte { return w.b }
func (w *builder) byte(v byte)   { w.b = append(w.b, v) }
func (w *builder) raw(v []byte)  { w.b = append(w.b, v...) }
func (w *builder) u16(v uint16)  { w.b = binary.BigEndian.AppendUint16(w.b, v) }
func (w *builder) u32(v uint32)  { w.b = binary.BigEndian.AppendUint32(w.b, v) }
func (w *builder) vec8(v []byte) {
	w.byte(byte(len(v)))
	w.raw(v)
}
func (w *builder) vec16(v []byte) {
	w.u16(uint16(len(v)))
	w.raw(v)
}
func (w *builder) vec24(v []byte) {
	w.b = append(w.b, byte(len(v)>>16), byte(len(v)>>8), byte(len(v)))
	w.raw(v)
}

type parser struct {
	b   []byte
	err error
}

func (p *parser) raw(n int) []byte {
	if p.err != nil || len(p.b) < n {
		p.fail()
		return make([]byte, n)
	}
	out := p.b[:n]
	p.b = p.b[n:]
	return out
}
func (p *parser) fail() {
	if p.err == nil {
		p.err = fmt.Errorf("wire: truncated message")
	}
	p.b = nil
}
func (p *parser) u16() uint16   { return binary.BigEndian.Uint16(p.raw(2)) }
func (p *parser) u32() uint32   { return binary.BigEndian.Uint32(p.raw(4)) }
func (p *parser) vec8() []byte  { return p.raw(int(p.raw(1)[0])) }
func (p *parser) vec16() []byte { return p.raw(int(p.u16())) }
func (p *parser) vec24() []byte { return p.raw(uint24(p.raw(3))) }
