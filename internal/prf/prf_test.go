package prf

import (
	"bytes"
	"testing"
)

// TestExpanderMatchesReference pins the hand-rolled rekeyable HMAC
// against the crypto/hmac-based package functions for assorted secret
// and output lengths (including secrets longer than the SHA-256 block,
// which take the hash-the-key path).
func TestExpanderMatchesReference(t *testing.T) {
	secrets := [][]byte{
		{},
		[]byte("k"),
		bytes.Repeat([]byte{0xA5}, 48),
		bytes.Repeat([]byte{0x5A}, 64),
		bytes.Repeat([]byte{0x77}, 200), // > block size
	}
	seeds := [][]byte{{}, []byte("seed"), bytes.Repeat([]byte{1, 2, 3}, 30)}
	for _, secret := range secrets {
		e := NewExpander(secret)
		for _, seed := range seeds {
			for _, n := range []int{1, 12, 32, 40, 48, 100} {
				want := PRF(secret, "test label", seed, n)
				got := e.PRF("test label", seed, n)
				if !bytes.Equal(got, want) {
					t.Fatalf("Expander diverges from reference (len(secret)=%d len(seed)=%d n=%d)", len(secret), len(seed), n)
				}
				dst := make([]byte, 0, n)
				if got2 := e.AppendPRF(dst, "test label", seed, n); !bytes.Equal(got2, want) {
					t.Fatalf("AppendPRF diverges (n=%d)", n)
				}
			}
		}
		// Rekeying in place must behave like a fresh expander.
		e.SetSecret([]byte("other"))
		if !bytes.Equal(e.PRF("l", []byte("s"), 32), PRF([]byte("other"), "l", []byte("s"), 32)) {
			t.Fatal("SetSecret rekey diverges from reference")
		}
	}
}
