package cryptanalysis

import (
	"bytes"
	"crypto/rand"
	"math"
	"testing"

	"tlsshortcuts/internal/attacker"
	"tlsshortcuts/internal/ffdh"
	"tlsshortcuts/internal/session"
	"tlsshortcuts/internal/simclock"
	"tlsshortcuts/internal/ticket"
)

func sealedState() *session.State {
	st := &session.State{Version: 0x0303, Suite: 0xC02F, CreatedAt: simclock.Epoch}
	for i := range st.MasterSecret {
		st.MasterSecret[i] = byte(i)
	}
	return st
}

func TestDictionaryCracksWeakSeeds(t *testing.T) {
	st := sealedState()
	d := Dict()
	for _, f := range []ticket.Format{ticket.FormatRFC5077, ticket.FormatMbedTLS, ticket.FormatSChannel} {
		k := ticket.Derive(WeakSeed(17), f)
		tkt, err := k.Seal(st, rand.Reader)
		if err != nil {
			t.Fatal(err)
		}
		got := d.Crack(tkt)
		if got == nil {
			t.Fatalf("%v: weak-seed ticket not cracked", f)
		}
		if !bytes.Equal(got.Name, k.Name) || got.AESKey != k.AESKey {
			t.Errorf("%v: cracked the wrong key", f)
		}
		if got.Open(tkt) == nil {
			t.Errorf("%v: cracked key fails to open the ticket", f)
		}
	}

	// A strong-seed ticket must not crack — even at the name layer.
	k := ticket.Derive([]byte("high-entropy-operator-seed"), ticket.FormatRFC5077)
	tkt, err := k.Seal(st, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	if d.Crack(tkt) != nil {
		t.Error("strong-seed ticket cracked")
	}
	if d.Crack([]byte("not a ticket")) != nil {
		t.Error("junk bytes cracked")
	}
	if bits := SeedEntropyBits(); bits != 12 {
		t.Errorf("SeedEntropyBits = %v, want 12", bits)
	}
}

// The crack requires the authenticated open, not just a name hit: a
// forged ticket wearing a weak key's name must not count as recovered.
func TestDictionaryRejectsNameCollision(t *testing.T) {
	st := sealedState()
	weak := ticket.Derive(WeakSeed(3), ticket.FormatRFC5077)
	other := ticket.Derive([]byte("unrelated"), ticket.FormatRFC5077)
	tkt, err := other.Seal(st, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	copy(tkt, weak.Name) // graft the weak name onto a foreign ticket
	if Dict().Crack(tkt) != nil {
		t.Error("name-grafted ticket cracked without the key authenticating")
	}
}

func TestIsWeakPrimeIsRegistryMembership(t *testing.T) {
	eb, _ := ffdh.ExportGroup512().ParamBytes()
	id, ok := IsWeakPrime(eb)
	if !ok || id != "export512" {
		t.Errorf("export prime -> (%q, %v), want (export512, true)", id, ok)
	}
	if bits := WeakPrimeBits(id); bits != 512 {
		t.Errorf("WeakPrimeBits(%q) = %d, want 512", id, bits)
	}
	// The baseline simulation prime is also 512-bit but NOT in the
	// registry: flagging it would claim precomputation nobody has done —
	// and would break baseline-campaign inertness.
	tb, _ := ffdh.TestGroup512().ParamBytes()
	if id, ok := IsWeakPrime(tb); ok {
		t.Errorf("baseline prime flagged as weak (%q)", id)
	}
}

func TestSharedKeyNames(t *testing.T) {
	keyNames := map[string]string{
		"a.com": "aaaa", "b.com": "aaaa", // same name, different operators
		"c.com": "cccc", "d.com": "cccc", // same name, one operator
		"e.com": "eeee",
	}
	operators := map[string]string{
		"a.com": "op1", "b.com": "op2",
		"c.com": "op3", "d.com": "op3",
		"e.com": "op4",
	}
	groups := SharedKeyNames(keyNames, operators)
	if len(groups) != 1 {
		t.Fatalf("got %d groups, want 1: %+v", len(groups), groups)
	}
	g := groups[0]
	if g.KeyName != "aaaa" {
		t.Errorf("group key name %q", g.KeyName)
	}
	if len(g.Operators) != 2 || g.Operators[0] != "op1" || g.Operators[1] != "op2" {
		t.Errorf("group operators %v", g.Operators)
	}
	if len(g.Domains) != 2 || g.Domains[0] != "a.com" || g.Domains[1] != "b.com" {
		t.Errorf("group domains %v", g.Domains)
	}
}

func TestKeystreamReuse(t *testing.T) {
	ivs := map[string][]string{
		"a.com": {"11", "11"},       // repeated within one domain
		"b.com": {"22"},             // repeated across domains (with c.com)
		"c.com": {"22", "33"},       //
		"d.com": {"44", "55", "66"}, // all fresh
	}
	keyNames := map[string]string{
		"a.com": "ka", "b.com": "kb", "c.com": "kb", "d.com": "kd",
	}
	got := KeystreamReuse(ivs, keyNames)
	if len(got) != 2 {
		t.Fatalf("got %d findings, want 2: %+v", len(got), got)
	}
	if got[0].KeyName != "ka" || got[0].IV != "11" || got[0].Count != 2 ||
		len(got[0].Domains) != 1 || got[0].Domains[0] != "a.com" {
		t.Errorf("finding 0 = %+v", got[0])
	}
	if got[1].KeyName != "kb" || got[1].IV != "22" || got[1].Count != 2 ||
		len(got[1].Domains) != 2 {
		t.Errorf("finding 1 = %+v", got[1])
	}
	// The same IV under DIFFERENT keys is not keystream reuse.
	if out := KeystreamReuse(map[string][]string{"x": {"99"}, "y": {"99"}},
		map[string]string{"x": "k1", "y": "k2"}); len(out) != 0 {
		t.Errorf("cross-key IV repeat misreported: %+v", out)
	}
}

func TestFindingsMerge(t *testing.T) {
	a := NewFindings()
	a.KeyNames["a.com"] = "ka"
	a.IVs["a.com"] = []string{"11"}
	a.Cracked["a.com"] = "ka"
	a.Yield = attacker.Yield{Attempted: 2, Domains: 1, Connections: 1, Bytes: 100}
	b := NewFindings()
	b.KeyNames["b.com"] = "kb"
	b.WeakPrime["b.com"] = "export512"
	b.Yield = attacker.Yield{Attempted: 3, Domains: 2, Connections: 2, Bytes: 50}

	m := NewFindings()
	if err := m.Merge(a); err != nil {
		t.Fatal(err)
	}
	if err := m.Merge(b); err != nil {
		t.Fatal(err)
	}
	if len(m.KeyNames) != 2 || m.WeakPrime["b.com"] != "export512" || m.Cracked["a.com"] != "ka" {
		t.Errorf("merged findings wrong: %+v", m)
	}
	if m.Yield != (attacker.Yield{Attempted: 5, Domains: 3, Connections: 3, Bytes: 150}) {
		t.Errorf("merged yield = %+v", m.Yield)
	}
	// Overlapping domains mean the shards were not a partition.
	dup := NewFindings()
	dup.KeyNames["a.com"] = "other"
	if err := m.Merge(dup); err == nil {
		t.Error("merge accepted a duplicate domain")
	}
}

func TestShannonBitsPerByte(t *testing.T) {
	if h := ShannonBitsPerByte(nil); h != 0 {
		t.Errorf("entropy of nothing = %v", h)
	}
	if h := ShannonBitsPerByte(bytes.Repeat([]byte{0x5a}, 64)); h != 0 {
		t.Errorf("entropy of a constant = %v, want 0", h)
	}
	uniform := make([]byte, 256)
	for i := range uniform {
		uniform[i] = byte(i)
	}
	if h := ShannonBitsPerByte(uniform); math.Abs(h-8) > 1e-9 {
		t.Errorf("entropy of uniform bytes = %v, want 8", h)
	}
}
