// Package tlsclient is the zgrab-analog scanning client: restricted
// cipher offers, capture of everything the study records (server random,
// session ID, certificate chain, KEX value, ticket, STEK ID, lifetime
// hint, master secret), and resumption by session ID or ticket.
package tlsclient

import (
	"crypto"
	"crypto/ecdh"
	"crypto/ecdsa"
	crand "crypto/rand"
	"crypto/rsa"
	"crypto/sha256"
	"crypto/x509"
	"errors"
	"fmt"
	"hash"
	"io"
	"math/big"
	"net"
	"sync"
	"time"

	"tlsshortcuts/internal/drbg"
	"tlsshortcuts/internal/perf"
	"tlsshortcuts/internal/pki"
	"tlsshortcuts/internal/prf"
	"tlsshortcuts/internal/record"
	"tlsshortcuts/internal/simclock"
	"tlsshortcuts/internal/ticket"
	"tlsshortcuts/internal/wire"
)

// AlertError is a fatal TLS alert received from the server, typed so the
// scanner's failure taxonomy can classify it (via the AlertCode method)
// without string matching.
type AlertError struct {
	Code uint8
}

// Error keeps the historical message format.
func (e *AlertError) Error() string { return fmt.Sprintf("tls: server alert %d", e.Code) }

// AlertCode returns the alert description byte.
func (e *AlertError) AlertCode() uint8 { return e.Code }

// Session is the client-side resumable state from a completed handshake.
type Session struct {
	ID     []byte
	Ticket []byte
	Suite  uint16
	Master [48]byte
}

// Config drives one scan connection.
type Config struct {
	ServerName string
	Suites     []uint16 // nil = [ECDHE, DHE]
	Clock      simclock.Clock
	Roots      *pki.RootStore // nil = record chain but skip trust check

	OfferTicket bool

	// Resume, when set, attempts resumption: by ticket when
	// ResumeViaTicket, else by session ID.
	Resume          *Session
	ResumeViaTicket bool

	// AppData, when set, is sent after the handshake and one response
	// record is read (so captures contain traffic in both directions).
	AppData []byte

	Rand io.Reader // nil = crypto/rand

	// ReuseKex lets the client reuse one fixed key-exchange keypair
	// across connections (the scanner sets it). No recorded measurement
	// depends on the client's KEX value, so this is observationally
	// inert, and it removes a P-256 keygen or a g^x modexp per scan.
	ReuseKex bool

	// KexOnly disconnects right after capturing the ServerKeyExchange,
	// the way survey scanners (zgrab's key-exchange grabs) do: everything
	// a key-exchange scan records — chain, trust, suite, server random,
	// KEX value — is on the wire before the client's second flight, so
	// skipping the key agreement and Finished exchange observes exactly
	// what a completed handshake would. No session results, and the SKE
	// signature is not checked inline (the probe never acts on the
	// channel).
	KexOnly bool
}

// Capture is everything the scanner records about one connection.
type Capture struct {
	Trusted     bool
	CipherSuite uint16
	KexAlg      wire.Kex

	ServerRandom   []byte
	ServerKEXValue []byte
	SessionID      []byte

	// serverRandom backs ServerRandom so the Capture owns the bytes
	// outright instead of pinning a parsed ServerHello.
	serverRandom [32]byte

	TicketIssued bool
	Ticket       []byte // raw issued ticket
	STEKID       []byte // best-effort single-ticket key ID
	LifetimeHint time.Duration

	Resumed          bool
	ResumedViaTicket bool

	Chain   [][]byte
	Session *Session
	AppResp []byte
}

func (c *Config) now() time.Time {
	if c.Clock != nil {
		return c.Clock.Now()
	}
	return time.Now()
}

func (c *Config) rand() io.Reader {
	if c.Rand != nil {
		return c.Rand
	}
	return crand.Reader
}

// hsConn is one connection's handshake state. Instances are pooled: the
// record layer, transcript hash, PRF expander, and the fixed scratch
// arrays all reset cheaply between connections. buf is the exception —
// parsed results retained past the handshake (session IDs, tickets,
// chains, KEX values) alias it, so each connection gets a fresh one and
// ownership passes to whatever Capture holds the sub-slices.
type hsConn struct {
	rc   record.Conn
	buf  []byte
	hash hash.Hash // running transcript digest
	ex   prf.Expander
	mbuf []byte // outgoing handshake-message marshal scratch
	sp   []byte // SKE signed-params scratch
	// Per-connection hello structs, reused across pooled connections.
	// Nothing that outlives the handshake aliases them: the Capture
	// copies the server random it retains, and its other retained fields
	// alias buf (fresh per connection), never these structs.
	ch wire.ClientHello
	sh wire.ServerHello
	// Fixed-size derivation scratch. The PRF appends whole 32-byte
	// blocks before truncating, so capacities round up to a block.
	seed   [64]byte // client_random || server_random (either order)
	kb     [64]byte // key block (40 bytes used)
	master [64]byte // master secret (48 bytes used; copied into Session)
	fin    [32]byte // Finished verify_data (12 bytes used)
	pre    [32]byte // transcript digest
}

var hsPool = sync.Pool{New: func() any { return &hsConn{hash: sha256.New()} }}

func getHsConn(conn net.Conn) *hsConn {
	h := hsPool.Get().(*hsConn)
	h.rc.Reset(conn)
	h.hash.Reset()
	// The previous connection's buf now belongs to its Capture; size the
	// fresh one for a full server flight so it grows at most once.
	h.buf = make([]byte, 0, 2048)
	return h
}

// transcript returns the hash of the handshake messages so far, in the
// connection's digest scratch (valid until the next transcript call).
func (h *hsConn) transcript() []byte {
	return h.hash.Sum(h.pre[:0])
}

func (h *hsConn) writeMsg(m *wire.Msg) error {
	h.mbuf = m.AppendTo(h.mbuf[:0])
	return h.writeFramed(h.mbuf)
}

// writeFramed sends an already-framed handshake message.
func (h *hsConn) writeFramed(frame []byte) error {
	h.hash.Write(frame)
	return h.rc.WriteRecord(record.TypeHandshake, frame)
}

func (h *hsConn) readMsg() (wire.Msg, bool, error) {
	for {
		if len(h.buf) >= 4 {
			n := int(h.buf[1])<<16 | int(h.buf[2])<<8 | int(h.buf[3])
			if len(h.buf) >= 4+n {
				raw := h.buf[:4+n]
				h.buf = h.buf[4+n:]
				h.hash.Write(raw)
				return wire.Msg{Type: raw[0], Body: raw[4:]}, false, nil
			}
		}
		rec, err := h.rc.ReadRecord()
		if err != nil {
			return wire.Msg{}, false, err
		}
		switch rec.Type {
		case record.TypeHandshake:
			h.buf = append(h.buf, rec.Payload...)
		case record.TypeChangeCipherSpec:
			return wire.Msg{}, true, nil
		case record.TypeAlert:
			if len(rec.Payload) == 2 {
				return wire.Msg{}, false, &AlertError{Code: rec.Payload[1]}
			}
			return wire.Msg{}, false, errors.New("tls: malformed server alert")
		default:
			return wire.Msg{}, false, fmt.Errorf("tls: unexpected record type %d", rec.Type)
		}
	}
}

// defaultSuites is the offer when Config.Suites is nil.
var defaultSuites = []uint16{wire.SuiteECDHE, wire.SuiteDHE}

// Handshake performs one connection against conn. The returned Capture is
// non-nil whenever a ServerHello was seen, even on later failure.
func Handshake(conn net.Conn, cfg *Config) (*Capture, error) {
	hc := getHsConn(conn)
	defer hsPool.Put(hc)
	cap := &Capture{}

	suites := cfg.Suites
	if suites == nil {
		suites = defaultSuites
	}
	ch := &hc.ch
	*ch = wire.ClientHello{Suites: suites, ServerName: cfg.ServerName, OfferTicket: cfg.OfferTicket}
	if _, err := io.ReadFull(cfg.rand(), ch.Random[:]); err != nil {
		return cap, err
	}
	if cfg.Resume != nil {
		if cfg.ResumeViaTicket {
			ch.Ticket = cfg.Resume.Ticket
			ch.OfferTicket = true
		} else {
			ch.SessionID = cfg.Resume.ID
		}
	}
	hc.mbuf = ch.AppendTo(hc.mbuf[:0])
	if err := hc.writeFramed(hc.mbuf); err != nil {
		return cap, err
	}

	msg, _, err := hc.readMsg()
	if err != nil {
		return cap, err
	}
	if msg.Type != wire.TypeServerHello {
		return cap, fmt.Errorf("tls: expected ServerHello, got %d", msg.Type)
	}
	sh := &hc.sh
	if err := wire.ParseServerHelloInto(sh, msg.Body); err != nil {
		return cap, err
	}
	cap.CipherSuite = sh.Suite
	cap.KexAlg = wire.SuiteKex(sh.Suite)
	cap.serverRandom = sh.Random
	cap.ServerRandom = cap.serverRandom[:]
	cap.SessionID = sh.SessionID

	// What follows decides full versus abbreviated handshake: a
	// Certificate message means full; NewSessionTicket or CCS means the
	// server accepted resumption.
	msg, ccs, err := hc.readMsg()
	if err != nil {
		return cap, err
	}
	if ccs || msg.Type == wire.TypeNewSessionTicket {
		if cfg.Resume == nil {
			return cap, errors.New("tls: server resumed without an offer")
		}
		return cap, finishResumed(hc, cfg, cap, ch, sh, msg, ccs)
	}
	return cap, finishFull(hc, cfg, cap, ch, sh, msg)
}

func finishFull(hc *hsConn, cfg *Config, cap *Capture, ch *wire.ClientHello, sh *wire.ServerHello, msg wire.Msg) error {
	if msg.Type != wire.TypeCertificate {
		return fmt.Errorf("tls: expected Certificate, got %d", msg.Type)
	}
	chain, err := wire.ParseCertificate(msg.Body)
	if err != nil {
		return err
	}
	cap.Chain = chain
	if cfg.Roots != nil {
		cap.Trusted = cfg.Roots.Verify(chain, cfg.ServerName, cfg.now())
	}

	kex := wire.SuiteKex(sh.Suite)
	var premaster, clientPub []byte
	switch kex {
	case wire.KexECDHE, wire.KexDHE:
		msg, _, err = hc.readMsg()
		if err != nil {
			return err
		}
		if msg.Type != wire.TypeServerKeyExchange {
			return fmt.Errorf("tls: expected ServerKeyExchange, got %d", msg.Type)
		}
		ske, err := wire.ParseSKE(kex, msg.Body)
		if err != nil {
			return err
		}
		cap.ServerKEXValue = ske.Public
		if cfg.KexOnly {
			return nil
		}
		if err := verifySKE(hc, chain, ske, ch.Random[:], sh.Random[:]); err != nil {
			return err
		}
		if kex == wire.KexECDHE {
			var priv *ecdh.PrivateKey
			if cfg.ReuseKex && perf.ClientKexReuse() {
				priv = fixedECDHEKey()
			} else {
				priv, err = ecdh.P256().GenerateKey(cfg.rand())
				if err != nil {
					return err
				}
			}
			peer, err := ecdh.P256().NewPublicKey(ske.Public)
			if err != nil {
				return fmt.Errorf("tls: bad server ECDHE value: %w", err)
			}
			premaster, err = priv.ECDH(peer)
			if err != nil {
				return err
			}
			clientPub = priv.PublicKey().Bytes()
		} else {
			p := new(big.Int).SetBytes(ske.P)
			g := new(big.Int).SetBytes(ske.G)
			var x, yc *big.Int
			if cfg.ReuseKex && perf.ClientKexReuse() {
				x, yc = fixedDHEKey(p, g)
			} else {
				var xb [32]byte
				if _, err := io.ReadFull(cfg.rand(), xb[:]); err != nil {
					return err
				}
				x = new(big.Int).SetBytes(xb[:])
				yc = new(big.Int).Exp(g, x, p)
			}
			ys := new(big.Int).SetBytes(ske.Public)
			if ys.Sign() <= 0 || ys.Cmp(p) >= 0 {
				return errors.New("tls: server DH value out of range")
			}
			premaster = new(big.Int).Exp(ys, x, p).Bytes()
			clientPub = yc.Bytes()
		}
	default:
		return fmt.Errorf("tls: unsupported key exchange %v", kex)
	}

	// ServerHelloDone.
	msg, _, err = hc.readMsg()
	if err != nil {
		return err
	}
	if msg.Type != wire.TypeServerHelloDone {
		return fmt.Errorf("tls: expected ServerHelloDone, got %d", msg.Type)
	}

	hc.mbuf = wire.AppendCKE(hc.mbuf[:0], kex, clientPub)
	if err := hc.writeFramed(hc.mbuf); err != nil {
		return err
	}
	// Master secret and key block, derived in the pooled expander and the
	// connection's scratch (only the Session copy of the master survives).
	hc.ex.SetSecret(premaster)
	msSeed := append(append(hc.seed[:0], ch.Random[:]...), sh.Random[:]...)
	master := hc.ex.AppendPRF(hc.master[:0], "master secret", msSeed, 48)
	hc.ex.SetSecret(master)
	kbs := append(append(hc.seed[:0], sh.Random[:]...), ch.Random[:]...)
	kb := hc.ex.AppendPRF(hc.kb[:0], "key expansion", kbs, 40)

	preFinished := hc.transcript()
	if err := hc.rc.WriteRecord(record.TypeChangeCipherSpec, []byte{1}); err != nil {
		return err
	}
	if err := hc.rc.ArmWrite(kb[0:16], kb[32:36]); err != nil {
		return err
	}
	fin := wire.Msg{Type: wire.TypeFinished, Body: hc.ex.AppendPRF(hc.fin[:0], "client finished", preFinished, 12)}
	if err := hc.writeMsg(&fin); err != nil {
		return err
	}

	// Server side: optional NewSessionTicket (plaintext), CCS, Finished.
	msg, ccs, err := hc.readMsg()
	if err != nil {
		return err
	}
	if !ccs && msg.Type == wire.TypeNewSessionTicket {
		if err := recordTicket(cap, msg); err != nil {
			return err
		}
		msg, ccs, err = hc.readMsg()
		if err != nil {
			return err
		}
	}
	if !ccs {
		return fmt.Errorf("tls: expected server ChangeCipherSpec")
	}
	if err := hc.rc.ArmRead(kb[16:32], kb[36:40]); err != nil {
		return err
	}
	preServer := hc.transcript()
	msg, _, err = hc.readMsg()
	if err != nil {
		return err
	}
	want := hc.ex.AppendPRF(hc.fin[:0], "server finished", preServer, 12)
	if msg.Type != wire.TypeFinished || !equal(msg.Body, want) {
		return errors.New("tls: bad server Finished")
	}

	sess := &Session{ID: sh.SessionID, Ticket: cap.Ticket, Suite: sh.Suite}
	copy(sess.Master[:], master)
	cap.Session = sess
	return appData(hc, cfg, cap)
}

func finishResumed(hc *hsConn, cfg *Config, cap *Capture, ch *wire.ClientHello, sh *wire.ServerHello, msg wire.Msg, ccs bool) error {
	cap.Resumed = true
	cap.ResumedViaTicket = cfg.ResumeViaTicket
	master := cfg.Resume.Master[:]
	hc.ex.SetSecret(master)
	kbs := append(append(hc.seed[:0], sh.Random[:]...), ch.Random[:]...)
	kb := hc.ex.AppendPRF(hc.kb[:0], "key expansion", kbs, 40)

	if !ccs { // msg is NewSessionTicket (reissue)
		if err := recordTicket(cap, msg); err != nil {
			return err
		}
		var err error
		_, ccs, err = hc.readMsg()
		if err != nil {
			return err
		}
		if !ccs {
			return errors.New("tls: expected CCS after reissued ticket")
		}
	}
	if err := hc.rc.ArmRead(kb[16:32], kb[36:40]); err != nil {
		return err
	}
	preServer := hc.transcript()
	fin, _, err := hc.readMsg()
	if err != nil {
		return err
	}
	want := hc.ex.AppendPRF(hc.fin[:0], "server finished", preServer, 12)
	if fin.Type != wire.TypeFinished || !equal(fin.Body, want) {
		return errors.New("tls: bad server Finished on resumption")
	}

	preClient := hc.transcript()
	if err := hc.rc.WriteRecord(record.TypeChangeCipherSpec, []byte{1}); err != nil {
		return err
	}
	if err := hc.rc.ArmWrite(kb[0:16], kb[32:36]); err != nil {
		return err
	}
	cfin := wire.Msg{Type: wire.TypeFinished, Body: hc.ex.AppendPRF(hc.fin[:0], "client finished", preClient, 12)}
	if err := hc.writeMsg(&cfin); err != nil {
		return err
	}

	sess := &Session{ID: sh.SessionID, Ticket: cap.Ticket, Suite: sh.Suite}
	if len(sess.Ticket) == 0 {
		sess.Ticket = cfg.Resume.Ticket
	}
	copy(sess.Master[:], master)
	cap.Session = sess
	cap.CipherSuite = sh.Suite
	return appData(hc, cfg, cap)
}

func recordTicket(cap *Capture, msg wire.Msg) error {
	nst, err := wire.ParseNewSessionTicket(msg.Body)
	if err != nil {
		return err
	}
	cap.TicketIssued = true
	cap.Ticket = nst.Ticket
	cap.STEKID = ticket.ExtractKeyID(nst.Ticket)
	cap.LifetimeHint = nst.LifetimeHint
	return nil
}

func appData(hc *hsConn, cfg *Config, cap *Capture) error {
	if len(cfg.AppData) == 0 {
		return nil
	}
	if err := hc.rc.WriteRecord(record.TypeAppData, cfg.AppData); err != nil {
		return err
	}
	rec, err := hc.rc.ReadRecord()
	if err != nil {
		return err
	}
	if rec.Type != record.TypeAppData {
		return fmt.Errorf("tls: expected application data, got record type %d", rec.Type)
	}
	// Payload aliases the record layer's reusable read buffer; the capture
	// outlives the connection, so copy.
	cap.AppResp = append([]byte(nil), rec.Payload...)
	return nil
}

// fixedECDHEKey returns the process-wide fixed client P-256 key, derived
// from a constant drbg stream so every run agrees on it.
var fixedECDHE struct {
	once sync.Once
	key  *ecdh.PrivateKey
}

func fixedECDHEKey() *ecdh.PrivateKey {
	fixedECDHE.once.Do(func() {
		// Explicit scalar bytes, not GenerateKey: GenerateKey does not
		// consume a reader deterministically, and this key must be the
		// same in every process.
		r := drbg.NewString("tlsclient|fixed-ecdhe")
		for i := 0; i < 64; i++ {
			var seed [32]byte
			if _, err := io.ReadFull(r, seed[:]); err != nil {
				break
			}
			if k, err := ecdh.P256().NewPrivateKey(seed[:]); err == nil {
				fixedECDHE.key = k
				return
			}
		}
		panic("tlsclient: fixed ECDHE derivation failed")
	})
	return fixedECDHE.key
}

// fixedDHEKey returns the fixed client DH exponent and the memoized g^x
// for the given group (the population uses one group, so this is a single
// modexp per process instead of one per scan).
var fixedDHE struct {
	mu sync.Mutex
	m  map[string][2]*big.Int // P||G -> {x, g^x}
}

func fixedDHEKey(p, g *big.Int) (x, yc *big.Int) {
	key := string(p.Bytes()) + "|" + string(g.Bytes())
	fixedDHE.mu.Lock()
	defer fixedDHE.mu.Unlock()
	if v, ok := fixedDHE.m[key]; ok {
		return v[0], v[1]
	}
	var xb [32]byte
	_, _ = io.ReadFull(drbg.NewString("tlsclient|fixed-dhe"), xb[:])
	x = new(big.Int).SetBytes(xb[:])
	yc = new(big.Int).Exp(g, x, p)
	if fixedDHE.m == nil {
		fixedDHE.m = make(map[string][2]*big.Int)
	}
	fixedDHE.m[key] = [2]*big.Int{x, yc}
	return x, yc
}

// leafCache memoizes x509.ParseCertificate by leaf fingerprint: the
// scanner re-parses the same few hundred leaves tens of thousands of
// times to check ServerKeyExchange signatures.
var leafCache sync.Map // [32]byte -> *x509.Certificate

func parseLeaf(der []byte) (*x509.Certificate, error) {
	if !perf.CryptoCaches() {
		return x509.ParseCertificate(der)
	}
	key := sha256.Sum256(der)
	if v, ok := leafCache.Load(key); ok {
		return v.(*x509.Certificate), nil
	}
	leaf, err := x509.ParseCertificate(der)
	if err != nil {
		return nil, err
	}
	leafCache.Store(key, leaf)
	return leaf, nil
}

func verifySKE(hc *hsConn, chain [][]byte, ske *wire.SKE, clientRandom, serverRandom []byte) error {
	if len(chain) == 0 {
		return errors.New("tls: no certificate to verify ServerKeyExchange")
	}
	leaf, err := parseLeaf(chain[0])
	if err != nil {
		return err
	}
	hc.sp = ske.AppendSignedParams(hc.sp[:0], clientRandom, serverRandom)
	digest := sha256.Sum256(hc.sp)
	switch pub := leaf.PublicKey.(type) {
	case *ecdsa.PublicKey:
		if !ecdsa.VerifyASN1(pub, digest[:], ske.Sig) {
			return errors.New("tls: bad ServerKeyExchange signature")
		}
	case *rsa.PublicKey:
		return rsa.VerifyPKCS1v15(pub, crypto.SHA256, digest[:], ske.Sig)
	default:
		return errors.New("tls: unsupported server public key")
	}
	return nil
}

func equal(a, b []byte) bool {
	if len(a) != len(b) {
		return false
	}
	var v byte
	for i := range a {
		v |= a[i] ^ b[i]
	}
	return v == 0
}
