package scanner

import (
	"io"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"tlsshortcuts/internal/faults"
	"tlsshortcuts/internal/population"
	"tlsshortcuts/internal/simclock"
)

// stallDialer returns connections whose server side swallows every byte
// and never answers — the pathology that used to deadlock a worker.
type stallDialer struct{ dials atomic.Int64 }

func (d *stallDialer) Dial(domain string) (net.Conn, error) {
	d.dials.Add(1)
	cli, srv := net.Pipe()
	go func() {
		_, _ = io.Copy(io.Discard, srv)
		_ = srv.Close()
	}()
	return cli, nil
}

// refuseDialer fails every dial.
type refuseDialer struct{ dials atomic.Int64 }

func (d *refuseDialer) Dial(domain string) (net.Conn, error) {
	d.dials.Add(1)
	return nil, &faults.DialError{Domain: domain, Reason: "connection refused"}
}

// resetDialer reads a few bytes of the client's first flight, then drops
// the connection.
type resetDialer struct{}

func (d *resetDialer) Dial(domain string) (net.Conn, error) {
	cli, srv := net.Pipe()
	go func() {
		buf := make([]byte, 5)
		_, _ = io.ReadFull(srv, buf)
		_ = srv.Close()
	}()
	return cli, nil
}

// flakyDialer fails the first failures dials, then delegates to a real
// network.
type flakyDialer struct {
	inner    Dialer
	failures int64
	dials    atomic.Int64
}

func (d *flakyDialer) Dial(domain string) (net.Conn, error) {
	if d.dials.Add(1) <= d.failures {
		return nil, &faults.DialError{Domain: domain, Reason: "transient refusal"}
	}
	return d.inner.Dial(domain)
}

// runDaily runs one single-domain ticket scan under a watchdog: the whole
// point of scan deadlines is that a campaign can no longer hang forever.
func runDaily(t *testing.T, s *Scanner, domain string, timeout time.Duration) Observation {
	t.Helper()
	done := make(chan []Observation, 1)
	go func() { done <- s.Daily([]string{domain}, 0, nil, true) }()
	select {
	case obs := <-done:
		if len(obs) != 1 {
			t.Fatalf("expected 1 observation, got %d", len(obs))
		}
		return obs[0]
	case <-time.After(timeout):
		t.Fatalf("Daily did not finish within %v — scan deadline not enforced", timeout)
		return Observation{}
	}
}

func TestStalledBackendScanCompletesWithTimeout(t *testing.T) {
	s := &Scanner{
		Dialer:  &stallDialer{},
		Clock:   simclock.NewManual(simclock.Epoch),
		Workers: 1,
		Timeout: 100 * time.Millisecond,
		Retries: -1,
	}
	o := runDaily(t, s, "stall.example", 10*time.Second)
	if o.OK {
		t.Fatal("stalled scan reported OK")
	}
	if o.ErrClass != faults.ClassTimeout {
		t.Fatalf("stalled scan classified %q, want %q (err: %v)", o.ErrClass, faults.ClassTimeout, o.Err)
	}
}

func TestRefusedScanRetriesThenGivesUp(t *testing.T) {
	d := &refuseDialer{}
	s := &Scanner{
		Dialer:  d,
		Clock:   simclock.NewManual(simclock.Epoch),
		Workers: 1,
		Retries: 2,
	}
	o := runDaily(t, s, "refuse.example", 10*time.Second)
	if o.OK {
		t.Fatal("refused scan reported OK")
	}
	if o.ErrClass != faults.ClassDial {
		t.Fatalf("refused scan classified %q, want %q", o.ErrClass, faults.ClassDial)
	}
	if got := d.dials.Load(); got != 3 {
		t.Fatalf("Retries=2 should attempt 3 dials, got %d", got)
	}
}

func TestMidHandshakeDropClassifiesReset(t *testing.T) {
	s := &Scanner{
		Dialer:  &resetDialer{},
		Clock:   simclock.NewManual(simclock.Epoch),
		Workers: 1,
		Timeout: time.Second,
		Retries: -1,
	}
	o := runDaily(t, s, "reset.example", 10*time.Second)
	if o.OK {
		t.Fatal("reset scan reported OK")
	}
	if o.ErrClass != faults.ClassReset {
		t.Fatalf("reset scan classified %q, want %q (err: %v)", o.ErrClass, faults.ClassReset, o.Err)
	}
}

func TestTransientFailureRecoveredByRetry(t *testing.T) {
	w, err := population.Build(population.Options{ListSize: 200, Seed: 1})
	if err != nil {
		t.Fatalf("building world: %v", err)
	}
	d := &flakyDialer{inner: w.Net, failures: 2}
	s := &Scanner{
		Dialer:  d,
		Roots:   w.Roots,
		Clock:   w.Clock,
		Workers: 1,
		Retries: 2,
	}
	o := runDaily(t, s, "yahoo.com", 30*time.Second)
	if !o.OK {
		t.Fatalf("retries should have recovered the flaky dials: class=%q err=%v", o.ErrClass, o.Err)
	}
	if o.ErrClass != faults.ClassNone || o.ErrClass2 != faults.ClassNone {
		t.Fatalf("recovered scan should carry no error class, got %q/%q", o.ErrClass, o.ErrClass2)
	}
	if got := d.dials.Load(); got < 3 {
		t.Fatalf("expected at least 3 dials (2 failures + success), got %d", got)
	}
}
