// Package cryptanalysis holds the scanner-side probes that turn captured
// tickets into attack evidence, modeling the weak-deployment findings of
// Hebrok et al. ("We Really Need to Talk About Session Tickets") and the
// Logjam common-prime precomputation:
//
//   - key-name reuse: one STEK key name observed at domains run by
//     unrelated operators — a shared or vendor-default key, so one leak
//     (or one crack) decrypts them all;
//   - weak-STEK recovery: a dictionary search over a low-entropy seed
//     space recovers the actual key, turning "looks weak" into "here is
//     the AES/HMAC key";
//   - keystream reuse: a repeated CBC IV under one key name (the AWS
//     fixed-IV flaw) — identical states seal to identical ciphertexts,
//     and differing states leak their first differing block;
//   - known-weak FFDH primes: an export-grade modulus from a registry of
//     shared primes, where one precomputation amortizes over every
//     domain serving it.
//
// The probes are pure functions over captured bytes: everything here is
// computable by a passive adversary with the recordings and public
// knowledge. Actual decryption yield is measured by internal/attacker's
// Replay against the keys recovered here.
package cryptanalysis

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"tlsshortcuts/internal/attacker"
	"tlsshortcuts/internal/ffdh"
	"tlsshortcuts/internal/ticket"
)

// ---- weak-STEK seed space ----

// WeakSeedSpace is the size of the modeled low-entropy STEK seed space
// (12 bits). Real weak deployments drew keys from timestamps, PIDs, or
// default config strings; the dictionary stands in for that search.
const WeakSeedSpace = 4096

// WeakSeed returns the i'th member of the low-entropy seed space. The
// weak population profiles draw their STEK seeds from this space, and
// the cracking dictionary enumerates it.
func WeakSeed(i int) []byte {
	return []byte(fmt.Sprintf("weak-stek-%05d", i))
}

// Dictionary maps every key name derivable from the weak seed space to
// its candidate STEKs, across all three wire formats. Lookup is by key
// name, then confirmed by an authenticated Open — a name collision
// without the real key cannot produce a false crack. Candidates are a
// list because one seed's RFC 5077 and SChannel keys share their 16-byte
// name while sealing with different headers.
type Dictionary struct {
	byName map[string][]*ticket.STEK
}

var (
	dictOnce sync.Once
	dict     *Dictionary
)

// Dict returns the process-wide weak-seed dictionary, built once
// (WeakSeedSpace seeds x 3 formats; a few hundred milliseconds of
// SHA-256, the modeled "offline" phase of the attack).
func Dict() *Dictionary {
	dictOnce.Do(func() {
		d := &Dictionary{byName: make(map[string][]*ticket.STEK, 3*WeakSeedSpace)}
		for i := 0; i < WeakSeedSpace; i++ {
			seed := WeakSeed(i)
			for _, f := range []ticket.Format{ticket.FormatRFC5077, ticket.FormatMbedTLS, ticket.FormatSChannel} {
				k := ticket.Derive(seed, f)
				d.byName[string(k.Name)] = append(d.byName[string(k.Name)], k)
			}
		}
		dict = d
	})
	return dict
}

// Crack attempts to recover the STEK that sealed tkt from the weak-seed
// space. It returns the key only when an authenticated decrypt succeeds.
func (d *Dictionary) Crack(tkt []byte) *ticket.STEK {
	name := ticket.KeyName(tkt)
	if name == nil {
		return nil
	}
	for _, k := range d.byName[string(name)] {
		if k.Open(tkt) != nil {
			return k
		}
	}
	return nil
}

// SeedEntropyBits is the entropy upper bound a successful dictionary
// crack proves: the key was drawn from a space this many bits wide.
func SeedEntropyBits() float64 { return math.Log2(WeakSeedSpace) }

// ---- known-weak prime registry ----

// weakPrimes maps the big-endian bytes of registry primes to a short ID.
var weakPrimesOnce sync.Once
var weakPrimes map[string]string

// IsWeakPrime reports whether p (big-endian modulus bytes, as captured
// from a ServerKeyExchange) is in the known-weak prime registry, and its
// registry ID. The registry holds the shared export-grade prime — not
// every 512-bit modulus: membership models Logjam's "precomputation
// already done for this specific prime", which is what makes the attack
// cheap, whereas an unlisted prime still costs the full first phase.
func IsWeakPrime(p []byte) (string, bool) {
	weakPrimesOnce.Do(func() {
		weakPrimes = map[string]string{}
		eb, _ := ffdh.ExportGroup512().ParamBytes()
		weakPrimes[string(eb)] = "export512"
	})
	id, ok := weakPrimes[string(p)]
	return id, ok
}

// WeakPrimeBits returns the modulus width of a registry prime by ID.
func WeakPrimeBits(id string) int {
	if id == "export512" {
		return ffdh.ExportGroup512().P.BitLen()
	}
	return 0
}

// ---- campaign-wide findings index ----

// Findings is the cryptanalysis pass output carried in the dataset: flat
// per-domain primitives (so shard merge is a disjoint union) plus the
// replay yield. Groups — which domains share a key name, which keys
// repeat IVs — are re-derived from the merged maps at report time,
// mirroring how STEK groups are re-derived from spans.
type Findings struct {
	KeyNames  map[string]string   `json:",omitempty"` // domain -> hex key name of its issuing STEK
	IVs       map[string][]string `json:",omitempty"` // domain -> hex ticket IVs, in capture order
	Cracked   map[string]string   `json:",omitempty"` // domain -> hex key name of the recovered weak STEK
	WeakPrime map[string]string   `json:",omitempty"` // domain -> known-weak prime registry ID
	Yield     attacker.Yield      // measured decryption yield of the replay
}

// NewFindings returns an empty findings index.
func NewFindings() *Findings {
	return &Findings{
		KeyNames:  map[string]string{},
		IVs:       map[string][]string{},
		Cracked:   map[string]string{},
		WeakPrime: map[string]string{},
	}
}

// Merge folds o into f. Shards scan disjoint domain slices, so a domain
// appearing in both is a merge error.
func (f *Findings) Merge(o *Findings) error {
	for _, m := range []struct {
		dst, src map[string]string
	}{
		{f.KeyNames, o.KeyNames},
		{f.Cracked, o.Cracked},
		{f.WeakPrime, o.WeakPrime},
	} {
		for d, v := range m.src {
			if _, dup := m.dst[d]; dup {
				return fmt.Errorf("cryptanalysis: domain %s in multiple shards", d)
			}
			m.dst[d] = v
		}
	}
	for d, ivs := range o.IVs {
		if _, dup := f.IVs[d]; dup {
			return fmt.Errorf("cryptanalysis: domain %s in multiple shards", d)
		}
		f.IVs[d] = ivs
	}
	f.Yield.Add(o.Yield)
	return nil
}

// ---- derived probe analyses ----

// KeyNameGroup is one key name observed at more than one operator.
type KeyNameGroup struct {
	KeyName   string
	Operators []string
	Domains   []string
}

// SharedKeyNames indexes the per-domain key names against operator
// attribution and returns every key name served by two or more unrelated
// operators — the campaign-wide extension of DetectKeyID's pairwise
// evidence. Output is sorted for deterministic rendering.
func SharedKeyNames(keyNames map[string]string, operators map[string]string) []KeyNameGroup {
	byName := map[string]map[string]bool{} // key name -> operator set
	domains := map[string][]string{}       // key name -> domains
	for d, name := range keyNames {
		if byName[name] == nil {
			byName[name] = map[string]bool{}
		}
		byName[name][operators[d]] = true
		domains[name] = append(domains[name], d)
	}
	var out []KeyNameGroup
	for name, ops := range byName {
		if len(ops) < 2 {
			continue
		}
		g := KeyNameGroup{KeyName: name, Domains: domains[name]}
		for op := range ops {
			g.Operators = append(g.Operators, op)
		}
		sort.Strings(g.Operators)
		sort.Strings(g.Domains)
		out = append(out, g)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].KeyName < out[j].KeyName })
	return out
}

// KeystreamFinding is one STEK observed sealing with a repeated CBC IV.
type KeystreamFinding struct {
	KeyName string
	IV      string
	Domains []string // domains whose captures carry the repeated IV
	Count   int      // total occurrences of the IV under the key
}

// KeystreamReuse scans the per-domain IV observations for IVs repeated
// under one key name. With CBC, a repeated IV under one key reveals
// whether two sealed states share a prefix block-by-block — and these
// deployments seal predictable state, so the finding is decryptable
// structure, not a nonce-hygiene footnote.
func KeystreamReuse(ivs map[string][]string, keyNames map[string]string) []KeystreamFinding {
	type kiv struct{ name, iv string }
	count := map[kiv]int{}
	where := map[kiv]map[string]bool{}
	for d, list := range ivs {
		name, ok := keyNames[d]
		if !ok {
			continue
		}
		for _, iv := range list {
			k := kiv{name, iv}
			count[k]++
			if where[k] == nil {
				where[k] = map[string]bool{}
			}
			where[k][d] = true
		}
	}
	var out []KeystreamFinding
	for k, c := range count {
		if c < 2 {
			continue
		}
		f := KeystreamFinding{KeyName: k.name, IV: k.iv, Count: c}
		for d := range where[k] {
			f.Domains = append(f.Domains, d)
		}
		sort.Strings(f.Domains)
		out = append(out, f)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].KeyName != out[j].KeyName {
			return out[i].KeyName < out[j].KeyName
		}
		return out[i].IV < out[j].IV
	})
	return out
}

// ShannonBitsPerByte estimates the byte-level Shannon entropy of b —
// the STEK entropy probe's cheap screen. A repeated fixed 16-byte IV
// stays capped at log2(16) = 4 bits/byte no matter how many samples
// accumulate, while pooled uniform-random IVs climb toward 8 — the gap
// widens with sample count.
func ShannonBitsPerByte(b []byte) float64 {
	if len(b) == 0 {
		return 0
	}
	var hist [256]int
	for _, c := range b {
		hist[c]++
	}
	h := 0.0
	n := float64(len(b))
	for _, c := range hist {
		if c == 0 {
			continue
		}
		p := float64(c) / n
		h -= p * math.Log2(p)
	}
	return h
}
