package keyex

import (
	"crypto/ecdh"
	"crypto/elliptic"
	"io"
	"math/big"
	"sync"

	"tlsshortcuts/internal/drbg"
	"tlsshortcuts/internal/telemetry"
)

// Premaster exchange cache: both ends of every simulated handshake live in
// this process, and the client computes the shared secret before its
// ClientKeyExchange is written. The server would then recompute the
// mathematically identical bytes from its own private half. Keying the
// finished agreement by the two public values lets the server side skip
// its scalar multiplication (ECDHE) or modular exponentiation (DHE)
// entirely: for any (serverPub, clientPub) pair there is exactly one
// shared secret, so a lookup hit returns the same bytes the computation
// would. The client's store happens-before the server's lookup (the store
// precedes the pipe write carrying the CKE), and a miss simply falls back
// to the real computation, so correctness never depends on the cache.
//
// Entries hold only values produced by a completed, validated agreement;
// an entry can therefore never admit a public value the slow path would
// have rejected. The hit counter is wall/-prefixed: hit totals depend on
// wholesale-clear timing and process history, not on campaign content.
var pmx struct {
	mu sync.Mutex
	m  map[string]map[string][]byte // serverPub -> clientPub -> premaster
	n  int
}

// maxExchangeEntries bounds the cache; Fresh-policy servers insert a new
// serverPub per connection, so the cache is cleared wholesale every
// maxExchangeEntries handshakes and useful (Reuse-policy) entries are
// re-established by the next client store.
const maxExchangeEntries = 16384

// PremasterStore records the agreed premaster for a public-value pair.
// All three slices must be immutable from the caller's side: the keys are
// copied by the string conversion, but pm is retained as-is.
func PremasterStore(serverPub, clientPub, pm []byte) {
	pmx.mu.Lock()
	if pmx.n >= maxExchangeEntries {
		pmx.m, pmx.n = nil, 0
	}
	if pmx.m == nil {
		pmx.m = make(map[string]map[string][]byte, 1024)
	}
	inner := pmx.m[string(serverPub)]
	if inner == nil {
		inner = make(map[string][]byte, 1)
		pmx.m[string(serverPub)] = inner
	}
	if _, ok := inner[string(clientPub)]; !ok {
		pmx.n++
	}
	inner[string(clientPub)] = pm
	pmx.mu.Unlock()
}

// PremasterLookup returns the premaster previously agreed for the pair,
// or nil. The returned slice must not be modified. Every store is
// consumed by exactly one lookup — the server side of the same
// handshake — so a hit deletes the entry: resident cache size stays at
// the number of in-flight handshakes rather than maxExchangeEntries.
// Two concurrent handshakes against the same reuse-keyed server share a
// (serverPub, clientPub) pair; the one losing the delete race just
// recomputes the identical bytes.
func PremasterLookup(serverPub, clientPub []byte) []byte {
	pmx.mu.Lock()
	inner := pmx.m[string(serverPub)]
	pm := inner[string(clientPub)]
	if pm != nil {
		delete(inner, string(clientPub))
		if len(inner) == 0 {
			delete(pmx.m, string(serverPub))
		}
		pmx.n--
	}
	pmx.mu.Unlock()
	if pm != nil {
		telemetry.Global().Counter("wall/keyex/premaster_exchange_hit").Inc()
	}
	return pm
}

// The scanning client's process-wide fixed P-256 key. The derivation
// label predates this package hosting the key (the client derived it
// in-package) and is load-bearing: the public point travels in every
// ClientKeyExchange, so changing the label would change campaign bytes.
var fixedClient struct {
	once   sync.Once
	key    *ecdh.PrivateKey
	pub    []byte   // marshaled public point, memoized alongside
	scalar *big.Int // private scalar, for the server-primed exchange
}

func initFixedClient() {
	fixedClient.once.Do(func() {
		// Explicit scalar bytes, not GenerateKey: GenerateKey does not
		// consume a reader deterministically, and this key must be the
		// same in every process.
		r := drbg.NewString("tlsclient|fixed-ecdhe")
		for i := 0; i < 64; i++ {
			var seed [32]byte
			if _, err := io.ReadFull(r, seed[:]); err != nil {
				break
			}
			if k, err := ecdh.P256().NewPrivateKey(seed[:]); err == nil {
				fixedClient.key = k
				fixedClient.pub = k.PublicKey().Bytes()
				fixedClient.scalar = new(big.Int).SetBytes(seed[:])
				return
			}
		}
		panic("keyex: fixed client ECDHE derivation failed")
	})
}

// FixedClientECDHE returns the fixed client key and its marshaled public
// point. Neither may be modified.
func FixedClientECDHE() (*ecdh.PrivateKey, []byte) {
	initFixedClient()
	return fixedClient.key, fixedClient.pub
}

// Scalar exchange, the server→client direction. When a server generates
// a fresh ECDHE key it publishes its private scalar keyed by the public
// point — one map insert, no extra curve work — before the SKE carrying
// that point leaves. A fixed-key client that actually completes the
// handshake (key-exchange scans disconnect after the SKE and never need
// a premaster) then derives the shared secret as (x*xs mod n)*G: a
// base-point multiplication against the generator's precomputed tables,
// roughly a third of the arbitrary-point x*Ys it replaces. The points
// are equal — x*Ys = x*(xs*G) = (x*xs mod n)*G — and both ecdh.ECDH and
// the public-key serialization expose the 32-byte big-endian
// x-coordinate, so the derived bytes match the slow path exactly.
//
// Fresh-mode scalars go in the volatile map: a fresh public value
// belongs to exactly one connection, so a consuming lookup deletes the
// entry, and the map's residency is bounded by in-flight handshakes
// plus the never-consumed entries of SKE-and-disconnect probes (cleared
// wholesale at the cap). Reuse-mode scalars go in the sticky map: the
// same value serves every connection of an epoch and is only re-stored
// on an epoch-cache miss, so those entries survive lookups and volatile
// churn alike. Splitting the maps keeps fresh-probe turnover from
// evicting the long-lived reuse entries.
var sxs struct {
	mu     sync.Mutex
	vol    map[string]*big.Int // fresh serverPub -> scalar, delete-on-consume
	sticky map[string]*big.Int // reuse serverPub -> scalar, one per epoch
}

// maxVolatileScalars bounds the volatile scalar map. Unconsumed entries
// come from kex-only probes at one per probe, so the map turns over
// quickly; consumed entries delete themselves, so a small cap costs
// nearly nothing in hits (a store is consumed within its own
// connection's round-trip).
const maxVolatileScalars = 4096

var p256Order = elliptic.P256().Params().N

func scalarStore(pub []byte, priv *ecdh.PrivateKey, sticky bool) {
	d := new(big.Int).SetBytes(priv.Bytes())
	sxs.mu.Lock()
	if sticky {
		if sxs.sticky == nil || len(sxs.sticky) >= maxExchangeEntries {
			sxs.sticky = make(map[string]*big.Int, 64)
		}
		sxs.sticky[string(pub)] = d
	} else {
		if sxs.vol == nil || len(sxs.vol) >= maxVolatileScalars {
			sxs.vol = make(map[string]*big.Int, 1024)
		}
		sxs.vol[string(pub)] = d
	}
	sxs.mu.Unlock()
}

// ClientPremasterFromScalar derives the premaster for the fixed client
// key against serverPub, if that server published its scalar; nil
// otherwise. The returned slice must not be modified.
func ClientPremasterFromScalar(serverPub []byte) []byte {
	sxs.mu.Lock()
	d0 := sxs.vol[string(serverPub)]
	if d0 != nil {
		delete(sxs.vol, string(serverPub))
	} else {
		d0 = sxs.sticky[string(serverPub)]
	}
	sxs.mu.Unlock()
	if d0 == nil {
		return nil
	}
	initFixedClient()
	d := new(big.Int).Mul(d0, fixedClient.scalar)
	d.Mod(d, p256Order)
	var buf [32]byte
	d.FillBytes(buf[:])
	// d cannot be 0 mod n: both factors are nonzero mod the prime n.
	pk, err := ecdh.P256().NewPrivateKey(buf[:])
	if err != nil {
		return nil // fall back to the real computation
	}
	telemetry.Global().Counter("wall/keyex/scalar_exchange_hit").Inc()
	return pk.PublicKey().Bytes()[1:33]
}
