// Million-scale extrapolation profile: runs a paper-shaped campaign (63
// scan days, list size set by BENCH_MILLION_LIST) while sampling peak
// live heap, then projects memory and wall time to the Top Million x 63
// days the paper actually scanned. The projection is honest because the
// incremental aggregator makes resident memory O(domains) — independent
// of day count — and shards divide wall time by machine count without
// changing a byte of the merged dataset (TestShardedCampaignMatchesGolden).
//
// `make bench-million` refreshes the committed BENCH_million.json.
package tlsshortcuts_test

import (
	"encoding/json"
	"os"
	"runtime"
	"runtime/metrics"
	"strconv"
	"testing"
	"time"

	"tlsshortcuts/internal/study"
)

const (
	millionDomains = 1_000_000
	millionDays    = 63
)

func envInt(name string, def int) int {
	if v := os.Getenv(name); v != "" {
		if n, err := strconv.Atoi(v); err == nil && n > 0 {
			return n
		}
	}
	return def
}

// liveSampler measures post-GC live heap at campaign phase boundaries.
// It is handed to study.Run as the Trace writer, so every Write runs on
// the coordinator goroutine after a phase's workers have joined — the
// campaign's only quiescent moments. Forcing a collection there and
// reading /gc/heap/live:bytes yields the reachable bytes of resident
// campaign state: the number the O(domains) memory model is a claim
// about. Passive sampling instead over-reports residency by the
// floating garbage a concurrent mark traces while 16 workers churn
// (measured ~2x at GOGC=100, plus allocate-black inflation on a busy
// host), turning the metric into a GC-configuration probe. One forced
// GC per phase (~one per scan day) costs a few percent of wall time,
// honestly included in the reported seconds_per_op.
type liveSampler struct {
	samples []metrics.Sample
	peak    uint64 // Write calls and the final read are sequenced by study.Run
}

func newLiveSampler() *liveSampler {
	return &liveSampler{samples: []metrics.Sample{{Name: "/gc/heap/live:bytes"}}}
}

func (ls *liveSampler) read() {
	runtime.GC()
	metrics.Read(ls.samples)
	if v := ls.samples[0].Value.Uint64(); v > ls.peak {
		ls.peak = v
	}
}

func (ls *liveSampler) Write(p []byte) (int, error) {
	ls.read()
	return len(p), nil
}

// heapSampler polls total heap object bytes (live plus not-yet-collected
// garbage; tracks GC slack and so measures allocation churn as much as
// residency — reported for context, not gated) until stopped, recording
// the peak.
type heapSampler struct {
	stop chan struct{}
	done chan uint64
}

func startHeapSampler() *heapSampler {
	s := &heapSampler{stop: make(chan struct{}), done: make(chan uint64)}
	go func() {
		samples := []metrics.Sample{{Name: "/memory/classes/heap/objects:bytes"}}
		var peak uint64
		read := func() {
			metrics.Read(samples)
			if v := samples[0].Value.Uint64(); v > peak {
				peak = v
			}
		}
		tick := time.NewTicker(100 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-s.stop:
				read()
				s.done <- peak
				return
			case <-tick.C:
				read()
			}
		}
	}()
	return s
}

func (s *heapSampler) peak() uint64 {
	close(s.stop)
	return <-s.done
}

func BenchmarkCampaignMillionProfile(b *testing.B) {
	size := envInt("BENCH_MILLION_LIST", 4000)
	days := envInt("BENCH_MILLION_DAYS", millionDays)
	b.ReportAllocs()

	var dials uint64
	var elapsed time.Duration
	var peakLive, peakObjects uint64
	runtime.GC()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sampler := startHeapSampler()
		live := newLiveSampler()
		start := time.Now()
		ds, err := study.Run(study.Options{ListSize: size, Days: days, Seed: 3, Workers: 16, Trace: live})
		if err != nil {
			b.Fatal(err)
		}
		live.read() // final dataset + world, after the last phase
		elapsed += time.Since(start)
		dials += ds.Dials
		if live.peak > peakLive {
			peakLive = live.peak
		}
		if p := sampler.peak(); p > peakObjects {
			peakObjects = p
		}
	}
	b.StopTimer()

	secPerOp := elapsed.Seconds() / float64(b.N)
	hsPerSec := float64(dials) / elapsed.Seconds()
	bytesPerDomain := float64(peakLive) / float64(size)
	domainDays := float64(size) * float64(days)
	targetDomainDays := float64(millionDomains) * float64(millionDays)
	b.ReportMetric(hsPerSec, "handshakes/s")
	b.ReportMetric(bytesPerDomain, "heapB/domain")

	out := os.Getenv("BENCH_MILLION_OUT")
	if out == "" {
		return
	}
	doc := map[string]interface{}{
		"benchmark":                  "CampaignMillionProfile",
		"list_size":                  size,
		"days":                       days,
		"workers":                    16,
		"seed":                       3,
		"iterations":                 b.N,
		"seconds_per_op":             secPerOp,
		"handshakes_per_op":          dials / uint64(b.N),
		"handshakes_per_sec":         hsPerSec,
		"peak_live_heap_bytes":       peakLive,
		"peak_heap_objects_bytes":    peakObjects,
		"live_heap_bytes_per_domain": bytesPerDomain,
		"live_heap_method":           "peak /gc/heap/live:bytes read after a forced GC at each phase boundary (workers quiescent); passive sampling would count the concurrent marker's floating garbage as resident",
		"extrapolation": map[string]interface{}{
			"target":                        "Top Million x 63 days (paper scale)",
			"projected_peak_heap_bytes":     uint64(bytesPerDomain * millionDomains),
			"projected_wall_hours_1host":    secPerOp * targetDomainDays / domainDays / 3600,
			"projected_wall_hours_64shards": secPerOp * targetDomainDays / domainDays / 3600 / 64,
			"memory_model":                  "O(domains): per-day observations fold into running per-domain state as each day completes, so days do not multiply resident memory",
			"shard_model":                   "studyrun -shard i/N slices divide wall time ~linearly; -merge reproduces the monolithic dataset byte-identically",
		},
	}
	enc, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		b.Fatal(err)
	}
	if err := os.WriteFile(out, append(enc, '\n'), 0o644); err != nil {
		b.Fatal(err)
	}
	b.Logf("wrote %s", out)
}
