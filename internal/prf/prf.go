// Package prf implements the TLS 1.2 pseudo-random function (RFC 5246
// §5, P_SHA256 only) and the standard key derivations built on it.
package prf

import (
	"crypto/hmac"
	"crypto/sha256"
	"hash"
)

// phash expands P_SHA256 under an already-keyed HMAC. One instance is
// reset between MACs instead of re-keying per block: hmac.New hashes the
// key into both pads every call, which tripled the hashing work for the
// three MACs per output block.
func phash(h hash.Hash, seed []byte, n int) []byte {
	out := make([]byte, 0, n)
	var a [sha256.Size]byte
	h.Reset()
	h.Write(seed)
	h.Sum(a[:0]) // A(1)
	for len(out) < n {
		h.Reset()
		h.Write(a[:])
		h.Write(seed)
		out = h.Sum(out)
		// A(i+1) = HMAC(A(i)); Write copies a into the hash state, so
		// summing back into a is safe.
		h.Reset()
		h.Write(a[:])
		h.Sum(a[:0])
	}
	return out[:n]
}

// PHash is P_SHA256(secret, seed) expanded to n bytes.
func PHash(secret, seed []byte, n int) []byte {
	return phash(hmac.New(sha256.New, secret), seed, n)
}

// PRF is the TLS 1.2 PRF: P_SHA256(secret, label || seed).
func PRF(secret []byte, label string, seed []byte, n int) []byte {
	ls := make([]byte, 0, len(label)+len(seed))
	ls = append(ls, label...)
	ls = append(ls, seed...)
	return PHash(secret, ls, n)
}

// Expander amortizes the HMAC keying across the several PRF calls a
// handshake makes under one secret (key expansion plus two Finished
// hashes), and — unlike crypto/hmac — is rekeyable in place: a pooled
// connection calls SetSecret per handshake and never re-allocates MAC
// state. It implements HMAC-SHA256 from one reused SHA-256 instance and
// expander-owned pad/scratch arrays, so a keyed MAC costs zero
// allocations (crypto/hmac's New allocates two digests plus pads on
// every keying).
type Expander struct {
	h          hash.Hash // single reused SHA-256 instance
	ipad, opad [64]byte  // key XOR 0x36 / 0x5c, per RFC 2104
	isum       [sha256.Size]byte
	a          [sha256.Size]byte // P_SHA256's A(i) chain value
	ls         []byte
}

// NewExpander returns an Expander keyed with secret.
func NewExpander(secret []byte) *Expander {
	e := &Expander{}
	e.SetSecret(secret)
	return e
}

// SetSecret re-keys the expander in place.
func (e *Expander) SetSecret(secret []byte) {
	if e.h == nil {
		e.h = sha256.New()
	}
	k := secret
	if len(k) > len(e.ipad) {
		e.h.Reset()
		e.h.Write(k)
		k = e.h.Sum(e.isum[:0])
	}
	for i := range e.ipad {
		e.ipad[i] = 0x36
		e.opad[i] = 0x5c
	}
	for i, b := range k {
		e.ipad[i] ^= b
		e.opad[i] ^= b
	}
}

// begin starts one MAC: the inner hash absorbs the inner pad.
func (e *Expander) begin() {
	e.h.Reset()
	e.h.Write(e.ipad[:])
}

// finish completes the MAC begun by begin, appending the tag to dst.
func (e *Expander) finish(dst []byte) []byte {
	inner := e.h.Sum(e.isum[:0])
	e.h.Reset()
	e.h.Write(e.opad[:])
	e.h.Write(inner)
	return e.h.Sum(dst)
}

// PRF is the TLS 1.2 PRF under the expander's secret.
func (e *Expander) PRF(label string, seed []byte, n int) []byte {
	return e.AppendPRF(make([]byte, 0, n), label, seed, n)
}

// AppendPRF appends n bytes of P_SHA256(secret, label || seed) to dst,
// allocating only if dst lacks capacity — the engines pass per-conn
// scratch so steady-state key expansion is allocation-free.
func (e *Expander) AppendPRF(dst []byte, label string, seed []byte, n int) []byte {
	e.ls = append(e.ls[:0], label...)
	e.ls = append(e.ls, seed...)
	base := len(dst)
	e.begin()
	e.h.Write(e.ls)
	e.finish(e.a[:0]) // A(1)
	for len(dst)-base < n {
		e.begin()
		e.h.Write(e.a[:])
		e.h.Write(e.ls)
		dst = e.finish(dst)
		// A(i+1) = HMAC(A(i)); begin/Write copy a into the hash state,
		// so summing back into a is safe.
		e.begin()
		e.h.Write(e.a[:])
		e.finish(e.a[:0])
	}
	return dst[:base+n]
}

// MasterSecret derives the 48-byte master secret from a premaster secret
// and the two hello randoms.
func MasterSecret(premaster, clientRandom, serverRandom []byte) []byte {
	seed := make([]byte, 0, 64)
	seed = append(seed, clientRandom...)
	seed = append(seed, serverRandom...)
	return PRF(premaster, "master secret", seed, 48)
}

// KeyBlock derives n bytes of key material (note the server-random-first
// seed order, per RFC 5246 §6.3).
func KeyBlock(master, serverRandom, clientRandom []byte, n int) []byte {
	seed := make([]byte, 0, 64)
	seed = append(seed, serverRandom...)
	seed = append(seed, clientRandom...)
	return PRF(master, "key expansion", seed, n)
}

// FinishedHash computes the 12-byte verify_data for a Finished message.
func FinishedHash(master []byte, label string, transcriptHash []byte) []byte {
	return PRF(master, label, transcriptHash, 12)
}
