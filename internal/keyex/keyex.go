// Package keyex is the unified key-exchange abstraction over FFDH and
// ECDHE (P-256), with deterministic epoch-derived private values so server
// policies can reuse a KEX value across connections and terminators.
package keyex

import (
	"crypto/ecdh"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"time"

	"tlsshortcuts/internal/ffdh"
)

// ReuseMode says how a server treats its ephemeral KEX value.
type ReuseMode int

const (
	Fresh ReuseMode = iota // new value per handshake (true ephemerality)
	Reuse                  // epoch-derived value, stable for Period
)

func (m ReuseMode) String() string {
	if m == Reuse {
		return "reuse"
	}
	return "fresh"
}

// Policy configures server-side KEX value handling. A zero Policy means a
// fresh value per handshake. Seed names the value-sharing group: two
// terminators with the same Seed (and Base/Period) serve the same value.
type Policy struct {
	Mode   ReuseMode
	Period time.Duration
	Base   time.Time
	Seed   []byte
}

// epochSeed folds the policy's epoch counter into its seed.
func (p *Policy) epochSeed(now time.Time) []byte {
	e := uint64(0)
	if p.Period > 0 {
		d := now.Sub(p.Base)
		if d > 0 {
			e = uint64(d / p.Period)
		}
	}
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], e)
	h := sha256.New()
	h.Write(p.Seed)
	h.Write(b[:])
	return h.Sum(nil)
}

// ECDHEKey returns the server's P-256 private key for this handshake under
// the policy; rand supplies entropy for Fresh mode.
func ECDHEKey(p *Policy, now time.Time, rand interface{ Read([]byte) (int, error) }) (*ecdh.PrivateKey, error) {
	curve := ecdh.P256()
	if p == nil || p.Mode == Fresh {
		return curve.GenerateKey(rand)
	}
	seed := p.epochSeed(now)
	for i := 0; i < 64; i++ {
		h := sha256.New()
		h.Write([]byte("ecdhe-priv"))
		h.Write(seed)
		h.Write([]byte{byte(i)})
		if k, err := curve.NewPrivateKey(h.Sum(nil)); err == nil {
			return k, nil
		}
	}
	return nil, fmt.Errorf("keyex: could not derive P-256 key")
}

// DHEPrivate returns the server's FFDH exponent for this handshake.
func DHEPrivate(g *ffdh.Group, p *Policy, now time.Time, rand interface{ Read([]byte) (int, error) }) ([]byte, error) {
	if p == nil || p.Mode == Fresh {
		buf := make([]byte, 32)
		if _, err := rand.Read(buf); err != nil {
			return nil, err
		}
		return buf, nil
	}
	return p.epochSeed(now), nil
}
