// Package record implements the TLS 1.2 record layer: framing, and
// AES-128-GCM protection with the TLS 1.2 nonce construction (4-byte
// implicit salt from the key block, 8-byte explicit nonce carried on the
// wire — which is what lets a passive attacker with the master secret
// decrypt a recording after the fact).
package record

import (
	"crypto/aes"
	"crypto/cipher"
	"encoding/binary"
	"fmt"
	"io"
	"net"
)

// Record content types.
const (
	TypeChangeCipherSpec uint8 = 20
	TypeAlert            uint8 = 21
	TypeHandshake        uint8 = 22
	TypeAppData          uint8 = 23
)

const recordVersion uint16 = 0x0303

// MaxPlaintext bounds one record's payload.
const MaxPlaintext = 16384

// Record is one TLS record as read off the wire.
type Record struct {
	Type    uint8
	Payload []byte
}

// halfConn is one direction's crypto state.
type halfConn struct {
	aead cipher.AEAD
	salt [4]byte
	seq  uint64
}

// Conn frames records over an underlying net.Conn and applies AEAD
// protection once each direction's keys are armed.
type Conn struct {
	c       net.Conn
	in, out halfConn
	rbuf    []byte
}

// NewConn wraps c; both directions start in plaintext.
func NewConn(c net.Conn) *Conn { return &Conn{c: c} }

// ArmWrite switches the write direction to AES-128-GCM.
func (rc *Conn) ArmWrite(key, salt []byte) error { return rc.out.arm(key, salt) }

// ArmRead switches the read direction to AES-128-GCM.
func (rc *Conn) ArmRead(key, salt []byte) error { return rc.in.arm(key, salt) }

func (h *halfConn) arm(key, salt []byte) error {
	block, err := aes.NewCipher(key)
	if err != nil {
		return err
	}
	h.aead, err = cipher.NewGCM(block)
	if err != nil {
		return err
	}
	copy(h.salt[:], salt)
	h.seq = 0
	return nil
}

func aad(seq uint64, typ uint8, n int) []byte {
	var b [13]byte
	binary.BigEndian.PutUint64(b[:8], seq)
	b[8] = typ
	binary.BigEndian.PutUint16(b[9:11], recordVersion)
	binary.BigEndian.PutUint16(b[11:13], uint16(n))
	return b[:]
}

// Seal protects plain for the armed state; the explicit nonce (the
// sequence number) is prepended to the ciphertext, as on the real wire.
func Seal(h *halfConn, typ uint8, plain []byte) []byte {
	var nonce [12]byte
	copy(nonce[:4], h.salt[:])
	binary.BigEndian.PutUint64(nonce[4:], h.seq)
	out := make([]byte, 8, 8+len(plain)+16)
	binary.BigEndian.PutUint64(out, h.seq)
	out = h.aead.Seal(out, nonce[:], plain, aad(h.seq, typ, len(plain)))
	h.seq++
	return out
}

// Open reverses Seal. It is exported (with OpenPayload) so the attacker
// package can decrypt captured records given recovered keys.
func Open(aead cipher.AEAD, salt []byte, typ uint8, payload []byte) ([]byte, error) {
	return OpenPayload(aead, salt, typ, payload)
}

// OpenPayload decrypts one protected record payload (explicit nonce ||
// ciphertext || tag) using the explicit nonce as the sequence number.
func OpenPayload(aead cipher.AEAD, salt []byte, typ uint8, payload []byte) ([]byte, error) {
	if len(payload) < 8+16 {
		return nil, fmt.Errorf("record: protected payload too short")
	}
	seq := binary.BigEndian.Uint64(payload[:8])
	var nonce [12]byte
	copy(nonce[:4], salt)
	copy(nonce[4:], payload[:8])
	plainLen := len(payload) - 8 - 16
	return aead.Open(nil, nonce[:], payload[8:], aad(seq, typ, plainLen))
}

// NewAEAD builds the AES-128-GCM AEAD for a write key (attacker use).
func NewAEAD(key []byte) (cipher.AEAD, error) {
	block, err := aes.NewCipher(key)
	if err != nil {
		return nil, err
	}
	return cipher.NewGCM(block)
}

// WriteRecord writes one record, protecting it if the direction is armed.
func (rc *Conn) WriteRecord(typ uint8, payload []byte) error {
	if rc.out.aead != nil {
		payload = Seal(&rc.out, typ, payload)
	}
	hdr := make([]byte, 5, 5+len(payload))
	hdr[0] = typ
	binary.BigEndian.PutUint16(hdr[1:3], recordVersion)
	binary.BigEndian.PutUint16(hdr[3:5], uint16(len(payload)))
	_, err := rc.c.Write(append(hdr, payload...))
	return err
}

// ReadRecord reads and (if armed) decrypts one record.
func (rc *Conn) ReadRecord() (*Record, error) {
	var hdr [5]byte
	if _, err := io.ReadFull(rc.c, hdr[:]); err != nil {
		return nil, err
	}
	n := int(binary.BigEndian.Uint16(hdr[3:5]))
	if n > MaxPlaintext+1024 {
		return nil, fmt.Errorf("record: oversized record (%d)", n)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(rc.c, payload); err != nil {
		return nil, err
	}
	typ := hdr[0]
	if rc.in.aead != nil && typ != TypeChangeCipherSpec {
		var nonce [12]byte
		copy(nonce[:4], rc.in.salt[:])
		if len(payload) < 8+16 {
			return nil, fmt.Errorf("record: short protected record")
		}
		copy(nonce[4:], payload[:8])
		seq := binary.BigEndian.Uint64(payload[:8])
		plainLen := len(payload) - 8 - 16
		plain, err := rc.in.aead.Open(nil, nonce[:], payload[8:], aad(seq, typ, plainLen))
		if err != nil {
			return nil, fmt.Errorf("record: decrypt: %w", err)
		}
		payload = plain
	}
	return &Record{Type: typ, Payload: payload}, nil
}

// Alert codes (the tiny subset the engines emit).
const (
	AlertCloseNotify      uint8 = 0
	AlertHandshakeFailure uint8 = 40
	AlertBadCertificate   uint8 = 42
)

// WriteAlert sends a fatal alert.
func (rc *Conn) WriteAlert(code uint8) error {
	return rc.WriteRecord(TypeAlert, []byte{2, code})
}
