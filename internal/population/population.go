// Package population builds the simulated HTTPS Internet: named operator
// profiles (CloudFlare, Google, Yahoo, Netflix, SquareSpace, …) plus a
// statistical long tail, with per-domain shortcut policies calibrated so
// the study's aggregate measurements land on the paper's marginals
// (§4–§5): ~22% of domains reuse a STEK ≥7 days, ~10% ≥30 days, ECDHE
// value reuse 2–3× more common than DHE, a handful of service groups
// covering a double-digit share of the population, and combined
// vulnerability windows >24 h for roughly 40% of domains.
package population

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"tlsshortcuts/internal/cryptanalysis"
	"tlsshortcuts/internal/ffdh"
	"tlsshortcuts/internal/keyex"
	"tlsshortcuts/internal/pki"
	"tlsshortcuts/internal/session"
	"tlsshortcuts/internal/simclock"
	"tlsshortcuts/internal/simnet"
	"tlsshortcuts/internal/ticket"
	"tlsshortcuts/internal/tlsserver"
)

// Options configures a world build.
type Options struct {
	ListSize int
	Seed     int64
	Clock    simclock.Clock // nil: a Manual clock at Start
	Start    time.Time      // zero: simclock.Epoch

	// WeakCrypto appends the calibrated vulnerable operator profiles
	// (weak-seed STEKs, a key name shared across unrelated operators,
	// fixed-IV sealing, an export-grade FFDH group) after the named
	// operators. Off by default: with the toggle off the build is
	// byte-identical to the baseline world, golden hash included.
	WeakCrypto bool
}

// STEKPolicy describes a terminator's ticket-key rotation.
type STEKPolicy struct {
	Static         bool
	Period         time.Duration
	AcceptPrevious int
}

// Behavior is one terminator's observable shortcut configuration.
type Behavior struct {
	Tickets       bool
	TicketFormat  ticket.Format
	STEK          STEKPolicy
	CacheLifetime time.Duration // 0: no session cache
	DHE           keyex.Policy
	ECDHE         keyex.Policy
	SupportDHE    bool
	SupportECDHE  bool
	DHEGroup      *ffdh.Group // nil: the default simulation group
}

// Terminator is one deployed backend (config plus its behavior and STEK
// manager, exposed for target-analysis scenarios).
type Terminator struct {
	Config   *tlsserver.Config
	Behavior Behavior
	Tickets  ticket.Manager
}

// Domain is one name in the simulated list.
type Domain struct {
	Name     string
	Operator string
	Rank     int
	Trusted  bool
	Terms    []*Terminator
}

// World is the built population.
type World struct {
	Opts        Options
	Clock       simclock.Clock
	Net         *simnet.Net
	Roots       *pki.RootStore
	Domains     map[string]*Domain
	ScaleFactor float64 // ListSize / 1e6
}

// TrustedCoreDomains returns the trusted, always-present domains in rank
// order — the study's measurement population.
func (w *World) TrustedCoreDomains() []string {
	var out []*Domain
	for _, d := range w.Domains {
		if d.Trusted {
			out = append(out, d)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Rank < out[j].Rank })
	names := make([]string, len(out))
	for i, d := range out {
		names[i] = d.Name
	}
	return names
}

// AllDomains returns every domain name in rank order — the site
// popularity axis workload samplers (the traffic plane's per-user visit
// model) draw from.
func (w *World) AllDomains() []string {
	out := make([]*Domain, 0, len(w.Domains))
	for _, d := range w.Domains {
		out = append(out, d)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Rank < out[j].Rank })
	names := make([]string, len(out))
	for i, d := range out {
		names[i] = d.Name
	}
	return names
}

// OperatorGroups returns operator -> rank-ordered domain names for every
// operator serving more than one name: the cross-hostname pools (shared
// session caches, shared STEKs) a stateful client can be linked across.
func (w *World) OperatorGroups() map[string][]string {
	groups := make(map[string][]*Domain)
	for _, d := range w.Domains {
		if d.Operator != "" {
			groups[d.Operator] = append(groups[d.Operator], d)
		}
	}
	out := make(map[string][]string)
	for op, ds := range groups {
		if len(ds) < 2 {
			continue
		}
		sort.Slice(ds, func(i, j int) bool { return ds[i].Rank < ds[j].Rank })
		names := make([]string, len(ds))
		for i, d := range ds {
			names[i] = d.Name
		}
		out[op] = names
	}
	return out
}

// Shard returns the round-robin slice of a rank-ordered domain list
// belonging to shard index of count: the domains at positions p with
// p % count == index, in their original order. Every domain lands in
// exactly one shard, the shards' concatenation is a permutation of the
// input, and round-robin keeps each shard's rank distribution — and so
// its operator mix and scan cost — representative of the whole list.
func Shard(list []string, index, count int) []string {
	if count <= 1 {
		return list
	}
	out := make([]string, 0, (len(list)+count-1)/count)
	for p := index; p < len(list); p += count {
		out = append(out, list[p])
	}
	return out
}

// profile is one named operator's deployment template.
type profile struct {
	op    string
	frac  float64
	fixed []string
	b     Behavior
	hint  time.Duration
	// chunk is the max domains per backend cert/terminator.
	chunk int

	// Weak-crypto knobs (only set by weakProfiles):
	stekSeed string      // explicit STEK seed (shared or low-entropy); "" = derived from op|seed
	weakIV   bool        // fixed-IV CBC sealing (AWS-flaw style); static STEKs only
	dheGroup *ffdh.Group // FFDH group override (export-grade shared prime)
}

// profiles is the calibrated operator table. Order fixes rank order.
func profiles() []profile {
	day := 24 * time.Hour
	return []profile{
		{op: "google", frac: 0.025, fixed: []string{"google.com", "blogspot.com", "youtube.com"},
			b: Behavior{Tickets: true, STEK: STEKPolicy{Period: 14 * time.Hour, AcceptPrevious: 1},
				CacheLifetime: 28 * time.Hour, SupportDHE: true, SupportECDHE: true}, hint: 28 * time.Hour},
		{op: "yahoo", frac: 0.004, fixed: []string{"yahoo.com", "tumblr.com"},
			b: Behavior{Tickets: true, STEK: STEKPolicy{Static: true},
				CacheLifetime: 10 * time.Minute, SupportDHE: true, SupportECDHE: true}},
		{op: "qq", frac: 0.002, fixed: []string{"qq.com"},
			b: Behavior{Tickets: true, STEK: STEKPolicy{Static: true}, SupportDHE: true, SupportECDHE: true}},
		{op: "tmall", frac: 0.006, fixed: []string{"taobao.com", "tmall.com"},
			b: Behavior{Tickets: true, STEK: STEKPolicy{Static: true}, SupportECDHE: true}},
		{op: "cloudflare", frac: 0.18, fixed: []string{"cloudflare.com"},
			b: Behavior{Tickets: true, STEK: STEKPolicy{Period: 18 * time.Hour},
				CacheLifetime: 18 * time.Hour, SupportECDHE: true}, hint: 18 * time.Hour, chunk: 64},
		{op: "netflix", frac: 0.002, fixed: []string{"netflix.com"},
			b: Behavior{Tickets: true, STEK: STEKPolicy{Static: true}, SupportDHE: true, SupportECDHE: true,
				DHE:   keyex.Policy{Mode: keyex.Reuse, Period: 60 * day},
				ECDHE: keyex.Policy{Mode: keyex.Reuse, Period: 60 * day}}},
		{op: "whatsapp", frac: 0.002, fixed: []string{"whatsapp.com"},
			b: Behavior{Tickets: true, STEK: STEKPolicy{Period: day}, SupportECDHE: true,
				ECDHE: keyex.Policy{Mode: keyex.Reuse, Period: 62 * day}}},
		{op: "pinterest", frac: 0.002, fixed: []string{"pinterest.com"},
			b: Behavior{Tickets: true, STEK: STEKPolicy{Static: true}, SupportECDHE: true}},
		{op: "cbssports", frac: 0.001, fixed: []string{"cbssports.com"},
			b: Behavior{Tickets: true, STEK: STEKPolicy{Period: day}, SupportDHE: true,
				DHE: keyex.Policy{Mode: keyex.Reuse, Period: 60 * day}}},
		{op: "cookpad", frac: 0.001, fixed: []string{"cookpad.com"},
			b: Behavior{Tickets: true, STEK: STEKPolicy{Period: day}, SupportDHE: true, SupportECDHE: true,
				DHE: keyex.Policy{Mode: keyex.Reuse, Period: 63 * day}}},
		{op: "woot", frac: 0.001, fixed: []string{"woot.com"},
			b: Behavior{Tickets: true, STEK: STEKPolicy{Period: day}, SupportECDHE: true,
				ECDHE: keyex.Policy{Mode: keyex.Reuse, Period: 62 * day}}},
		{op: "automattic", frac: 0.012, fixed: []string{"wordpress.com"},
			b: Behavior{Tickets: true, STEK: STEKPolicy{Period: day},
				CacheLifetime: 6 * time.Hour, SupportDHE: true, SupportECDHE: true}, chunk: 64},
		{op: "fastly", frac: 0.007, fixed: []string{"fastly.net"},
			b: Behavior{Tickets: true, STEK: STEKPolicy{Period: 35 * day}, SupportECDHE: true}, chunk: 64},
		{op: "shopify", frac: 0.008, fixed: []string{"shopify.com"},
			b: Behavior{Tickets: true, STEK: STEKPolicy{Period: day},
				CacheLifetime: 12 * time.Hour, SupportECDHE: true}, chunk: 64},
		{op: "squarespace", frac: 0.016, fixed: []string{"squarespace.com"},
			b: Behavior{CacheLifetime: 5 * time.Minute, SupportECDHE: true,
				ECDHE: keyex.Policy{Mode: keyex.Reuse, Period: 60 * day}}, chunk: 64},
		{op: "livejournal", frac: 0.013, fixed: []string{"livejournal.com"},
			b: Behavior{CacheLifetime: 5 * time.Minute, SupportECDHE: true,
				ECDHE: keyex.Policy{Mode: keyex.Reuse, Period: 17 * day}}, chunk: 64},
		{op: "affinity", frac: 0.004, fixed: []string{"affinity.net"},
			b: Behavior{SupportECDHE: true,
				ECDHE: keyex.Policy{Mode: keyex.Reuse, Period: 62 * day}}},
		{op: "jimdo", frac: 0.004, fixed: []string{"jimdo.com"},
			b: Behavior{SupportECDHE: true,
				ECDHE: keyex.Policy{Mode: keyex.Reuse, Period: 19 * day}}},
		{op: "jackhenry", frac: 0.008, fixed: []string{"jackhenry.com"},
			b: Behavior{Tickets: true, STEK: STEKPolicy{Static: true}, SupportECDHE: true}, chunk: 32},
		{op: "yandex", frac: 0.005, fixed: []string{"yandex.ru"},
			b: Behavior{Tickets: true, STEK: STEKPolicy{Period: 12 * day},
				CacheLifetime: time.Hour, SupportDHE: true, SupportECDHE: true}},
	}
}

// weakProfiles is the vulnerable-deployment table appended behind
// Options.WeakCrypto, calibrated to Hebrok et al.'s measurements: the
// STEK-crackable operators (weak seed, shared vendor-default key,
// fixed-IV sealing) together cover ~1.9% of the population — the
// fraction whose recorded traffic they passively decrypted on the
// Tranco 100k — plus an export-grade FFDH block for the Logjam
// common-prime amortization.
func weakProfiles() []profile {
	// weakseed-cdn and sharedname-host ship the *same* weak key — a
	// vendor default config deployed by unrelated operators — so the
	// key-name-reuse probe groups them and a single dictionary crack
	// decrypts both.
	shared := string(cryptanalysis.WeakSeed(17))
	return []profile{
		{op: "weakseed-cdn", frac: 0.007, fixed: []string{"weakseed-cdn.example"},
			b:        Behavior{Tickets: true, STEK: STEKPolicy{Static: true}, SupportECDHE: true},
			stekSeed: shared},
		{op: "sharedname-host", frac: 0.005, fixed: []string{"sharedname-host.example"},
			b:        Behavior{Tickets: true, STEK: STEKPolicy{Static: true}, SupportDHE: true, SupportECDHE: true},
			stekSeed: shared},
		// Fixed-IV CBC sealing in the 4-byte-name mbedTLS format: every
		// reissue of the same state is byte-identical on the wire — the
		// AWS keystream-reuse signature.
		{op: "fixediv-cloud", frac: 0.007, fixed: []string{"fixediv-cloud.example"},
			b:        Behavior{Tickets: true, TicketFormat: ticket.FormatMbedTLS, STEK: STEKPolicy{Static: true}, SupportECDHE: true},
			stekSeed: string(cryptanalysis.WeakSeed(99)), weakIV: true},
		// DHE-only legacy block serving the shared export-grade prime.
		{op: "exportdh-legacy", frac: 0.004, fixed: []string{"exportdh-legacy.example"},
			b:        Behavior{SupportDHE: true, DHEGroup: ffdh.ExportGroup512()},
			dheGroup: ffdh.ExportGroup512()},
	}
}

// Build constructs the world.
func Build(o Options) (*World, error) {
	if o.ListSize < 50 {
		return nil, fmt.Errorf("population: ListSize %d too small (need >= 50)", o.ListSize)
	}
	start := o.Start
	if start.IsZero() {
		start = simclock.Epoch
	}
	clock := o.Clock
	if clock == nil {
		clock = simclock.NewManual(start)
	}
	rng := rand.New(rand.NewSource(o.Seed ^ 0x7515))

	root, err := pki.NewRootCA("Sim Trust Root", pki.ECDSAP256, pki.DefaultRand)
	if err != nil {
		return nil, err
	}
	badRoot, err := pki.NewRootCA("Shady CA", pki.ECDSAP256, pki.DefaultRand)
	if err != nil {
		return nil, err
	}
	w := &World{
		Opts:        o,
		Clock:       clock,
		Net:         simnet.New(),
		Roots:       pki.NewRootStore(root),
		Domains:     make(map[string]*Domain),
		ScaleFactor: float64(o.ListSize) / 1e6,
	}
	bld := &builder{w: w, rng: rng, root: root, badRoot: badRoot, start: start, notAfter: start.AddDate(2, 0, 0)}

	ps := profiles()
	if o.WeakCrypto {
		// Appended after the named operators: the weak blocks take ranks
		// before the tail, so they are trusted, always-present, and
		// scanned daily like any named operator.
		ps = append(ps, weakProfiles()...)
	}
	rank := 1
	for _, p := range ps {
		count := int(p.frac*float64(o.ListSize) + 0.5)
		if count < len(p.fixed) {
			count = len(p.fixed)
		}
		names := append([]string(nil), p.fixed...)
		for i := len(names); i < count; i++ {
			names = append(names, fmt.Sprintf("%s-site-%04d.example", p.op, i))
		}
		if err := bld.operatorBlock(p, names, &rank); err != nil {
			return nil, err
		}
	}
	if err := bld.tail(o.ListSize-len(w.Domains), &rank); err != nil {
		return nil, err
	}
	return w, nil
}

type builder struct {
	w        *World
	rng      *rand.Rand
	root     *pki.RootCA
	badRoot  *pki.RootCA
	start    time.Time
	notAfter time.Time
	asSeq    int
}

func (b *builder) manager(p STEKPolicy, format ticket.Format, seed string) ticket.Manager {
	if p.Static {
		return ticket.NewStatic([]byte(seed), format)
	}
	if p.Period <= 0 {
		return nil
	}
	return &ticket.Rotating{Seed: []byte(seed), Base: b.start, Period: p.Period,
		AcceptPrevious: p.AcceptPrevious, Format: format}
}

// config assembles a terminator Config from a behavior.
func (b *builder) config(beh Behavior, mgr ticket.Manager, cache *session.Cache,
	cert *pki.Certificate, hint time.Duration, kexSeed string) *tlsserver.Config {
	cfg := &tlsserver.Config{
		Clock:        b.w.Clock,
		DefaultCert:  cert,
		Cache:        cache,
		DisableDHE:   !beh.SupportDHE,
		DisableECDHE: !beh.SupportECDHE,
		RestartBase:  b.start,
		TicketHint:   hint,
		// Deterministic per-connection server entropy (the client random
		// salts each stream), so a campaign replays byte-identically.
		RandSeed: []byte("rand:" + kexSeed),
		DHEGroup: beh.DHEGroup,
	}
	if beh.Tickets {
		cfg.Tickets = mgr
	}
	if beh.DHE.Mode == keyex.Reuse {
		pol := beh.DHE
		pol.Base = b.start
		pol.Seed = []byte("dhe:" + kexSeed)
		cfg.DHEPolicy = &pol
	}
	if beh.ECDHE.Mode == keyex.Reuse {
		pol := beh.ECDHE
		pol.Base = b.start
		pol.Seed = []byte("ecdhe:" + kexSeed)
		cfg.ECDHEPolicy = &pol
	}
	return cfg
}

// operatorBlock deploys one named operator: shared STEK manager, shared
// session cache, shared KEX seeds, domains spread over chunked backends.
func (b *builder) operatorBlock(p profile, names []string, rank *int) error {
	seedTag := fmt.Sprintf("%s|%d", p.op, b.w.Opts.Seed)
	stekSeed := "stek:" + seedTag
	if p.stekSeed != "" {
		// Weak profile: the seed is NOT folded with the study seed — a
		// low-entropy deployment key is guessable precisely because it
		// does not depend on per-install entropy.
		stekSeed = p.stekSeed
	}
	var mgr ticket.Manager
	if p.weakIV {
		k := ticket.Derive([]byte(stekSeed), p.b.TicketFormat)
		k.WeakIV = true
		mgr = ticket.NewStaticFromKey(k)
	} else {
		mgr = b.manager(p.b.STEK, p.b.TicketFormat, stekSeed)
	}
	var cache *session.Cache
	if p.b.CacheLifetime > 0 {
		cache = session.NewCache(p.b.CacheLifetime)
	}
	hint := p.hint
	if hint == 0 {
		hint = 2 * time.Hour
	}
	chunk := p.chunk
	if chunk <= 0 {
		chunk = 128
	}
	as := b.nextAS()
	for i := 0; i < len(names); i += chunk {
		j := i + chunk
		if j > len(names) {
			j = len(names)
		}
		block := names[i:j]
		cert, err := b.root.IssueLeaf(block, pki.ECDSAP256, b.start.AddDate(0, -2, 0), b.notAfter, pki.DefaultRand)
		if err != nil {
			return err
		}
		cfg := b.config(p.b, mgr, cache, cert, hint, seedTag)
		term := &Terminator{Config: cfg, Behavior: p.b, Tickets: mgr}
		ip := fmt.Sprintf("%s-ip-%d", p.op, i/chunk)
		for _, name := range block {
			b.w.Domains[name] = &Domain{Name: name, Operator: p.op, Rank: *rank, Trusted: true, Terms: []*Terminator{term}}
			*rank++
			b.w.Net.Register(name, as, []string{ip}, &simnet.Endpoint{Config: cfg})
		}
	}
	return nil
}

func (b *builder) nextAS() int {
	b.asSeq++
	return b.asSeq
}

// tail deploys the long tail: independently sampled per-domain policies,
// small shared-cache co-lo cliques, and the untrusted fringe.
func (b *builder) tail(count int, rank *int) error {
	if count <= 0 {
		return nil
	}
	day := 24 * time.Hour
	var as int
	inAS := 0
	cliqueLeft := 0
	var cliqueCache *session.Cache
	var cliqueOp string
	cliqueSeq := 0
	for i := 0; i < count; i++ {
		if inAS == 0 {
			as = b.nextAS()
			inAS = 50
		}
		inAS--
		name := fmt.Sprintf("site-%06d.example", i)
		trusted := b.rng.Float64() >= 0.08
		beh := b.sampleTailBehavior(day)

		// ~3% of the tail sits in small shared-cache co-lo cliques —
		// the only cross-domain cache groups the 5+5 probe budget has
		// to hunt for.
		var cache *session.Cache
		op := name
		if cliqueLeft > 0 {
			cliqueLeft--
			cache = cliqueCache
			op = cliqueOp
			beh.CacheLifetime = cliqueCache.Lifetime
		} else if trusted && b.rng.Float64() < 0.015 {
			cliqueSeq++
			cliqueOp = fmt.Sprintf("hostco-%03d", cliqueSeq)
			cliqueCache = session.NewCache(30 * time.Minute)
			cliqueLeft = 1 + b.rng.Intn(2) // 1-2 more members
			cache = cliqueCache
			op = cliqueOp
			beh.CacheLifetime = cliqueCache.Lifetime
		} else if beh.CacheLifetime > 0 {
			cache = session.NewCache(beh.CacheLifetime)
		}

		issuer := b.root
		if !trusted {
			issuer = b.badRoot
		}

		// A-record jitter: long-lived-STEK tail domains run two
		// balancer backends with independent process-lifetime keys, so
		// daily scans see each key on a random subset of days.
		backends := 1
		if beh.Tickets && beh.STEK.Static && b.rng.Float64() < 0.5 {
			backends = 2
		}
		cert, err := issuer.IssueLeaf([]string{name}, pki.ECDSAP256, b.start.AddDate(0, -2, 0), b.notAfter, pki.DefaultRand)
		if err != nil {
			return err
		}
		var terms []*Terminator
		var eps []*simnet.Endpoint
		for k := 0; k < backends; k++ {
			seedTag := fmt.Sprintf("%s|%d|%d", name, b.w.Opts.Seed, k)
			mgr := b.manager(beh.STEK, beh.TicketFormat, "stek:"+seedTag)
			cfg := b.config(beh, mgr, cache, cert, 2*time.Hour, fmt.Sprintf("%s|%d", name, b.w.Opts.Seed))
			terms = append(terms, &Terminator{Config: cfg, Behavior: beh, Tickets: mgr})
			eps = append(eps, &simnet.Endpoint{Config: cfg})
		}
		b.w.Domains[name] = &Domain{Name: name, Operator: op, Rank: *rank, Trusted: trusted, Terms: terms}
		*rank++
		b.w.Net.Register(name, as, []string{"ip-" + name}, eps...)
	}
	return nil
}

// sampleTailBehavior draws one long-tail domain's policies, calibrated to
// the global marginals (see package comment).
func (b *builder) sampleTailBehavior(day time.Duration) Behavior {
	beh := Behavior{}
	// Cipher support: 86% ECDHE; everyone else at least DHE; 55% of
	// ECDHE deployments also enable DHE.
	if b.rng.Float64() < 0.86 {
		beh.SupportECDHE = true
		beh.SupportDHE = b.rng.Float64() < 0.55
	} else {
		beh.SupportDHE = true
	}
	// STEK policy buckets (fractions of the tail; see package comment).
	r := b.rng.Float64()
	switch {
	case r < 0.285: // no tickets
	case r < 0.387: // static, never rotated
		beh.Tickets = true
		beh.STEK = STEKPolicy{Static: true}
	case r < 0.557: // long rotation, 10-20 days
		beh.Tickets = true
		beh.STEK = STEKPolicy{Period: time.Duration(10+b.rng.Intn(11)) * day}
	case r < 0.793: // short rotation, 2-5 days
		beh.Tickets = true
		beh.STEK = STEKPolicy{Period: time.Duration(2+b.rng.Intn(4)) * day}
	default: // daily rotation
		beh.Tickets = true
		beh.STEK = STEKPolicy{Period: day}
	}
	if beh.Tickets {
		switch f := b.rng.Float64(); {
		case beh.STEK.Static && f < 0.3:
			beh.TicketFormat = ticket.FormatSChannel
		case f < 0.5:
			beh.TicketFormat = ticket.FormatMbedTLS
		default:
			beh.TicketFormat = ticket.FormatRFC5077
		}
	}
	// Session caches: 80% run one; lifetimes 5 min / 1 h / 10 h / 24 h.
	if b.rng.Float64() < 0.80 {
		switch r := b.rng.Float64(); {
		case r < 0.50:
			beh.CacheLifetime = 5 * time.Minute
		case r < 0.75:
			beh.CacheLifetime = time.Hour
		case r < 0.90:
			beh.CacheLifetime = 10 * time.Hour
		default:
			beh.CacheLifetime = 24 * time.Hour
		}
	}
	// KEX value reuse: a sprinkle on top of the named reusers.
	if beh.SupportDHE && b.rng.Float64() < 0.005 {
		beh.DHE = keyex.Policy{Mode: keyex.Reuse, Period: b.reusePeriod(day)}
	}
	if beh.SupportECDHE && b.rng.Float64() < 0.005 {
		beh.ECDHE = keyex.Policy{Mode: keyex.Reuse, Period: b.reusePeriod(day)}
	}
	return beh
}

func (b *builder) reusePeriod(day time.Duration) time.Duration {
	switch r := b.rng.Float64(); {
	case r < 0.3:
		return 3 * day
	case r < 0.8:
		return 12 * day
	default:
		return 45 * day
	}
}
