package simnet

import (
	"testing"
	"time"

	"tlsshortcuts/internal/faults"
	"tlsshortcuts/internal/simclock"
	"tlsshortcuts/internal/tlsserver"
)

func faultNet() *Net {
	n := New()
	n.Register("a.example", 1, []string{"10.0.0.1"}, &Endpoint{Config: &tlsserver.Config{}})
	return n
}

func TestDialRefusedClassifiesDial(t *testing.T) {
	n := faultNet()
	clock := simclock.NewManual(simclock.Epoch)
	n.SetFaults(faults.NewPlan(faults.Options{Seed: 1, Refuse: 1}, clock))
	_, err := n.DialProbe("a.example", "probe")
	if err == nil {
		t.Fatal("Refuse=1 plan let a dial through")
	}
	if c := faults.Classify(err); c != faults.ClassDial {
		t.Fatalf("refused dial classified %q, want %q (err: %v)", c, faults.ClassDial, err)
	}
}

func TestNoRouteClassifiesDial(t *testing.T) {
	n := faultNet()
	_, err := n.Dial("nonexistent.example")
	if err == nil {
		t.Fatal("dial to an unregistered domain succeeded")
	}
	if c := faults.Classify(err); c != faults.ClassDial {
		t.Fatalf("no-route dial classified %q, want %q", c, faults.ClassDial)
	}
}

func TestStalledBackendTimesOutReads(t *testing.T) {
	n := faultNet()
	clock := simclock.NewManual(simclock.Epoch)
	n.SetFaults(faults.NewPlan(faults.Options{Seed: 1, StallDomains: []string{"a.example"}}, clock))
	conn, err := n.DialProbe("a.example", "probe")
	if err != nil {
		t.Fatalf("stalled dial should return a connection: %v", err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte("client hello bytes")); err != nil {
		t.Fatalf("write to stalled backend should be swallowed: %v", err)
	}
	_ = conn.SetReadDeadline(time.Now().Add(50 * time.Millisecond))
	buf := make([]byte, 16)
	_, err = conn.Read(buf)
	if err == nil {
		t.Fatal("read from stalled backend returned data")
	}
	if c := faults.Classify(err); c != faults.ClassTimeout {
		t.Fatalf("stalled read classified %q, want %q (err: %v)", c, faults.ClassTimeout, err)
	}
}

func TestResetDropsConnectionMidHandshake(t *testing.T) {
	n := faultNet()
	clock := simclock.NewManual(simclock.Epoch)
	n.SetFaults(faults.NewPlan(faults.Options{Seed: 1, Reset: 1}, clock))
	conn, err := n.DialProbe("a.example", "probe")
	if err != nil {
		t.Fatalf("reset dial should return a connection: %v", err)
	}
	defer conn.Close()
	_ = conn.SetDeadline(time.Now().Add(5 * time.Second))
	// An oversized record header: the server errors at the record layer
	// and tears the connection down (directly, or via resetConn cutting
	// off its alert write).
	_, _ = conn.Write([]byte{22, 3, 3, 0xff, 0xff})
	buf := make([]byte, 256)
	for i := 0; i < 16; i++ {
		if _, err = conn.Read(buf); err != nil {
			break
		}
	}
	if err == nil {
		t.Fatal("reset connection never errored")
	}
	if c := faults.Classify(err); c != faults.ClassReset {
		t.Fatalf("reset read classified %q, want %q (err: %v)", c, faults.ClassReset, err)
	}
}

func TestClearingFaultsRestoresNormalDials(t *testing.T) {
	n := faultNet()
	clock := simclock.NewManual(simclock.Epoch)
	n.SetFaults(faults.NewPlan(faults.Options{Seed: 1, Refuse: 1}, clock))
	if _, err := n.DialProbe("a.example", "probe"); err == nil {
		t.Fatal("plan not applied")
	}
	n.SetFaults(nil)
	conn, err := n.Dial("a.example")
	if err != nil {
		t.Fatalf("dial after clearing faults: %v", err)
	}
	conn.Close()
}
