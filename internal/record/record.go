// Package record implements the TLS 1.2 record layer: framing, and
// AES-128-GCM protection with the TLS 1.2 nonce construction (4-byte
// implicit salt from the key block, 8-byte explicit nonce carried on the
// wire — which is what lets a passive attacker with the master secret
// decrypt a recording after the fact).
package record

import (
	"crypto/aes"
	"crypto/cipher"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"

	"tlsshortcuts/internal/perf"
	"tlsshortcuts/internal/telemetry"
)

// Record content types.
const (
	TypeChangeCipherSpec uint8 = 20
	TypeAlert            uint8 = 21
	TypeHandshake        uint8 = 22
	TypeAppData          uint8 = 23
)

const recordVersion uint16 = 0x0303

// MaxPlaintext bounds one record's payload.
const MaxPlaintext = 16384

// Record is one TLS record as read off the wire.
type Record struct {
	Type    uint8
	Payload []byte
}

// halfConn is one direction's crypto state.
type halfConn struct {
	aead cipher.AEAD
	salt [4]byte
	seq  uint64
	// nonce and aadBuf are scratch handed to the AEAD. They live on the
	// (heap-resident) connection rather than the stack because slices
	// passed through the cipher.AEAD interface escape: stack locals here
	// would cost two allocations per record.
	nonce  [12]byte
	aadBuf [13]byte
}

// Conn frames records over an underlying net.Conn and applies AEAD
// protection once each direction's keys are armed.
type Conn struct {
	c       net.Conn
	in, out halfConn
	// hdr is the reusable frame-header scratch for ReadRecord (reads
	// through the net.Conn interface escape their buffer).
	hdr [5]byte
	// wbuf is the reusable outgoing-record scratch. Both in-memory pipe
	// flavors (net.Pipe and simnet's buffered pipe) consume the bytes
	// before Write returns, so the buffer is free again at the next call.
	wbuf []byte
	// rbuf is the reusable incoming-record scratch: a Record's Payload is
	// only valid until the next ReadRecord on the same Conn.
	rbuf []byte
	// coalesce batches outgoing records in pend until Flush — one
	// transport write (one pipe lock + wakeup) per flight instead of one
	// per record. ReadRecord flushes first, so the peer always sees every
	// pending byte before this side blocks on it; the byte stream is
	// identical to per-record writes.
	coalesce bool
	pend     []byte
}

// maxPend bounds the coalescing buffer; a pending flight larger than
// this is flushed eagerly. Handshake flights run ~2 KB, so steady state
// never hits the bound.
const maxPend = 8 << 10

// NewConn wraps c; both directions start in plaintext and writes are
// unbuffered (callers that never read again would otherwise need an
// explicit Flush).
func NewConn(c net.Conn) *Conn { return &Conn{c: c} }

// Reset rebinds the connection to c and clears both directions' crypto
// state, keeping the frame scratch buffers. The engines pool their
// handshake state across connections; nothing a caller retains aliases
// these buffers (payloads are copied out before the next read). Flight
// coalescing is enabled here — the pooled engines flush before every
// read and at connection exit.
func (rc *Conn) Reset(c net.Conn) {
	rc.c = c
	rc.in = halfConn{}
	rc.out = halfConn{}
	rc.coalesce = perf.FlightCoalescing()
	rc.pend = rc.pend[:0]
}

// ArmWrite switches the write direction to AES-128-GCM.
func (rc *Conn) ArmWrite(key, salt []byte) error { return rc.out.arm(key, salt) }

// ArmRead switches the read direction to AES-128-GCM.
func (rc *Conn) ArmRead(key, salt []byte) error { return rc.in.arm(key, salt) }

func (h *halfConn) arm(key, salt []byte) error {
	aead, err := trafficAEAD(key)
	if err != nil {
		return err
	}
	h.aead = aead
	copy(h.salt[:], salt)
	h.seq = 0
	return nil
}

// aeadCache amortizes AES-GCM construction across the two endpoints of a
// connection: every traffic key is armed exactly twice — once by the
// writer, once (strictly later, because arming happens before the first
// protected byte is sent) by the reader. The first arm constructs and
// parks the AEAD; the second consumes it, so the cache holds only
// in-flight keys and halves the per-handshake cipher setups. GCM state
// is read-only after construction, so the brief window where both
// half-connections hold the same AEAD is safe under concurrent use.
var aeadCache struct {
	mu sync.Mutex
	m  map[[16]byte]cipher.AEAD
}

// maxAEADCacheEntries bounds keys stranded by half-finished handshakes
// (the peer never armed); the cache is cleared wholesale at the bound.
const maxAEADCacheEntries = 4096

func trafficAEAD(key []byte) (cipher.AEAD, error) {
	if len(key) != 16 || !perf.CryptoAmortization() {
		return NewAEAD(key)
	}
	var k [16]byte
	copy(k[:], key)
	aeadCache.mu.Lock()
	if a, ok := aeadCache.m[k]; ok {
		delete(aeadCache.m, k)
		aeadCache.mu.Unlock()
		// wall/: a bound-clear between the two arms of one key turns a
		// hit into a miss, so the count depends on scheduling.
		telemetry.Global().Counter("wall/record/aead_cache_hit").Inc()
		return a, nil
	}
	aeadCache.mu.Unlock()
	a, err := NewAEAD(key)
	if err != nil {
		return nil, err
	}
	aeadCache.mu.Lock()
	if aeadCache.m == nil || len(aeadCache.m) >= maxAEADCacheEntries {
		aeadCache.m = make(map[[16]byte]cipher.AEAD, 64)
	}
	aeadCache.m[k] = a
	aeadCache.mu.Unlock()
	return a, nil
}

func aad(seq uint64, typ uint8, n int) []byte {
	var b [13]byte
	binary.BigEndian.PutUint64(b[:8], seq)
	b[8] = typ
	binary.BigEndian.PutUint16(b[9:11], recordVersion)
	binary.BigEndian.PutUint16(b[11:13], uint16(n))
	return b[:]
}

// aad is the connection-scratch flavor of the free function above: the
// returned slice aliases the halfConn and is valid until the next call.
func (h *halfConn) aad(seq uint64, typ uint8, n int) []byte {
	binary.BigEndian.PutUint64(h.aadBuf[:8], seq)
	h.aadBuf[8] = typ
	binary.BigEndian.PutUint16(h.aadBuf[9:11], recordVersion)
	binary.BigEndian.PutUint16(h.aadBuf[11:13], uint16(n))
	return h.aadBuf[:]
}

// Seal protects plain for the armed state; the explicit nonce (the
// sequence number) is prepended to the ciphertext, as on the real wire.
func Seal(h *halfConn, typ uint8, plain []byte) []byte {
	return sealInto(make([]byte, 0, 8+len(plain)+16), h, typ, plain)
}

// sealInto appends the protected payload (explicit nonce || ciphertext ||
// tag) to dst and returns the extended slice.
func sealInto(dst []byte, h *halfConn, typ uint8, plain []byte) []byte {
	copy(h.nonce[:4], h.salt[:])
	binary.BigEndian.PutUint64(h.nonce[4:], h.seq)
	var seq [8]byte
	binary.BigEndian.PutUint64(seq[:], h.seq)
	dst = append(dst, seq[:]...)
	dst = h.aead.Seal(dst, h.nonce[:], plain, h.aad(h.seq, typ, len(plain)))
	h.seq++
	return dst
}

// Open reverses Seal. It is exported (with OpenPayload) so the attacker
// package can decrypt captured records given recovered keys.
func Open(aead cipher.AEAD, salt []byte, typ uint8, payload []byte) ([]byte, error) {
	return OpenPayload(aead, salt, typ, payload)
}

// OpenPayload decrypts one protected record payload (explicit nonce ||
// ciphertext || tag) using the explicit nonce as the sequence number.
func OpenPayload(aead cipher.AEAD, salt []byte, typ uint8, payload []byte) ([]byte, error) {
	if len(payload) < 8+16 {
		return nil, fmt.Errorf("record: protected payload too short")
	}
	seq := binary.BigEndian.Uint64(payload[:8])
	var nonce [12]byte
	copy(nonce[:4], salt)
	copy(nonce[4:], payload[:8])
	plainLen := len(payload) - 8 - 16
	return aead.Open(nil, nonce[:], payload[8:], aad(seq, typ, plainLen))
}

// NewAEAD builds the AES-128-GCM AEAD for a write key (attacker use).
func NewAEAD(key []byte) (cipher.AEAD, error) {
	block, err := aes.NewCipher(key)
	if err != nil {
		return nil, err
	}
	return cipher.NewGCM(block)
}

// WriteRecord writes one record, protecting it if the direction is armed.
// The frame is assembled in the connection's reusable scratch buffer so
// steady-state writes allocate nothing. With flight coalescing enabled
// the frame is queued in pend instead and handed to the transport by the
// next Flush (which ReadRecord and WriteAlert perform implicitly); a
// transport error then surfaces at that flush.
func (rc *Conn) WriteRecord(typ uint8, payload []byte) error {
	if rc.coalesce {
		start := len(rc.pend)
		buf := append(rc.pend, 0, 0, 0, 0, 0)
		if rc.out.aead != nil {
			buf = sealInto(buf, &rc.out, typ, payload)
		} else {
			buf = append(buf, payload...)
		}
		buf[start] = typ
		binary.BigEndian.PutUint16(buf[start+1:start+3], recordVersion)
		binary.BigEndian.PutUint16(buf[start+3:start+5], uint16(len(buf)-start-5))
		rc.pend = buf
		if len(rc.pend) >= maxPend {
			return rc.Flush()
		}
		return nil
	}
	if need := 5 + len(payload) + 8 + 16; cap(rc.wbuf) < need {
		rc.wbuf = make([]byte, 0, need+256)
	}
	buf := rc.wbuf[:5]
	if rc.out.aead != nil {
		buf = sealInto(buf, &rc.out, typ, payload)
	} else {
		buf = append(buf, payload...)
	}
	buf[0] = typ
	binary.BigEndian.PutUint16(buf[1:3], recordVersion)
	binary.BigEndian.PutUint16(buf[3:5], uint16(len(buf)-5))
	rc.wbuf = buf[:0]
	_, err := rc.c.Write(buf)
	return err
}

// Flush hands every pending coalesced record to the transport in one
// write. It is a no-op when nothing is pending (or coalescing is off),
// so callers sprinkle it at read boundaries and connection exit without
// tracking state.
func (rc *Conn) Flush() error {
	if len(rc.pend) == 0 {
		return nil
	}
	buf := rc.pend
	rc.pend = rc.pend[:0]
	_, err := rc.c.Write(buf)
	return err
}

// ReadRecord reads and (if armed) decrypts one record, returned by
// value so the steady-state read path allocates nothing. The Payload
// aliases the connection's reusable read buffer and is valid only until
// the next ReadRecord on the same Conn; callers that retain it must
// copy.
func (rc *Conn) ReadRecord() (Record, error) {
	// The peer cannot answer bytes it has not seen: deliver any pending
	// flight before blocking on the response.
	if err := rc.Flush(); err != nil {
		return Record{}, err
	}
	if _, err := io.ReadFull(rc.c, rc.hdr[:]); err != nil {
		return Record{}, err
	}
	n := int(binary.BigEndian.Uint16(rc.hdr[3:5]))
	if n > MaxPlaintext+1024 {
		return Record{}, fmt.Errorf("record: oversized record (%d)", n)
	}
	if cap(rc.rbuf) < n {
		rc.rbuf = make([]byte, n, n+256)
	}
	payload := rc.rbuf[:n]
	if _, err := io.ReadFull(rc.c, payload); err != nil {
		return Record{}, err
	}
	typ := rc.hdr[0]
	if rc.in.aead != nil && typ != TypeChangeCipherSpec {
		h := &rc.in
		copy(h.nonce[:4], h.salt[:])
		if len(payload) < 8+16 {
			return Record{}, fmt.Errorf("record: short protected record")
		}
		copy(h.nonce[4:], payload[:8])
		seq := binary.BigEndian.Uint64(payload[:8])
		plainLen := len(payload) - 8 - 16
		// Decrypt in place: dst payload[8:8] aliases the ciphertext start,
		// the exact-overlap case crypto/cipher's GCM supports, so the
		// plaintext needs no second allocation.
		plain, err := h.aead.Open(payload[8:8], h.nonce[:], payload[8:], h.aad(seq, typ, plainLen))
		if err != nil {
			return Record{}, fmt.Errorf("record: decrypt: %w", err)
		}
		payload = plain
	}
	return Record{Type: typ, Payload: payload}, nil
}

// Alert codes (the tiny subset the engines emit).
const (
	AlertCloseNotify      uint8 = 0
	AlertHandshakeFailure uint8 = 40
	AlertBadCertificate   uint8 = 42
)

// WriteAlert sends a fatal alert, flushing it (and any pending flight)
// immediately: alert writers are about to tear the connection down.
func (rc *Conn) WriteAlert(code uint8) error {
	err := rc.WriteRecord(TypeAlert, []byte{2, code})
	if ferr := rc.Flush(); err == nil {
		err = ferr
	}
	return err
}
