// Command studyrun executes the full nine-week measurement campaign against
// a freshly generated synthetic population and writes the dataset to disk.
//
// Usage:
//
//	studyrun -listsize 5000 -days 64 -seed 1 -out dataset.json
//
// Sharding (CI splits a campaign across machines and recombines):
//
//	studyrun -listsize 5000 -days 64 -seed 1 -shard 0/3 -out shard0.json
//	studyrun -listsize 5000 -days 64 -seed 1 -shard 1/3 -out shard1.json
//	studyrun -listsize 5000 -days 64 -seed 1 -shard 2/3 -out shard2.json
//	studyrun -merge -out dataset.json shard0.json shard1.json shard2.json
//
// The merged dataset is byte-identical to the monolithic run's (the CI
// determinism job enforces this against a committed golden hash).
//
// Observability (all off by default; none of it perturbs the dataset):
//
//	studyrun -progress                       # live stderr ticker: day N/M, handshakes/s, failure rate
//	studyrun -telemetry-out telemetry.json   # final metrics snapshot as JSON
//	studyrun -trace trace.jsonl              # one JSONL span per scan phase
//	studyrun -pprof 127.0.0.1:6060           # net/http/pprof + /debug/vars expvar export
//
// The dataset feeds cmd/report, which regenerates every table and figure.
package main

import (
	"bufio"
	"encoding/json"
	"expvar"
	"flag"
	"fmt"
	"log"
	"net/http"
	_ "net/http/pprof"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"tlsshortcuts/internal/faults"
	"tlsshortcuts/internal/study"
	"tlsshortcuts/internal/telemetry"
)

func main() {
	var (
		listSize = flag.Int("listsize", 5000, "scaled Top Million list size")
		days     = flag.Int("days", 64, "study length in days (paper: Mar 2 - May 4 2016)")
		seed     = flag.Int64("seed", 1, "deterministic world/scan seed")
		workers  = flag.Int("workers", runtime.NumCPU(),
			"scan concurrency (default NumCPU: probes are CPU-bound on the in-process simnet, never blocked on real I/O; NumCPU*2 measured ~3% slower on a 1-CPU host, 2.41s vs 2.35s for a 150x6 campaign)")
		out    = flag.String("out", "dataset.json", "output dataset path")
		report = flag.Bool("report", true, "print the full report after the run")
		quiet  = flag.Bool("quiet", false, "suppress progress logging")

		shard = flag.String("shard", "", "run one campaign slice, as i/N (e.g. 0/3); merge with -merge")
		merge = flag.Bool("merge", false, "merge shard dataset files (given as args) into -out instead of running")

		weakCrypto = flag.Bool("weak-crypto", false, "seed weak-STEK / shared-key-name / export-DH operators and run the cryptanalysis pass")

		probeTimeout = flag.Duration("probe-timeout", 0, "per-connection deadline (0 = scanner default, <0 disables)")
		retries      = flag.Int("retries", 0, "transient-failure retries (0 = scanner default, <0 disables)")
		faultSeed    = flag.Int64("fault-seed", 0, "fault plan seed (defaults to -seed)")
		faultRefuse  = flag.Float64("fault-refuse", 0, "per-dial refusal probability")
		faultReset   = flag.Float64("fault-reset", 0, "per-dial mid-handshake reset probability")
		faultStall   = flag.Float64("fault-stall", 0, "per-dial stalled-server probability")
		faultFlap    = flag.Float64("fault-flap", 0, "per-(backend,day) outage probability")
		faultChurn   = flag.Float64("fault-churn", 0, "per-domain churn-window probability")
		churnDays    = flag.Int("fault-churn-days", 3, "max churn window length in days")

		telemetryOut = flag.String("telemetry-out", "", "write the final telemetry snapshot JSON to this path")
		traceOut     = flag.String("trace", "", "write one JSONL telemetry span per scan phase to this path")
		progress     = flag.Bool("progress", false, "live stderr ticker: day N/M, handshakes/s, failure rate")
		pprofAddr    = flag.String("pprof", "", "serve net/http/pprof and expvar on this address (e.g. 127.0.0.1:6060)")
	)
	flag.Parse()

	logf := func(format string, args ...interface{}) {
		if !*quiet {
			log.Printf(format, args...)
		}
	}
	if *merge {
		runMerge(flag.Args(), *out, *report, logf)
		return
	}
	var shardSpec *study.ShardSpec
	if *shard != "" {
		s, err := parseShard(*shard)
		if err != nil {
			log.Fatalf("bad -shard: %v", err)
		}
		shardSpec = s
	}
	var fo *faults.Options
	if *faultRefuse > 0 || *faultReset > 0 || *faultStall > 0 || *faultFlap > 0 || *faultChurn > 0 {
		fs := *faultSeed
		if fs == 0 {
			fs = *seed
		}
		fo = &faults.Options{
			Seed:         fs,
			Refuse:       *faultRefuse,
			Reset:        *faultReset,
			Stall:        *faultStall,
			Flap:         *faultFlap,
			Churn:        *faultChurn,
			ChurnMaxDays: *churnDays,
		}
	}

	// Any observability flag turns the registry on; the campaign itself
	// is provably unaffected either way (telemetry observes, never
	// perturbs — see internal/telemetry and the inertness test).
	var reg *telemetry.Registry
	if *telemetryOut != "" || *traceOut != "" || *progress || *pprofAddr != "" {
		reg = telemetry.NewRegistry()
	}
	var trace *bufio.Writer
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			log.Fatalf("creating trace file: %v", err)
		}
		defer f.Close()
		trace = bufio.NewWriter(f)
		defer trace.Flush()
	}
	if *pprofAddr != "" {
		// net/http/pprof and expvar register on the default mux; the
		// registry snapshot is republished as the "telemetry" expvar, so
		// /debug/vars carries live campaign counters.
		expvar.Publish("telemetry", expvar.Func(func() interface{} { return reg.Snapshot() }))
		go func() {
			logf("pprof+expvar listening on http://%s/debug/pprof/", *pprofAddr)
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				log.Printf("pprof server: %v", err)
			}
		}()
	}
	var progressDone chan struct{}
	if *progress {
		progressDone = make(chan struct{})
		go progressLoop(reg, *days, progressDone)
	}

	logf("building %d-domain world and running %d-day campaign (seed %d, %d workers)",
		*listSize, *days, *seed, *workers)
	start := time.Now()
	opts := study.Options{
		ListSize:     *listSize,
		Days:         *days,
		Seed:         *seed,
		Workers:      *workers,
		Logf:         logf,
		Faults:       fo,
		ProbeTimeout: *probeTimeout,
		Retries:      *retries,
		Telemetry:    reg,
		Shard:        shardSpec,
		WeakCrypto:   *weakCrypto,
	}
	if trace != nil {
		opts.Trace = trace
	}
	ds, err := study.Run(opts)
	if progressDone != nil {
		progressDone <- struct{}{}
		<-progressDone // closed once the ticker's final newline is out
	}
	if err != nil {
		log.Fatalf("study failed: %v", err)
	}
	logf("campaign finished in %v; writing %s", time.Since(start).Round(time.Second), *out)
	if len(ds.Failures) > 0 {
		total := 0
		for _, f := range ds.Failures {
			total += f.Count
		}
		logf("scan failures: %d across %d (scan, class) cells; %d domains with missed days",
			total, len(ds.Failures), len(ds.MissedDays))
	}
	if err := ds.Save(*out); err != nil {
		log.Fatalf("saving dataset: %v", err)
	}
	if *telemetryOut != "" {
		b, err := json.MarshalIndent(reg.Snapshot(), "", "  ")
		if err != nil {
			log.Fatalf("marshaling telemetry: %v", err)
		}
		if err := os.WriteFile(*telemetryOut, append(b, '\n'), 0o644); err != nil {
			log.Fatalf("writing telemetry: %v", err)
		}
		logf("telemetry snapshot written to %s", *telemetryOut)
	}
	if *report {
		fmt.Fprintln(os.Stdout, study.BuildReport(ds).String())
		if reg != nil {
			fmt.Fprintln(os.Stdout, study.TelemetrySection(reg.Snapshot()))
		}
	}
}

// parseShard parses "i/N" into a validated ShardSpec.
func parseShard(s string) (*study.ShardSpec, error) {
	i := strings.IndexByte(s, '/')
	if i < 0 {
		return nil, fmt.Errorf("want i/N, got %q", s)
	}
	idx, err := strconv.Atoi(s[:i])
	if err != nil {
		return nil, fmt.Errorf("shard index: %v", err)
	}
	count, err := strconv.Atoi(s[i+1:])
	if err != nil {
		return nil, fmt.Errorf("shard count: %v", err)
	}
	spec := &study.ShardSpec{Index: idx, Count: count}
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	return spec, nil
}

// runMerge loads the shard dataset files named in args, recombines them
// with study.MergeDatasets, and writes the monolithic-equivalent dataset.
func runMerge(paths []string, out string, report bool, logf func(string, ...interface{})) {
	if len(paths) == 0 {
		log.Fatalf("-merge needs shard dataset files as arguments")
	}
	shards := make([]*study.Dataset, 0, len(paths))
	for _, p := range paths {
		ds, err := study.Load(p)
		if err != nil {
			log.Fatalf("loading shard %s: %v", p, err)
		}
		shards = append(shards, ds)
	}
	merged, err := study.MergeDatasets(shards...)
	if err != nil {
		log.Fatalf("merging shards: %v", err)
	}
	logf("merged %d shards; writing %s", len(shards), out)
	if err := merged.Save(out); err != nil {
		log.Fatalf("saving dataset: %v", err)
	}
	if report {
		fmt.Fprintln(os.Stdout, study.BuildReport(merged).String())
	}
}

// progressLoop renders a once-per-second stderr ticker from registry
// deltas: scan day, instantaneous handshake rate, cumulative failure
// rate. It owns the final newline: the caller sends on done and waits
// for the channel close before printing anything else.
func progressLoop(reg *telemetry.Registry, days int, done chan struct{}) {
	tick := time.NewTicker(time.Second)
	defer tick.Stop()
	var lastStarted uint64
	last := time.Now()
	for {
		select {
		case <-done:
			fmt.Fprintln(os.Stderr)
			close(done)
			return
		case <-tick.C:
			started := reg.Value(telemetry.CounterHandshakesStarted)
			probes := reg.Value(telemetry.CounterProbes)
			fails := reg.Value(telemetry.CounterProbeFailures)
			day := reg.Value(telemetry.CounterDaysCompleted)
			now := time.Now()
			rate := float64(started-lastStarted) / now.Sub(last).Seconds()
			lastStarted, last = started, now
			failPct := 0.0
			if probes > 0 {
				failPct = 100 * float64(fails) / float64(probes)
			}
			fmt.Fprintf(os.Stderr, "\rday %d/%d  %8.0f handshakes/s  %5.2f%% probes failed",
				day, days, rate, failPct)
		}
	}
}
