package study

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"tlsshortcuts/internal/population"
	"tlsshortcuts/internal/scanner"
)

// shardedHash runs the determinism campaign as n independent shards,
// merges them, and returns the merged dataset's hash.
func shardedHash(t *testing.T, o Options, n int) string {
	t.Helper()
	shards := make([]*Dataset, n)
	for i := 0; i < n; i++ {
		so := o
		so.Shard = &ShardSpec{Index: i, Count: n}
		ds, err := Run(so)
		if err != nil {
			t.Fatalf("Run shard %d/%d: %v", i, n, err)
		}
		shards[i] = ds
	}
	merged, err := MergeDatasets(shards...)
	if err != nil {
		t.Fatalf("MergeDatasets(%d): %v", n, err)
	}
	b, err := json.Marshal(merged)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	h := sha256.Sum256(b)
	return hex.EncodeToString(h[:])
}

// TestShardedCampaignMatchesGolden is the tentpole proof: splitting the
// committed 200×8 seed-7 campaign into 1, 3, and 5 independently-run
// shards and merging them reproduces the byte-identical golden dataset
// hash of the monolithic run. Every shard builds the full world but
// scans only its round-robin rank slice, so this pins the whole
// determinism argument — per-domain entropy keying, label-keyed fault
// decisions, per-domain backend sequences, and the merge's
// canonicalization — in one check.
func TestShardedCampaignMatchesGolden(t *testing.T) {
	golden := filepath.Join("testdata", "campaign_200x8_seed7.sha256")
	raw, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (regenerate with -regen-golden): %v", err)
	}
	want := strings.TrimSpace(string(raw))
	for _, n := range []int{1, 3, 5} {
		n := n
		t.Run(fmt.Sprintf("shards=%d", n), func(t *testing.T) {
			if got := shardedHash(t, detOpts, n); got != want {
				t.Fatalf("merged %d-shard dataset drifted from golden:\n  got  %s\n  want %s", n, got, want)
			}
		})
	}
}

// TestShardWorkerIndependence re-runs one shard with a different worker
// count: a shard's dataset, like the monolithic one, must not depend on
// scheduling.
func TestShardWorkerIndependence(t *testing.T) {
	if testing.Short() {
		t.Skip("runs two shard campaigns")
	}
	run := func(workers int) string {
		o := detOpts
		o.Workers = workers
		o.Shard = &ShardSpec{Index: 1, Count: 3}
		ds, err := Run(o)
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		b, err := json.Marshal(ds)
		if err != nil {
			t.Fatal(err)
		}
		h := sha256.Sum256(b)
		return hex.EncodeToString(h[:])
	}
	if a, b := run(8), run(3); a != b {
		t.Fatalf("shard dataset depends on worker count:\n  w8 %s\n  w3 %s", a, b)
	}
}

// TestPopulationShard pins the partition function's contract: disjoint,
// exhaustive, order-preserving, and representative (round-robin).
func TestPopulationShard(t *testing.T) {
	list := []string{"a", "b", "c", "d", "e", "f", "g"}
	seen := map[string]int{}
	for i := 0; i < 3; i++ {
		part := population.Shard(list, i, 3)
		for _, d := range part {
			seen[d]++
		}
	}
	if len(seen) != len(list) {
		t.Fatalf("shards are not exhaustive: %d of %d domains", len(seen), len(list))
	}
	for d, n := range seen {
		if n != 1 {
			t.Fatalf("domain %q in %d shards", d, n)
		}
	}
	got := population.Shard(list, 1, 3)
	want := []string{"b", "e"}
	if len(got) != len(want) || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("shard 1/3 = %v, want %v", got, want)
	}
	if whole := population.Shard(list, 0, 1); len(whole) != len(list) {
		t.Fatalf("shard 0/1 must be the whole list")
	}
}

// mkShard builds a minimal well-formed shard dataset for merge tests.
func mkShard(index, count int) *Dataset {
	return &Dataset{
		ListSize:    200,
		Days:        8,
		Seed:        7,
		ScaleFactor: 0.0002,
		TrustedCore: []string{"a.example", "b.example"},
		Operators:   map[string]string{"a.example": "opA", "b.example": "opB"},
		Ranks:       map[string]int{"a.example": 1, "b.example": 2},
		STEKSpans:   map[string]map[string]uint64{},
		DHESpans:    map[string]map[string]uint64{},
		ECDHESpans:  map[string]map[string]uint64{},
		Shard:       &ShardSpec{Index: index, Count: count},
	}
}

func TestMergeDatasetsEdgeCases(t *testing.T) {
	t.Run("empty shard", func(t *testing.T) {
		a, b := mkShard(0, 2), mkShard(1, 2)
		a.STEKSpans["a.example"] = map[string]uint64{"k1": 0b11}
		a.TicketSnapshot = Snapshot{Scanned: 1, Trusted: 1, Support: 1}
		// b observed nothing at all — merge must still succeed and carry
		// a's data through unchanged.
		m, err := MergeDatasets(a, b)
		if err != nil {
			t.Fatalf("merge with empty shard: %v", err)
		}
		if m.TicketSnapshot.Scanned != 1 || m.STEKSpans["a.example"]["k1"] != 0b11 {
			t.Fatalf("empty shard perturbed merge: %+v", m.TicketSnapshot)
		}
		if m.Shard != nil {
			t.Fatal("merged dataset must clear the shard spec")
		}
	})

	t.Run("single-domain shard", func(t *testing.T) {
		a, b := mkShard(0, 2), mkShard(1, 2)
		a.IDLifetime = []scanner.ProbeResult{{Domain: "b.example", OK: true}}
		b.IDLifetime = []scanner.ProbeResult{{Domain: "a.example", OK: true}}
		m, err := MergeDatasets(a, b)
		if err != nil {
			t.Fatal(err)
		}
		// Rank order, not shard order.
		if m.IDLifetime[0].Domain != "a.example" || m.IDLifetime[1].Domain != "b.example" {
			t.Fatalf("lifetime rows not in rank order: %+v", m.IDLifetime)
		}
	})

	t.Run("overlapping domains rejected", func(t *testing.T) {
		a, b := mkShard(0, 2), mkShard(1, 2)
		a.DHESpans["a.example"] = map[string]uint64{"v": 1}
		b.DHESpans["a.example"] = map[string]uint64{"v": 2}
		if _, err := MergeDatasets(a, b); err == nil {
			t.Fatal("want overlap rejection, got nil error")
		}
		a, b = mkShard(0, 2), mkShard(1, 2)
		a.MissedDays = map[string]uint64{"a.example": 1}
		b.MissedDays = map[string]uint64{"a.example": 2}
		if _, err := MergeDatasets(a, b); err == nil {
			t.Fatal("want missed-days overlap rejection, got nil error")
		}
	})

	t.Run("group union across shards", func(t *testing.T) {
		a, b := mkShard(0, 2), mkShard(1, 2)
		// Shard a's initiator linked {a,x}; shard b's linked {b,x}: the
		// merged component must be the transitive closure {a,b,x}.
		a.CacheGroups = [][]string{{"a.example", "x.example"}}
		b.CacheGroups = [][]string{{"b.example", "x.example"}}
		m, err := MergeDatasets(a, b)
		if err != nil {
			t.Fatal(err)
		}
		if len(m.CacheGroups) != 1 || len(m.CacheGroups[0]) != 3 {
			t.Fatalf("cache groups not transitively merged: %v", m.CacheGroups)
		}
		// STEK groups recompute from merged spans: the same secret ID on
		// domains in different shards must union.
		a, b = mkShard(0, 2), mkShard(1, 2)
		a.STEKSpans["a.example"] = map[string]uint64{"shared": 1}
		b.STEKSpans["b.example"] = map[string]uint64{"shared": 1}
		m, err = MergeDatasets(a, b)
		if err != nil {
			t.Fatal(err)
		}
		if len(m.STEKGroups) != 1 || len(m.STEKGroups[0]) != 2 {
			t.Fatalf("STEK groups not unioned across shards: %v", m.STEKGroups)
		}
	})

	t.Run("mismatched campaigns rejected", func(t *testing.T) {
		a, b := mkShard(0, 2), mkShard(1, 2)
		b.Seed = 8
		if _, err := MergeDatasets(a, b); err == nil {
			t.Fatal("want seed mismatch rejection")
		}
		a, b = mkShard(0, 2), mkShard(1, 2)
		b.Days = 9
		if _, err := MergeDatasets(a, b); err == nil {
			t.Fatal("want days mismatch rejection")
		}
	})

	t.Run("incomplete or duplicate shard sets rejected", func(t *testing.T) {
		if _, err := MergeDatasets(mkShard(0, 2)); err == nil {
			t.Fatal("want missing-shard rejection")
		}
		if _, err := MergeDatasets(mkShard(0, 2), mkShard(0, 2)); err == nil {
			t.Fatal("want duplicate-index rejection")
		}
		if _, err := MergeDatasets(mkShard(0, 1), mkShard(1, 2)); err == nil {
			t.Fatal("want count-mismatch rejection")
		}
		mono := mkShard(0, 1)
		mono.Shard = nil
		if _, err := MergeDatasets(mono); err == nil {
			t.Fatal("want monolithic-dataset rejection")
		}
	})

	t.Run("failure tallies sum and sort", func(t *testing.T) {
		a, b := mkShard(0, 2), mkShard(1, 2)
		a.Failures = []FailureCount{{Scan: "ticket", Class: "timeout", Count: 2}}
		b.Failures = []FailureCount{
			{Scan: "dhe", Class: "reset", Count: 1},
			{Scan: "ticket", Class: "timeout", Count: 3},
		}
		m, err := MergeDatasets(a, b)
		if err != nil {
			t.Fatal(err)
		}
		want := []FailureCount{
			{Scan: "dhe", Class: "reset", Count: 1},
			{Scan: "ticket", Class: "timeout", Count: 5},
		}
		if len(m.Failures) != 2 || m.Failures[0] != want[0] || m.Failures[1] != want[1] {
			t.Fatalf("failures = %+v, want %+v", m.Failures, want)
		}
	})

	t.Run("xd stats", func(t *testing.T) {
		a, b := mkShard(0, 2), mkShard(1, 2)
		a.XDStats = &scanner.XDStats{Probed: 10, Sessioned: 8}
		b.XDStats = &scanner.XDStats{Probed: 9, Sessioned: 7, ProbeFailed: 2}
		m, err := MergeDatasets(a, b)
		if err != nil {
			t.Fatal(err)
		}
		if m.XDStats == nil || m.XDStats.Probed != 19 || m.XDStats.ProbeFailed != 2 {
			t.Fatalf("xd stats = %+v", m.XDStats)
		}
		// All clean: the monolithic run would omit the stats entirely.
		a, b = mkShard(0, 2), mkShard(1, 2)
		a.XDStats = &scanner.XDStats{Probed: 10, Sessioned: 8}
		b.XDStats = &scanner.XDStats{Probed: 9, Sessioned: 7}
		m, err = MergeDatasets(a, b)
		if err != nil {
			t.Fatal(err)
		}
		if m.XDStats != nil {
			t.Fatalf("clean merge must omit XDStats, got %+v", m.XDStats)
		}
		// One shard failed, another lost its denominators: refuse rather
		// than emit a wrong monolithic count.
		a, b = mkShard(0, 2), mkShard(1, 2)
		a.XDStats = &scanner.XDStats{Probed: 10, InitFailed: 1}
		if _, err := MergeDatasets(a, b); err == nil {
			t.Fatal("want missing-XDStats rejection when a sibling failed")
		}
	})
}
