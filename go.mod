module tlsshortcuts

go 1.22
