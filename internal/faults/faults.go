// Package faults compiles a seeded, deterministic fault plan for the
// simulated network. The real campaign the paper ran (§3) faced daily
// unreachable hosts, mid-handshake resets, and list churn; the simnet is
// otherwise a perfect network, so nothing exercises the denominator
// discipline the paper's longevity numbers depend on. A Plan makes the
// network lossy in a replayable way: every fault decision is a pure
// function of (plan seed, domain, probe identity, virtual day), so the
// same seed and plan produce a byte-identical campaign dataset regardless
// of worker count or goroutine scheduling, and a nil Plan is provably
// inert (the dialer's fast path is untouched).
//
// The package also owns the scan-failure taxonomy: every failed probe is
// classified as dial / timeout / reset / alert / protocol, serialized in
// the dataset instead of a bare error string.
package faults

import (
	"encoding/binary"
	"errors"
	"hash/fnv"
	"io"
	"net"
	"os"
	"strings"
	"time"

	"tlsshortcuts/internal/simclock"
)

// Kind enumerates the injectable network faults.
type Kind uint8

const (
	// None means the dial proceeds normally.
	None Kind = iota
	// Refuse fails the dial immediately (connection refused).
	Refuse
	// Reset lets the server write a bounded number of records, then
	// drops the connection mid-handshake (connection reset).
	Reset
	// Stall accepts the connection and reads the client's bytes but
	// never answers, forcing the client's read deadline to expire.
	Stall
	// Flap refuses every dial landing on one backend for a whole
	// virtual day (a flapping balancer target).
	Flap
	// Churn drops the whole domain out of the population for a window
	// of virtual days (list churn: the dial resolves to nothing).
	Churn
)

// String names the fault kind.
func (k Kind) String() string {
	switch k {
	case None:
		return "none"
	case Refuse:
		return "refuse"
	case Reset:
		return "reset"
	case Stall:
		return "stall"
	case Flap:
		return "flap"
	case Churn:
		return "churn"
	}
	return "unknown"
}

// Options configures a fault plan. All probabilities are in [0,1]; the
// zero Options injects nothing and compiles to a nil (inert) Plan.
type Options struct {
	// Seed drives every fault decision. The same Options replay the
	// same faults for the same probe schedule.
	Seed int64

	Refuse float64 // per-dial probability of a refused connection
	Reset  float64 // per-dial probability of a mid-handshake reset
	Stall  float64 // per-dial probability of a stalled (never-answering) server
	Flap   float64 // per-(backend, day) probability of a whole-day outage
	Churn  float64 // per-domain probability of one multi-day churn window

	// ChurnMaxDays bounds a churn window's length (default 3).
	ChurnMaxDays int
	// Days is the campaign length churn windows are placed in (default 64).
	Days int
	// Base is virtual day zero (default simclock.Epoch).
	Base time.Time

	// StallDomains lists domains whose every dial stalls, regardless of
	// the probabilistic knobs — targeted worst-case robustness tests.
	StallDomains []string
}

// Zero reports whether the options inject no fault at all.
func (o *Options) Zero() bool {
	return o == nil || (o.Refuse == 0 && o.Reset == 0 && o.Stall == 0 &&
		o.Flap == 0 && o.Churn == 0 && len(o.StallDomains) == 0)
}

// Plan is a compiled fault plan. A nil *Plan is valid and inert.
type Plan struct {
	o       Options
	clock   simclock.Clock
	stalled map[string]bool
}

// NewPlan compiles the options against the campaign clock (used to map
// dial times to virtual days). Zero options compile to nil: the network's
// fault-free fast path stays byte-identical to a plan-less run.
func NewPlan(o Options, clock simclock.Clock) *Plan {
	if o.Zero() {
		return nil
	}
	if o.ChurnMaxDays <= 0 {
		o.ChurnMaxDays = 3
	}
	if o.Days <= 0 {
		o.Days = 64
	}
	if o.Base.IsZero() {
		o.Base = simclock.Epoch
	}
	if clock == nil {
		clock = simclock.System()
	}
	p := &Plan{o: o, clock: clock}
	if len(o.StallDomains) > 0 {
		p.stalled = make(map[string]bool, len(o.StallDomains))
		for _, d := range o.StallDomains {
			p.stalled[d] = true
		}
	}
	return p
}

// Active reports whether the plan injects any fault.
func (p *Plan) Active() bool { return p != nil }

// Options returns a copy of the compiled options (zero for a nil plan).
func (p *Plan) Options() Options {
	if p == nil {
		return Options{}
	}
	return p.o
}

func (p *Plan) day() int {
	d := int(p.clock.Now().Sub(p.o.Base) / (24 * time.Hour))
	if d < 0 {
		d = 0
	}
	return d
}

// Fault is one dial's compiled outcome.
type Fault struct {
	Kind Kind
	// AllowWrites is how many record writes a Reset lets the server
	// complete before dropping the connection (0–2: before the
	// ServerHello, after it, or mid server flight).
	AllowWrites int
}

// Decide compiles the fault for one dial. label is the probe identity the
// scanner supplies (scan kind, day, connection number, retry); when it is
// empty (a plain Dial), the per-domain sequence number seq keys the
// decision instead. backend is the index of the balancer target the dial
// selected. Decisions are pure functions of (seed, domain, key, day), so
// they replay identically across runs and worker counts.
func (p *Plan) Decide(domain, label string, backend int, seq uint64) Fault {
	if p == nil {
		return Fault{}
	}
	day := p.day()
	if start, end, ok := p.ChurnWindow(domain); ok && day >= start && day < end {
		return Fault{Kind: Churn}
	}
	if p.stalled[domain] {
		return Fault{Kind: Stall}
	}
	if p.o.Flap > 0 && p.roll("flap", domain, itoa(backend), itoa(day)) < p.o.Flap {
		return Fault{Kind: Flap}
	}
	key := label
	if key == "" {
		key = "seq:" + utoa(seq)
	}
	switch r := p.roll("dial", domain, key); {
	case r < p.o.Refuse:
		return Fault{Kind: Refuse}
	case r < p.o.Refuse+p.o.Reset:
		return Fault{Kind: Reset, AllowWrites: int(p.hash("allow", domain, key) % 3)}
	case r < p.o.Refuse+p.o.Reset+p.o.Stall:
		return Fault{Kind: Stall}
	}
	return Fault{}
}

// ChurnWindow returns the half-open [start, end) day range during which
// the domain is churned out of the population, if the plan assigns one.
func (p *Plan) ChurnWindow(domain string) (start, end int, ok bool) {
	if p == nil || p.o.Churn <= 0 {
		return 0, 0, false
	}
	if p.roll("churn", domain) >= p.o.Churn {
		return 0, 0, false
	}
	length := 1 + int(p.hash("churnlen", domain)%uint64(p.o.ChurnMaxDays))
	span := p.o.Days - length
	if span < 1 {
		span = 1
	}
	start = int(p.hash("churnstart", domain) % uint64(span))
	return start, start + length, true
}

// Backend deterministically selects a balancer target for a labeled
// probe. Under an active plan the dialer keys backend choice on the probe
// identity instead of a shared sequence counter, so runs with different
// worker counts replay identically; the selection is still non-affine
// (each connection's label differs, so back-to-back connections spread
// across backends exactly as A-record jitter would).
func (p *Plan) Backend(domain, label string, n int) int {
	if n <= 1 {
		return 0
	}
	return int(p.hash("backend", domain, label) % uint64(n))
}

// hash mixes the seed and parts through FNV-64a plus a splitmix64
// finalizer (FNV's low bits alternate for near-identical inputs).
func (p *Plan) hash(parts ...string) uint64 {
	h := fnv.New64a()
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], uint64(p.o.Seed))
	h.Write(b[:])
	for _, s := range parts {
		h.Write([]byte{0})
		h.Write([]byte(s))
	}
	return mix64(h.Sum64())
}

// roll maps a hash to a uniform float in [0,1).
func (p *Plan) roll(parts ...string) float64 {
	return float64(p.hash(parts...)>>11) / (1 << 53)
}

// mix64 is the splitmix64 finalizer.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

func itoa(v int) string { return utoa(uint64(v)) }

func utoa(v uint64) string {
	var b [20]byte
	i := len(b)
	for {
		i--
		b[i] = byte('0' + v%10)
		v /= 10
		if v == 0 {
			return string(b[i:])
		}
	}
}

// ---- error taxonomy ----

// ErrClass is the serializable scan-failure taxonomy. The empty class
// means "no error"; it is omitted from JSON so fault-free datasets stay
// byte-identical to pre-taxonomy ones.
type ErrClass string

const (
	ClassNone     ErrClass = ""         // connection succeeded
	ClassDial     ErrClass = "dial"     // refused, churned out, or no route
	ClassTimeout  ErrClass = "timeout"  // read/write deadline expired (stalled peer)
	ClassReset    ErrClass = "reset"    // connection dropped mid-handshake
	ClassAlert    ErrClass = "alert"    // server sent a fatal TLS alert
	ClassProtocol ErrClass = "protocol" // any other TLS-level failure
)

// DialError is a dial-phase failure, typed so Classify (and callers
// matching with errors.As) can recognize it without string matching.
type DialError struct {
	Domain string
	Reason string
}

// Error formats the failure like a net dialer would.
func (e *DialError) Error() string { return "dial " + e.Domain + ": " + e.Reason }

// alertCoder is implemented by tlsclient.AlertError; an interface keeps
// this package free of a TLS-engine dependency.
type alertCoder interface{ AlertCode() uint8 }

// Classify maps one scan connection's error into the taxonomy. Dial-phase
// errors should be classified by the caller (it knows the phase); this
// function still recognizes DialError for convenience.
func Classify(err error) ErrClass {
	if err == nil {
		return ClassNone
	}
	var de *DialError
	if errors.As(err, &de) {
		return ClassDial
	}
	if errors.Is(err, os.ErrDeadlineExceeded) {
		return ClassTimeout
	}
	var ne net.Error
	if errors.As(err, &ne) && ne.Timeout() {
		return ClassTimeout
	}
	var ac alertCoder
	if errors.As(err, &ac) {
		return ClassAlert
	}
	if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) ||
		errors.Is(err, io.ErrClosedPipe) ||
		strings.Contains(err.Error(), "closed pipe") ||
		strings.Contains(err.Error(), "connection reset") {
		return ClassReset
	}
	return ClassProtocol
}

// Transient reports whether a failure class is worth retrying: network
// faults are, protocol-level rejections (alerts, parse failures) are
// deterministic answers and are not.
func Transient(c ErrClass) bool {
	return c == ClassDial || c == ClassTimeout || c == ClassReset
}
