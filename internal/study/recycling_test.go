package study

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"tlsshortcuts/internal/perf"
)

func goldenCampaignHash(t *testing.T) string {
	t.Helper()
	b, err := os.ReadFile(filepath.Join("testdata", "campaign_200x8_seed7.sha256"))
	if err != nil {
		t.Fatalf("read golden (regenerate with -regen-golden): %v", err)
	}
	return strings.TrimSpace(string(b))
}

// TestHotPathLayersIndividuallyInert flips each of the hot-path
// performance layers off on its own and checks the campaign dataset
// still matches the committed golden hash. Testing layers one at a time
// (rather than all-off, which TestPerfLayersObservationallyInert covers
// for the older layers) pins the blame: if one of these fails, exactly
// one layer perturbed a measurement.
func TestHotPathLayersIndividuallyInert(t *testing.T) {
	if testing.Short() {
		t.Skip("runs one small campaign per layer")
	}
	golden := goldenCampaignHash(t)
	layers := []struct {
		name string
		set  func(bool)
	}{
		{"crypto_amortization", perf.SetCryptoAmortization},
		{"conn_recycling", perf.SetConnRecycling},
		{"flight_coalescing", perf.SetFlightCoalescing},
		{"chunked_scheduling", perf.SetChunkedScheduling},
	}
	for _, l := range layers {
		t.Run(l.name, func(t *testing.T) {
			l.set(false)
			defer l.set(true)
			if got := datasetHash(t, detOpts); got != golden {
				t.Fatalf("dataset differs with %s disabled:\n  got  %s\n  want %s", l.name, got, golden)
			}
		})
	}
}

// TestChunkedSchedulerWorkerIndependence runs the campaign under worker
// counts chosen to shear chunk boundaries (3 and 13 against the golden's
// 8) and checks the dataset is byte-identical. Locality-aware chunked
// claiming changes which worker runs which probe — never the probe's
// inputs — so the dataset must not depend on the worker count.
func TestChunkedSchedulerWorkerIndependence(t *testing.T) {
	if testing.Short() {
		t.Skip("runs two small campaigns")
	}
	golden := goldenCampaignHash(t)
	for _, w := range []int{3, 13} {
		o := detOpts
		o.Workers = w
		if got := datasetHash(t, o); got != golden {
			t.Fatalf("dataset differs at %d workers:\n  got  %s\n  want %s", w, got, golden)
		}
	}
}
