package session

import (
	"fmt"
	"testing"
	"time"
)

func lruState(n int) *State { return &State{Suite: uint16(n)} }

// TestBoundedCacheEvictsLRUDeterministically pins the eviction order:
// the entry with the oldest last-use virtual time goes first, and when
// last-use times tie (the traffic plane's hour slots put many entries
// at one instant) the oldest touch sequence breaks the tie — so a
// deterministic operation sequence always evicts the same keys.
func TestBoundedCacheEvictsLRUDeterministically(t *testing.T) {
	c := NewBoundedCache(0, 3)
	t0 := time.Unix(1000, 0)

	// Same instant for all three: tie-break is insertion (touch) order.
	c.Put([]byte("a"), lruState(1), t0)
	c.Put([]byte("b"), lruState(2), t0)
	c.Put([]byte("c"), lruState(3), t0)
	c.Put([]byte("d"), lruState(4), t0) // evicts a (oldest seq)

	if got := c.Get([]byte("a"), t0); got != nil {
		t.Error("a should have been evicted (oldest touch at tied time)")
	}
	for _, k := range []string{"b", "c", "d"} {
		if got := c.Get([]byte(k), t0); got == nil {
			t.Errorf("%s should have survived", k)
		}
	}
}

// TestBoundedCacheGetRefreshesLRU pins that a Get hit counts as use:
// touching the otherwise-oldest entry redirects eviction to the next
// least-recently-used key.
func TestBoundedCacheGetRefreshesLRU(t *testing.T) {
	c := NewBoundedCache(0, 3)
	t0 := time.Unix(1000, 0)
	c.Put([]byte("a"), lruState(1), t0)
	c.Put([]byte("b"), lruState(2), t0.Add(time.Second))
	c.Put([]byte("c"), lruState(3), t0.Add(2*time.Second))

	if c.Get([]byte("a"), t0.Add(3*time.Second)) == nil {
		t.Fatal("a should be present")
	}
	c.Put([]byte("d"), lruState(4), t0.Add(4*time.Second)) // evicts b, not a

	if c.Get([]byte("b"), t0.Add(5*time.Second)) != nil {
		t.Error("b should have been evicted (least recently used after a's refresh)")
	}
	if c.Get([]byte("a"), t0.Add(5*time.Second)) == nil {
		t.Error("a should have survived: the Get hit refreshed its LRU position")
	}
}

// TestBoundedCacheEvictionIsDeterministicAcrossRuns replays one
// operation sequence against two caches and checks the surviving key
// sets match exactly — the property the traffic determinism contract
// leans on.
func TestBoundedCacheEvictionIsDeterministicAcrossRuns(t *testing.T) {
	survivors := func() map[string]bool {
		c := NewBoundedCache(0, 4)
		t0 := time.Unix(2000, 0)
		for i := 0; i < 32; i++ {
			k := fmt.Sprintf("k%d", i%7)
			c.Put([]byte(k), lruState(i), t0.Add(time.Duration(i/3)*time.Second))
			if i%5 == 0 {
				c.Get([]byte(fmt.Sprintf("k%d", (i+2)%7)), t0.Add(time.Duration(i/3)*time.Second))
			}
		}
		out := map[string]bool{}
		for i := 0; i < 7; i++ {
			k := fmt.Sprintf("k%d", i)
			if c.Get([]byte(k), t0.Add(time.Minute)) != nil {
				out[k] = true
			}
		}
		return out
	}
	a, b := survivors(), survivors()
	if len(a) != len(b) {
		t.Fatalf("different survivor counts: %v vs %v", a, b)
	}
	for k := range a {
		if !b[k] {
			t.Fatalf("survivor sets differ: %v vs %v", a, b)
		}
	}
	if len(a) != 4 {
		t.Fatalf("expected exactly capacity (4) survivors, got %v", a)
	}
}

// TestBoundedCacheLenConsistentWithSweep checks capacity pressure
// prefers dropping expired entries (the piggybacked sweep) before
// evicting live ones, and Len agrees with the expiry sweep's view.
func TestBoundedCacheLenConsistentWithSweep(t *testing.T) {
	c := NewBoundedCache(10*time.Second, 3)
	t0 := time.Unix(3000, 0)
	c.Put([]byte("old1"), lruState(1), t0)
	c.Put([]byte("old2"), lruState(2), t0)
	late := t0.Add(time.Minute) // old1/old2 now expired
	c.Put([]byte("n1"), lruState(3), late)
	c.Put([]byte("n2"), lruState(4), late)
	// Over capacity (4 > 3), but the sweep drops the two expired
	// entries, so no live entry is LRU-evicted.
	if got := c.Len(); got != 2 {
		t.Fatalf("Len = %d after capacity sweep, want 2 (both live entries kept)", got)
	}
	for _, k := range []string{"n1", "n2"} {
		if c.Get([]byte(k), late) == nil {
			t.Errorf("live entry %s was evicted although expired entries covered the overflow", k)
		}
	}
	if c.Get([]byte("old1"), late) != nil || c.Get([]byte("old2"), late) != nil {
		t.Error("expired entries survived the capacity sweep")
	}
	if got := c.Len(); got != 2 {
		t.Fatalf("Len = %d after gets, want 2", got)
	}
}
