// Package tlsclient is the zgrab-analog scanning client: restricted
// cipher offers, capture of everything the study records (server random,
// session ID, certificate chain, KEX value, ticket, STEK ID, lifetime
// hint, master secret), and resumption by session ID or ticket.
package tlsclient

import (
	"crypto"
	"crypto/ecdh"
	"crypto/ecdsa"
	crand "crypto/rand"
	"crypto/rsa"
	"crypto/sha256"
	"crypto/x509"
	"encoding/binary"
	"errors"
	"fmt"
	"hash"
	"io"
	"math/big"
	"net"
	"sync"
	"time"

	"tlsshortcuts/internal/drbg"
	"tlsshortcuts/internal/keyex"
	"tlsshortcuts/internal/perf"
	"tlsshortcuts/internal/pki"
	"tlsshortcuts/internal/prf"
	"tlsshortcuts/internal/record"
	"tlsshortcuts/internal/simclock"
	"tlsshortcuts/internal/telemetry"
	"tlsshortcuts/internal/ticket"
	"tlsshortcuts/internal/wire"
)

// AlertError is a fatal TLS alert received from the server, typed so the
// scanner's failure taxonomy can classify it (via the AlertCode method)
// without string matching.
type AlertError struct {
	Code uint8
}

// Error keeps the historical message format.
func (e *AlertError) Error() string { return fmt.Sprintf("tls: server alert %d", e.Code) }

// AlertCode returns the alert description byte.
func (e *AlertError) AlertCode() uint8 { return e.Code }

// Session is the client-side resumable state from a completed handshake.
// A Session owns its ID and Ticket bytes outright (they are copied out of
// the pooled handshake buffer into the inline backing arrays below), and
// is always shared by pointer — copying one by value would detach the
// slices from the copy's arrays.
type Session struct {
	ID     []byte
	Ticket []byte
	Suite  uint16
	Master [48]byte

	// CreatedAt is the connection's virtual time when the handshake
	// completed. Client session stores (the traffic plane's per-user
	// browser caches) age sessions against it; the scanner ignores it.
	CreatedAt time.Time

	idbuf  [32]byte
	tktbuf [160]byte
}

func (s *Session) setID(b []byte)     { s.ID = copyInto(s.idbuf[:], b) }
func (s *Session) setTicket(b []byte) { s.Ticket = copyInto(s.tktbuf[:], b) }

// copyInto copies src into dst's fixed storage, falling back to the heap
// when src is oversized; nil stays nil.
func copyInto(dst, src []byte) []byte {
	if src == nil {
		return nil
	}
	if len(src) <= len(dst) {
		return dst[:copy(dst, src)]
	}
	return append([]byte(nil), src...)
}

// Config drives one scan connection.
type Config struct {
	ServerName string
	Suites     []uint16 // nil = [ECDHE, DHE]
	Clock      simclock.Clock
	Roots      *pki.RootStore // nil = record chain but skip trust check

	OfferTicket bool

	// Resume, when set, attempts resumption: by ticket when
	// ResumeViaTicket, else by session ID.
	Resume          *Session
	ResumeViaTicket bool

	// AppData, when set, is sent after the handshake and one response
	// record is read (so captures contain traffic in both directions).
	AppData []byte

	Rand io.Reader // nil = crypto/rand

	// ReuseKex lets the client reuse one fixed key-exchange keypair
	// across connections (the scanner sets it). No recorded measurement
	// depends on the client's KEX value, so this is observationally
	// inert, and it removes a P-256 keygen or a g^x modexp per scan.
	ReuseKex bool

	// KexOnly disconnects right after capturing the ServerKeyExchange,
	// the way survey scanners (zgrab's key-exchange grabs) do: everything
	// a key-exchange scan records — chain, trust, suite, server random,
	// KEX value — is on the wire before the client's second flight, so
	// skipping the key agreement and Finished exchange observes exactly
	// what a completed handshake would. No session results, and the SKE
	// signature is not checked inline (the probe never acts on the
	// channel).
	KexOnly bool
}

// Capture is everything the scanner records about one connection. Every
// retained byte field except Chain is backed by the Capture's own inline
// arrays (heap fallback for oversized values): the handshake buffer they
// were parsed from is pooled and reused by the next connection on the
// same worker. Captures are reused via HandshakeInto and must not be
// copied by value while their slices are live (the slices would keep
// pointing at the source Capture's arrays).
type Capture struct {
	Trusted     bool
	CipherSuite uint16
	KexAlg      wire.Kex

	ServerRandom   []byte
	ServerKEXValue []byte
	SessionID      []byte

	// Inline backing storage; see the struct comment.
	serverRandom [32]byte
	kexValue     [80]byte
	sessionID    [32]byte
	tktbuf       [192]byte
	appResp      [96]byte

	TicketIssued bool
	Ticket       []byte // raw issued ticket
	STEKID       []byte // best-effort single-ticket key ID (aliases Ticket)
	LifetimeHint time.Duration

	Resumed          bool
	ResumedViaTicket bool

	// Chain aliases the pooled handshake buffer and is only valid until
	// the next handshake on the same worker; nothing in the study retains
	// it (trust is evaluated inline into Trusted).
	Chain   [][]byte
	Session *Session
	AppResp []byte
}

func (c *Config) now() time.Time {
	if c.Clock != nil {
		return c.Clock.Now()
	}
	return time.Now()
}

func (c *Config) rand() io.Reader {
	if c.Rand != nil {
		return c.Rand
	}
	return crand.Reader
}

// hsConn is one connection's handshake state. Instances are pooled: the
// record layer, transcript hash, PRF expander, buf, and the fixed scratch
// arrays all reset cheaply between connections. Everything retained past
// the handshake (session IDs, tickets, KEX values, master secrets) is
// copied into Capture- or Session-owned storage before buf is reused;
// only Capture.Chain still aliases buf, under the validity contract
// documented on that field.
type hsConn struct {
	rc   record.Conn
	buf  []byte
	off  int       // consumed prefix of buf
	hash hash.Hash // running transcript digest
	ex   prf.Expander
	mbuf []byte // outgoing handshake-message marshal scratch
	sp   []byte // SKE signed-params scratch
	// Per-connection hello structs, reused across pooled connections.
	// Nothing that outlives the handshake aliases them: the Capture
	// copies the server random it retains, and its other retained fields
	// alias buf (fresh per connection), never these structs.
	ch wire.ClientHello
	sh wire.ServerHello
	// Parse scratch reused across pooled connections: the certificate
	// chain's top-level slice (elements alias buf, same validity contract
	// as Capture.Chain) and the ServerKeyExchange (all fields alias buf).
	chain [][]byte
	skeM  wire.SKE
	// Fixed-size derivation scratch. The PRF appends whole 32-byte
	// blocks before truncating, so capacities round up to a block.
	seed   [64]byte // client_random || server_random (either order)
	kb     [64]byte // key block (40 bytes used)
	master [64]byte // master secret (48 bytes used; copied into Session)
	fin    [32]byte // Finished verify_data (12 bytes used)
	pre    [32]byte // transcript digest
}

var hsPool = sync.Pool{New: func() any { return &hsConn{hash: sha256.New()} }}

func getHsConn(conn net.Conn) *hsConn {
	h := hsPool.Get().(*hsConn)
	h.rc.Reset(conn)
	h.hash.Reset()
	h.off = 0
	if perf.ConnRecycling() && cap(h.buf) >= 2048 {
		// Reuse the previous connection's buffer: every retained parse
		// result is copied into Capture/Session storage before the hsConn
		// returns to the pool, so nothing aliases it across connections.
		h.buf = h.buf[:0]
	} else {
		// Sized for a full server flight so it grows at most once.
		h.buf = make([]byte, 0, 2048)
	}
	return h
}

// transcript returns the hash of the handshake messages so far, in the
// connection's digest scratch (valid until the next transcript call).
func (h *hsConn) transcript() []byte {
	return h.hash.Sum(h.pre[:0])
}

func (h *hsConn) writeMsg(m *wire.Msg) error {
	h.mbuf = m.AppendTo(h.mbuf[:0])
	return h.writeFramed(h.mbuf)
}

// writeFramed sends an already-framed handshake message.
func (h *hsConn) writeFramed(frame []byte) error {
	h.hash.Write(frame)
	return h.rc.WriteRecord(record.TypeHandshake, frame)
}

func (h *hsConn) readMsg() (wire.Msg, bool, error) {
	for {
		if b := h.buf[h.off:]; len(b) >= 4 {
			n := int(b[1])<<16 | int(b[2])<<8 | int(b[3])
			if len(b) >= 4+n {
				raw := b[:4+n]
				h.off += 4 + n
				h.hash.Write(raw)
				return wire.Msg{Type: raw[0], Body: raw[4:]}, false, nil
			}
		}
		rec, err := h.rc.ReadRecord()
		if err != nil {
			return wire.Msg{}, false, err
		}
		switch rec.Type {
		case record.TypeHandshake:
			h.buf = append(h.buf, rec.Payload...)
		case record.TypeChangeCipherSpec:
			return wire.Msg{}, true, nil
		case record.TypeAlert:
			if len(rec.Payload) == 2 {
				return wire.Msg{}, false, &AlertError{Code: rec.Payload[1]}
			}
			return wire.Msg{}, false, errors.New("tls: malformed server alert")
		default:
			return wire.Msg{}, false, fmt.Errorf("tls: unexpected record type %d", rec.Type)
		}
	}
}

// defaultSuites is the offer when Config.Suites is nil.
var defaultSuites = []uint16{wire.SuiteECDHE, wire.SuiteDHE}

// Handshake performs one connection against conn. The returned Capture is
// non-nil whenever a ServerHello was seen, even on later failure.
func Handshake(conn net.Conn, cfg *Config) (*Capture, error) {
	cap := &Capture{}
	err := HandshakeInto(cap, conn, cfg)
	return cap, err
}

// HandshakeInto is Handshake recording into a caller-owned Capture (reset
// on entry), so the scanner's per-worker arenas reuse one Capture instead
// of allocating one per connection.
func HandshakeInto(cap *Capture, conn net.Conn, cfg *Config) error {
	*cap = Capture{}
	hc := getHsConn(conn)
	defer hsPool.Put(hc)
	// Flush any record bytes still coalesced when a path returns without a
	// subsequent read (the resumed handshake's final Finished). Runs before
	// the pool Put (LIFO). Paths whose callers must see the write error
	// flush explicitly first, making this a no-op backstop.
	defer hc.rc.Flush()

	suites := cfg.Suites
	if suites == nil {
		suites = defaultSuites
	}
	ch := &hc.ch
	*ch = wire.ClientHello{Suites: suites, ServerName: cfg.ServerName, OfferTicket: cfg.OfferTicket}
	if _, err := io.ReadFull(cfg.rand(), ch.Random[:]); err != nil {
		return err
	}
	if cfg.Resume != nil {
		if cfg.ResumeViaTicket {
			ch.Ticket = cfg.Resume.Ticket
			ch.OfferTicket = true
		} else {
			ch.SessionID = cfg.Resume.ID
		}
	}
	hc.mbuf = ch.AppendTo(hc.mbuf[:0])
	if err := hc.writeFramed(hc.mbuf); err != nil {
		return err
	}

	msg, _, err := hc.readMsg()
	if err != nil {
		return err
	}
	if msg.Type != wire.TypeServerHello {
		return fmt.Errorf("tls: expected ServerHello, got %d", msg.Type)
	}
	sh := &hc.sh
	if err := wire.ParseServerHelloInto(sh, msg.Body); err != nil {
		return err
	}
	cap.CipherSuite = sh.Suite
	cap.KexAlg = wire.SuiteKex(sh.Suite)
	cap.serverRandom = sh.Random
	cap.ServerRandom = cap.serverRandom[:]
	cap.SessionID = copyInto(cap.sessionID[:], sh.SessionID)

	// What follows decides full versus abbreviated handshake: a
	// Certificate message means full; NewSessionTicket or CCS means the
	// server accepted resumption.
	msg, ccs, err := hc.readMsg()
	if err != nil {
		return err
	}
	if ccs || msg.Type == wire.TypeNewSessionTicket {
		if cfg.Resume == nil {
			return errors.New("tls: server resumed without an offer")
		}
		return finishResumed(hc, cfg, cap, ch, sh, msg, ccs)
	}
	return finishFull(hc, cfg, cap, ch, sh, msg)
}

func finishFull(hc *hsConn, cfg *Config, cap *Capture, ch *wire.ClientHello, sh *wire.ServerHello, msg wire.Msg) error {
	if msg.Type != wire.TypeCertificate {
		return fmt.Errorf("tls: expected Certificate, got %d", msg.Type)
	}
	chain, err := wire.ParseCertificateInto(hc.chain[:0], msg.Body)
	if err != nil {
		return err
	}
	hc.chain = chain
	cap.Chain = chain
	if cfg.Roots != nil {
		cap.Trusted = cfg.Roots.Verify(chain, cfg.ServerName, cfg.now())
	}

	kex := wire.SuiteKex(sh.Suite)
	var premaster, clientPub []byte
	switch kex {
	case wire.KexECDHE, wire.KexDHE:
		msg, _, err = hc.readMsg()
		if err != nil {
			return err
		}
		if msg.Type != wire.TypeServerKeyExchange {
			return fmt.Errorf("tls: expected ServerKeyExchange, got %d", msg.Type)
		}
		ske := &hc.skeM
		if err := wire.ParseSKEInto(ske, kex, msg.Body); err != nil {
			return err
		}
		cap.ServerKEXValue = copyInto(cap.kexValue[:], ske.Public)
		if cfg.KexOnly {
			return nil
		}
		if err := verifySKE(hc, chain, ske, ch.Random[:], sh.Random[:]); err != nil {
			return err
		}
		// With the fixed client key, the shared secret is a pure function
		// of the server's KEX value, so Reuse-policy servers (which repeat
		// theirs) cost one key agreement total instead of one per probe.
		// Only previously-validated server values get cached, so the
		// cache-hit path's skipped range/point checks cannot admit a value
		// the slow path would have rejected. The fixed-key path draws no
		// randomness, so cache hits never shift the DRBG stream.
		fixed := cfg.ReuseKex && perf.ClientKexReuse()
		if kex == wire.KexECDHE {
			if fixed && perf.CryptoAmortization() {
				premaster, clientPub = clientPremasterECDHE(ske.Public)
				if premaster == nil {
					// Fresh-policy servers publish their scalar at key
					// generation, before the SKE we just parsed was sent:
					// deriving the secret from both scalars is a base-point
					// multiplication, ~3x cheaper than x*Ys. Only
					// self-generated points ever reach the scalar map, so the
					// skipped on-curve check cannot admit a bad value.
					if pm := keyex.ClientPremasterFromScalar(ske.Public); pm != nil {
						premaster, clientPub = pm, fixedECDHEPub()
					}
				}
			}
			if premaster == nil {
				var priv *ecdh.PrivateKey
				if fixed {
					priv = fixedECDHEKey()
				} else {
					priv, err = ecdh.P256().GenerateKey(cfg.rand())
					if err != nil {
						return err
					}
				}
				peer, err := ecdh.P256().NewPublicKey(ske.Public)
				if err != nil {
					return fmt.Errorf("tls: bad server ECDHE value: %w", err)
				}
				premaster, err = priv.ECDH(peer)
				if err != nil {
					return err
				}
				if fixed {
					clientPub = fixedECDHEPub()
					if perf.CryptoAmortization() {
						clientPremasterPutECDHE(ske.Public, premaster, clientPub)
					}
				} else {
					clientPub = priv.PublicKey().Bytes()
				}
			}
		} else {
			if fixed && perf.CryptoAmortization() {
				premaster, clientPub = clientPremasterDHE(ske.P, ske.G, ske.Public)
			}
			if premaster == nil {
				p := new(big.Int).SetBytes(ske.P)
				g := new(big.Int).SetBytes(ske.G)
				var x *big.Int
				var ycb []byte
				if fixed {
					x, _, ycb = fixedDHEKey(p, g)
				} else {
					var xb [32]byte
					if _, err := io.ReadFull(cfg.rand(), xb[:]); err != nil {
						return err
					}
					x = new(big.Int).SetBytes(xb[:])
					ycb = new(big.Int).Exp(g, x, p).Bytes()
				}
				ys := new(big.Int).SetBytes(ske.Public)
				if ys.Sign() <= 0 || ys.Cmp(p) >= 0 {
					return errors.New("tls: server DH value out of range")
				}
				premaster = new(big.Int).Exp(ys, x, p).Bytes()
				clientPub = ycb
				if fixed && perf.CryptoAmortization() {
					clientPremasterPutDHE(ske.P, ske.G, ske.Public, premaster, clientPub)
				}
			}
		}
	default:
		return fmt.Errorf("tls: unsupported key exchange %v", kex)
	}

	// ServerHelloDone.
	msg, _, err = hc.readMsg()
	if err != nil {
		return err
	}
	if msg.Type != wire.TypeServerHelloDone {
		return fmt.Errorf("tls: expected ServerHelloDone, got %d", msg.Type)
	}

	// Publish the agreement to the in-process exchange cache before the
	// CKE leaves: the server handling this connection recomputes exactly
	// these bytes from its private half, and the store-before-write order
	// means its lookup hits. cap.ServerKEXValue carries the same bytes as
	// the SKE public value, and the map keys copy them.
	if perf.CryptoAmortization() && premaster != nil {
		keyex.PremasterStore(cap.ServerKEXValue, clientPub, premaster)
	}
	hc.mbuf = wire.AppendCKE(hc.mbuf[:0], kex, clientPub)
	if err := hc.writeFramed(hc.mbuf); err != nil {
		return err
	}
	// Master secret and key block, derived in the pooled expander and the
	// connection's scratch (only the Session copy of the master survives).
	hc.ex.SetSecret(premaster)
	msSeed := append(append(hc.seed[:0], ch.Random[:]...), sh.Random[:]...)
	master := hc.ex.AppendPRF(hc.master[:0], "master secret", msSeed, 48)
	hc.ex.SetSecret(master)
	kbs := append(append(hc.seed[:0], sh.Random[:]...), ch.Random[:]...)
	kb := hc.ex.AppendPRF(hc.kb[:0], "key expansion", kbs, 40)

	preFinished := hc.transcript()
	if err := hc.rc.WriteRecord(record.TypeChangeCipherSpec, []byte{1}); err != nil {
		return err
	}
	if err := hc.rc.ArmWrite(kb[0:16], kb[32:36]); err != nil {
		return err
	}
	fin := wire.Msg{Type: wire.TypeFinished, Body: hc.ex.AppendPRF(hc.fin[:0], "client finished", preFinished, 12)}
	if err := hc.writeMsg(&fin); err != nil {
		return err
	}

	// Server side: optional NewSessionTicket (plaintext), CCS, Finished.
	msg, ccs, err := hc.readMsg()
	if err != nil {
		return err
	}
	if !ccs && msg.Type == wire.TypeNewSessionTicket {
		if err := recordTicket(cap, msg); err != nil {
			return err
		}
		msg, ccs, err = hc.readMsg()
		if err != nil {
			return err
		}
	}
	if !ccs {
		return fmt.Errorf("tls: expected server ChangeCipherSpec")
	}
	if err := hc.rc.ArmRead(kb[16:32], kb[36:40]); err != nil {
		return err
	}
	preServer := hc.transcript()
	msg, _, err = hc.readMsg()
	if err != nil {
		return err
	}
	want := hc.ex.AppendPRF(hc.fin[:0], "server finished", preServer, 12)
	if msg.Type != wire.TypeFinished || !equal(msg.Body, want) {
		return errors.New("tls: bad server Finished")
	}

	sess := &Session{Suite: sh.Suite, CreatedAt: cfg.now()}
	sess.setID(sh.SessionID)
	sess.setTicket(cap.Ticket)
	copy(sess.Master[:], master)
	cap.Session = sess
	return appData(hc, cfg, cap)
}

func finishResumed(hc *hsConn, cfg *Config, cap *Capture, ch *wire.ClientHello, sh *wire.ServerHello, msg wire.Msg, ccs bool) error {
	cap.Resumed = true
	cap.ResumedViaTicket = cfg.ResumeViaTicket
	master := cfg.Resume.Master[:]
	hc.ex.SetSecret(master)
	kbs := append(append(hc.seed[:0], sh.Random[:]...), ch.Random[:]...)
	kb := hc.ex.AppendPRF(hc.kb[:0], "key expansion", kbs, 40)

	if !ccs { // msg is NewSessionTicket (reissue)
		if err := recordTicket(cap, msg); err != nil {
			return err
		}
		var err error
		_, ccs, err = hc.readMsg()
		if err != nil {
			return err
		}
		if !ccs {
			return errors.New("tls: expected CCS after reissued ticket")
		}
	}
	if err := hc.rc.ArmRead(kb[16:32], kb[36:40]); err != nil {
		return err
	}
	preServer := hc.transcript()
	fin, _, err := hc.readMsg()
	if err != nil {
		return err
	}
	want := hc.ex.AppendPRF(hc.fin[:0], "server finished", preServer, 12)
	if fin.Type != wire.TypeFinished || !equal(fin.Body, want) {
		return errors.New("tls: bad server Finished on resumption")
	}

	preClient := hc.transcript()
	if err := hc.rc.WriteRecord(record.TypeChangeCipherSpec, []byte{1}); err != nil {
		return err
	}
	if err := hc.rc.ArmWrite(kb[0:16], kb[32:36]); err != nil {
		return err
	}
	cfin := wire.Msg{Type: wire.TypeFinished, Body: hc.ex.AppendPRF(hc.fin[:0], "client finished", preClient, 12)}
	if err := hc.writeMsg(&cfin); err != nil {
		return err
	}
	// Nothing is read after the final Finished, so flush here — its write
	// error must surface from this call, not vanish in the deferred flush.
	if err := hc.rc.Flush(); err != nil {
		return err
	}

	sess := &Session{Suite: sh.Suite, CreatedAt: cfg.now()}
	sess.setID(sh.SessionID)
	sess.setTicket(cap.Ticket)
	if len(sess.Ticket) == 0 {
		sess.setTicket(cfg.Resume.Ticket)
	}
	copy(sess.Master[:], master)
	cap.Session = sess
	cap.CipherSuite = sh.Suite
	return appData(hc, cfg, cap)
}

func recordTicket(cap *Capture, msg wire.Msg) error {
	nst, err := wire.ParseNewSessionTicket(msg.Body)
	if err != nil {
		return err
	}
	cap.TicketIssued = true
	cap.Ticket = copyInto(cap.tktbuf[:], nst.Ticket)
	// Derived from the capture-owned copy, so STEKID stays valid after the
	// handshake buffer nst.Ticket aliases is recycled.
	cap.STEKID = ticket.ExtractKeyID(cap.Ticket)
	cap.LifetimeHint = nst.LifetimeHint
	return nil
}

func appData(hc *hsConn, cfg *Config, cap *Capture) error {
	if len(cfg.AppData) == 0 {
		return nil
	}
	if err := hc.rc.WriteRecord(record.TypeAppData, cfg.AppData); err != nil {
		return err
	}
	rec, err := hc.rc.ReadRecord()
	if err != nil {
		return err
	}
	if rec.Type != record.TypeAppData {
		return fmt.Errorf("tls: expected application data, got record type %d", rec.Type)
	}
	// Payload aliases the record layer's reusable read buffer; the capture
	// outlives the connection, so copy (empty stays nil, as append would).
	if len(rec.Payload) > 0 {
		cap.AppResp = copyInto(cap.appResp[:], rec.Payload)
	}
	return nil
}

// fixedECDHEKey returns the process-wide fixed client P-256 key, now
// hosted by internal/keyex so the server side can prime the premaster
// exchange cache against it (the derivation, and therefore every
// campaign byte, is unchanged).
func fixedECDHEKey() *ecdh.PrivateKey {
	k, _ := keyex.FixedClientECDHE()
	return k
}

// fixedECDHEPub returns the fixed key's marshaled public point, which is
// written into the CKE (AppendCKE copies it) but never mutated.
func fixedECDHEPub() []byte {
	_, pub := keyex.FixedClientECDHE()
	return pub
}

// fixedDHEKey returns the fixed client DH exponent and the memoized g^x
// (as big.Int and marshaled bytes) for the given group: the population
// uses one group, so this is a single modexp per process instead of one
// per scan.
type dheKey struct {
	x, yc *big.Int
	ycb   []byte
}

var fixedDHE struct {
	mu sync.Mutex
	m  map[string]dheKey // P||G -> {x, g^x, bytes(g^x)}
}

func fixedDHEKey(p, g *big.Int) (x, yc *big.Int, ycb []byte) {
	key := string(p.Bytes()) + "|" + string(g.Bytes())
	fixedDHE.mu.Lock()
	defer fixedDHE.mu.Unlock()
	if v, ok := fixedDHE.m[key]; ok {
		return v.x, v.yc, v.ycb
	}
	var xb [32]byte
	_, _ = io.ReadFull(drbg.NewString("tlsclient|fixed-dhe"), xb[:])
	x = new(big.Int).SetBytes(xb[:])
	yc = new(big.Int).Exp(g, x, p)
	ycb = yc.Bytes()
	if fixedDHE.m == nil {
		fixedDHE.m = make(map[string]dheKey)
	}
	fixedDHE.m[key] = dheKey{x: x, yc: yc, ycb: ycb}
	return x, yc, ycb
}

// clientPM caches the premaster secret (and the matching marshaled client
// public) per server KEX value, usable only with the fixed client key.
// Reuse-policy servers repeat their KEX value across connections, so each
// such server costs one ECDH/modexp for the whole campaign. Entries are
// returned by reference: premasters feed the PRF and publics the CKE, both
// read-only. Hit counts depend on which worker probes a server first, so
// the telemetry counter is wall-prefixed (excluded from determinism
// comparisons). Bounded by wholesale clear, like the server-side caches.
type pmEntry struct{ pm, pub []byte }

var clientPM struct {
	mu sync.RWMutex
	ec map[string]pmEntry                       // server ECDHE point -> entry
	dh map[string]map[string]map[string]pmEntry // P -> G -> Ys -> entry
	n  int
}

const maxClientPMEntries = 8192

func clientPremasterECDHE(pub []byte) (pm, cpub []byte) {
	clientPM.mu.RLock()
	e, ok := clientPM.ec[string(pub)]
	clientPM.mu.RUnlock()
	if !ok {
		return nil, nil
	}
	telemetry.Global().Counter("wall/tlsclient/premaster_hit").Inc()
	return e.pm, e.pub
}

func clientPremasterPutECDHE(pub, pm, cpub []byte) {
	clientPM.mu.Lock()
	defer clientPM.mu.Unlock()
	if clientPM.n >= maxClientPMEntries {
		clientPM.ec, clientPM.dh, clientPM.n = nil, nil, 0
	}
	if clientPM.ec == nil {
		clientPM.ec = make(map[string]pmEntry)
	}
	// No defensive copies: pm is the fresh slice the key agreement just
	// returned (only ever read — the PRF copies it into its HMAC pads)
	// and cpub is the immutable fixed-key public.
	clientPM.ec[string(pub)] = pmEntry{pm: pm, pub: cpub}
	clientPM.n++
}

func clientPremasterDHE(p, g, ys []byte) (pm, cpub []byte) {
	clientPM.mu.RLock()
	e, ok := clientPM.dh[string(p)][string(g)][string(ys)]
	clientPM.mu.RUnlock()
	if !ok {
		return nil, nil
	}
	telemetry.Global().Counter("wall/tlsclient/premaster_hit").Inc()
	return e.pm, e.pub
}

func clientPremasterPutDHE(p, g, ys, pm, cpub []byte) {
	clientPM.mu.Lock()
	defer clientPM.mu.Unlock()
	if clientPM.n >= maxClientPMEntries {
		clientPM.ec, clientPM.dh, clientPM.n = nil, nil, 0
	}
	if clientPM.dh == nil {
		clientPM.dh = make(map[string]map[string]map[string]pmEntry)
	}
	gm := clientPM.dh[string(p)]
	if gm == nil {
		gm = make(map[string]map[string]pmEntry)
		clientPM.dh[string(p)] = gm
	}
	ym := gm[string(g)]
	if ym == nil {
		ym = make(map[string]pmEntry)
		gm[string(g)] = ym
	}
	// Same ownership argument as the ECDHE put: both slices are
	// fresh-or-immutable and only ever read.
	ym[string(ys)] = pmEntry{pm: pm, pub: cpub}
	clientPM.n++
}

// leafCache memoizes x509.ParseCertificate by leaf fingerprint: the
// scanner re-parses the same few hundred leaves tens of thousands of
// times to check ServerKeyExchange signatures.
var leafCache sync.Map // [32]byte -> *x509.Certificate

func parseLeaf(der []byte) (*x509.Certificate, error) {
	if !perf.CryptoCaches() {
		return x509.ParseCertificate(der)
	}
	key := sha256.Sum256(der)
	if v, ok := leafCache.Load(key); ok {
		return v.(*x509.Certificate), nil
	}
	leaf, err := x509.ParseCertificate(der)
	if err != nil {
		return nil, err
	}
	leafCache.Store(key, leaf)
	return leaf, nil
}

// skeVerified is the verify-once cache: once a (leaf certificate, KEX
// params) pair has carried a valid signature, later sightings of the same
// pair skip the signature check. Servers in the simulation always sign
// honestly, so the skipped verification is over the same signed content
// (the randoms differ per connection, but the decision a scan acts on —
// proceed with this server's params — is identical); proven byte-inert
// against the golden campaign hash. Only successful verifications insert.
var skeVerified struct {
	mu sync.RWMutex
	m  map[[32]byte]struct{}
}

const maxSKEVerified = 8192

// skeCacheKey binds the leaf fingerprint to the length-prefixed KEX
// params so distinct (cert, params) pairs can never collide.
func skeCacheKey(leafDER []byte, ske *wire.SKE) [32]byte {
	fp := sha256.Sum256(leafDER)
	var b [256]byte
	s := append(b[:0], fp[:]...)
	for _, part := range [][]byte{ske.P, ske.G, ske.Public} {
		s = binary.BigEndian.AppendUint16(s, uint16(len(part)))
		s = append(s, part...)
	}
	return sha256.Sum256(s)
}

func verifySKE(hc *hsConn, chain [][]byte, ske *wire.SKE, clientRandom, serverRandom []byte) error {
	if len(chain) == 0 {
		return errors.New("tls: no certificate to verify ServerKeyExchange")
	}
	leaf, err := parseLeaf(chain[0])
	if err != nil {
		return err
	}
	amort := perf.CryptoAmortization()
	var vkey [32]byte
	if amort {
		vkey = skeCacheKey(chain[0], ske)
		skeVerified.mu.RLock()
		_, ok := skeVerified.m[vkey]
		skeVerified.mu.RUnlock()
		if ok {
			telemetry.Global().Counter("wall/tlsclient/ske_verify_hit").Inc()
			return nil
		}
	}
	hc.sp = ske.AppendSignedParams(hc.sp[:0], clientRandom, serverRandom)
	digest := sha256.Sum256(hc.sp)
	switch pub := leaf.PublicKey.(type) {
	case *ecdsa.PublicKey:
		if !ecdsa.VerifyASN1(pub, digest[:], ske.Sig) {
			return errors.New("tls: bad ServerKeyExchange signature")
		}
	case *rsa.PublicKey:
		if err := rsa.VerifyPKCS1v15(pub, crypto.SHA256, digest[:], ske.Sig); err != nil {
			return err
		}
	default:
		return errors.New("tls: unsupported server public key")
	}
	if amort {
		skeVerified.mu.Lock()
		if skeVerified.m == nil || len(skeVerified.m) >= maxSKEVerified {
			skeVerified.m = make(map[[32]byte]struct{})
		}
		skeVerified.m[vkey] = struct{}{}
		skeVerified.mu.Unlock()
	}
	return nil
}

func equal(a, b []byte) bool {
	if len(a) != len(b) {
		return false
	}
	var v byte
	for i := range a {
		v |= a[i] ^ b[i]
	}
	return v == 0
}
