// Command tlsscan is the zgrab-analog single-target scanner: it performs
// one or more TLS handshakes against a simulated domain (or a real TCP
// endpoint speaking this repository's TLS 1.2 subset, e.g. cmd/simweb) and
// prints what the study records: trust status, suite, server key-exchange
// value, ticket and STEK identifier, and resumption behavior.
//
// Usage:
//
//	tlsscan -domain yahoo.com                 # scan inside a fresh sim world
//	tlsscan -domain yahoo.com -conns 5        # reuse detection
//	tlsscan -domain yahoo.com -resume ticket  # resumption check
//	tlsscan -addr 127.0.0.1:4433 -sni x.example  # scan a simweb endpoint
//	tlsscan -demo                             # self-check, exits non-zero on failure
package main

import (
	"encoding/hex"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"strings"
	"time"

	"tlsshortcuts/internal/faults"
	"tlsshortcuts/internal/pki"
	"tlsshortcuts/internal/population"
	"tlsshortcuts/internal/simclock"
	"tlsshortcuts/internal/telemetry"
	"tlsshortcuts/internal/tlsclient"
	"tlsshortcuts/internal/wire"
)

type scanOutput struct {
	Domain       string `json:"domain"`
	OK           bool   `json:"ok"`
	Error        string `json:"error,omitempty"`
	ErrClass     string `json:"error_class,omitempty"`
	Trusted      bool   `json:"trusted"`
	CipherSuite  string `json:"cipher_suite,omitempty"`
	KexAlg       string `json:"kex,omitempty"`
	KEXValue     string `json:"kex_value,omitempty"`
	SessionIDSet bool   `json:"session_id_set"`
	TicketIssued bool   `json:"ticket_issued"`
	STEKID       string `json:"stek_id,omitempty"`
	LifetimeHint string `json:"lifetime_hint,omitempty"`
	Resumed      bool   `json:"resumed"`
	ResumedVia   string `json:"resumed_via,omitempty"`
}

func main() {
	var (
		domain   = flag.String("domain", "yahoo.com", "simulated domain to scan")
		addr     = flag.String("addr", "", "real TCP address (host:port) instead of the sim")
		sni      = flag.String("sni", "", "SNI for -addr scans (default: -domain)")
		listSize = flag.Int("listsize", 2000, "sim world size")
		seed     = flag.Int64("seed", 1, "sim world seed")
		conns    = flag.Int("conns", 1, "connections in quick succession")
		suiteStr = flag.String("suites", "ecdhe,dhe,rsa", "offer order (csv of ecdhe,dhe,rsa)")
		resume   = flag.String("resume", "", "after the first handshake, resume via 'id' or 'ticket'")
		timeout  = flag.Duration("timeout", 5*time.Second, "per-connection read/write deadline (0 disables)")
		demo     = flag.Bool("demo", false, "run a self-contained scan self-check and exit")
		verbose  = flag.Bool("v", false, "per-connection telemetry on stderr, plus a final metrics snapshot")
	)
	flag.Parse()

	if *demo {
		runDemo()
		return
	}

	suites, err := parseSuites(*suiteStr)
	if err != nil {
		log.Fatal(err)
	}

	var dial func() (net.Conn, error)
	var roots *pki.RootStore
	clock := simclock.NewManual(simclock.Epoch)
	serverName := *domain
	if *addr != "" {
		if *sni != "" {
			serverName = *sni
		}
		dial = func() (net.Conn, error) { return net.DialTimeout("tcp", *addr, 5*time.Second) }
	} else {
		w, err := population.Build(population.Options{ListSize: *listSize, Seed: *seed})
		if err != nil {
			log.Fatalf("building sim world: %v", err)
		}
		if !w.Net.HasDomain(*domain) {
			log.Fatalf("domain %q not in the simulated world (try google.com, yahoo.com, netflix.com, site-000001.example ...)", *domain)
		}
		clock = w.Clock.(*simclock.Manual)
		roots = w.Roots
		dial = func() (net.Conn, error) { return w.Net.Dial(*domain) }
	}

	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")

	// With -v the process registry is installed, so the simulated
	// servers' session/ticket/keyex collectors report too; real -addr
	// scans only see the client-side counters.
	var reg *telemetry.Registry
	if *verbose {
		reg = telemetry.NewRegistry()
		defer telemetry.SetGlobal(reg)()
	}

	failed := false
	var firstSession *tlsclient.Session
	for i := 0; i < *conns; i++ {
		cfg := &tlsclient.Config{
			ServerName:  serverName,
			Suites:      suites,
			OfferTicket: true,
			Clock:       clock,
			Roots:       roots,
		}
		if *resume != "" && firstSession != nil {
			cfg.Resume = firstSession
			cfg.ResumeViaTicket = *resume == "ticket"
		}
		connStart := time.Now()
		conn, err := dial()
		if err != nil {
			out := scanOutput{Domain: serverName, Error: err.Error(), ErrClass: string(faults.ClassDial)}
			_ = enc.Encode(out)
			reg.Counter("tlsscan/errors/" + string(faults.ClassDial)).Inc()
			if *verbose {
				fmt.Fprintf(os.Stderr, "conn %d/%d: dial failed in %v: %v\n", i+1, *conns, time.Since(connStart).Round(time.Microsecond), err)
			}
			os.Exit(1)
		}
		if *timeout > 0 {
			_ = conn.SetDeadline(time.Now().Add(*timeout))
		}
		cap, err := tlsclient.Handshake(conn, cfg)
		conn.Close()
		elapsed := time.Since(connStart)
		out := render(serverName, cap, err)
		if err != nil {
			// A failed handshake must fail the scan: exiting 0 here once
			// made `tlsscan && ...` pipelines treat dead targets as scanned.
			failed = true
			reg.Counter("tlsscan/errors/" + out.ErrClass).Inc()
		} else {
			reg.Counter("tlsscan/handshakes_ok").Inc()
		}
		reg.Histogram("wall/tlsscan/handshake").Observe(elapsed)
		if *verbose {
			outcome := "ok"
			if err != nil {
				outcome = "FAILED class=" + out.ErrClass
			} else if out.Resumed {
				outcome = "ok resumed via " + out.ResumedVia
			}
			fmt.Fprintf(os.Stderr, "conn %d/%d: %s in %v (suite=%s kex=%s ticket=%v)\n",
				i+1, *conns, outcome, elapsed.Round(time.Microsecond), out.CipherSuite, out.KexAlg, out.TicketIssued)
		}
		if err == nil && firstSession == nil {
			firstSession = cap.Session
		}
		if err := enc.Encode(out); err != nil {
			log.Fatal(err)
		}
	}
	if *verbose {
		fmt.Fprintln(os.Stderr, "telemetry:")
		fmt.Fprint(os.Stderr, reg.Snapshot().Render())
	}
	if failed {
		os.Exit(1)
	}
}

// runDemo scans a famous never-rotator inside a small fresh world and
// checks the three behaviors the study depends on: a stable STEK ID
// across two connections, ticket resumption, and session-ID resumption.
func runDemo() {
	w, err := population.Build(population.Options{ListSize: 200, Seed: 1})
	if err != nil {
		log.Fatalf("demo: building world: %v", err)
	}
	clock := w.Clock.(*simclock.Manual)
	const target = "yahoo.com"
	scan := func(cfg *tlsclient.Config) *tlsclient.Capture {
		cfg.ServerName = target
		cfg.Clock = clock
		cfg.Roots = w.Roots
		conn, err := w.Net.Dial(target)
		if err != nil {
			log.Fatalf("demo: dial: %v", err)
		}
		defer conn.Close()
		cap, err := tlsclient.Handshake(conn, cfg)
		if err != nil {
			log.Fatalf("demo: handshake with %s: %v", target, err)
		}
		return cap
	}

	c1 := scan(&tlsclient.Config{OfferTicket: true})
	c2 := scan(&tlsclient.Config{OfferTicket: true})
	if !c1.Trusted || !c1.TicketIssued || !c2.TicketIssued {
		log.Fatalf("demo: expected a trusted ticket-issuing scan, got trusted=%v issued=%v/%v",
			c1.Trusted, c1.TicketIssued, c2.TicketIssued)
	}
	if len(c1.STEKID) == 0 || hex.EncodeToString(c1.STEKID) != hex.EncodeToString(c2.STEKID) {
		log.Fatalf("demo: STEK ID not stable across connections: %x vs %x", c1.STEKID, c2.STEKID)
	}
	fmt.Printf("demo: %s scan ok — suite %s, STEK id %x\n", target, wire.SuiteName(c1.CipherSuite), c1.STEKID)

	rt := scan(&tlsclient.Config{Resume: c1.Session, ResumeViaTicket: true})
	if !rt.Resumed || !rt.ResumedViaTicket {
		log.Fatal("demo: ticket resumption failed")
	}
	fmt.Println("demo: ticket resumption ok")

	ri := scan(&tlsclient.Config{Resume: c1.Session})
	if !ri.Resumed || ri.ResumedViaTicket {
		log.Fatal("demo: session-ID resumption failed")
	}
	fmt.Println("demo: session-ID resumption ok")
	fmt.Println("demo: PASS")
}

func render(domain string, cap *tlsclient.Capture, err error) scanOutput {
	out := scanOutput{Domain: domain, OK: err == nil}
	if err != nil {
		out.Error = err.Error()
		out.ErrClass = string(faults.Classify(err))
	}
	if cap == nil {
		return out
	}
	out.Trusted = cap.Trusted
	if cap.CipherSuite != 0 {
		out.CipherSuite = wire.SuiteName(cap.CipherSuite)
	}
	if cap.KexAlg != 0 {
		out.KexAlg = cap.KexAlg.String()
		out.KEXValue = hex.EncodeToString(cap.ServerKEXValue)
	}
	out.SessionIDSet = len(cap.SessionID) > 0
	out.TicketIssued = cap.TicketIssued
	out.STEKID = hex.EncodeToString(cap.STEKID)
	if cap.LifetimeHint > 0 {
		out.LifetimeHint = cap.LifetimeHint.String()
	}
	out.Resumed = cap.Resumed
	if cap.Resumed {
		out.ResumedVia = "id"
		if cap.ResumedViaTicket {
			out.ResumedVia = "ticket"
		}
	}
	return out
}

func parseSuites(s string) ([]uint16, error) {
	var out []uint16
	for _, part := range strings.Split(s, ",") {
		switch strings.TrimSpace(strings.ToLower(part)) {
		case "ecdhe":
			out = append(out, wire.SuiteECDHE)
		case "dhe":
			out = append(out, wire.SuiteDHE)
		case "rsa":
			out = append(out, wire.SuiteRSA)
		case "":
		default:
			return nil, fmt.Errorf("unknown suite %q", part)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no suites in %q", s)
	}
	return out, nil
}
