// Command trafficload runs the simulated-user traffic plane standalone —
// no scanner campaign around it — against a freshly built population, and
// reports throughput plus the full traffic results JSON. It is the load
// generator for sizing the traffic plane (sessions/s on this machine) and
// a quick way to inspect the workload model's output without paying for a
// campaign.
//
// Usage:
//
//	trafficload -listsize 1000 -users 500 -days 8 -out traffic.json
//
// The run is deterministic for a given (listsize, seed, users, days)
// regardless of -workers; the wall-clock throughput line is the only
// nondeterministic output.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"time"

	"tlsshortcuts/internal/population"
	"tlsshortcuts/internal/simclock"
	"tlsshortcuts/internal/telemetry"
	"tlsshortcuts/internal/traffic"
)

func main() {
	var (
		listSize = flag.Int("listsize", 1000, "scaled Top Million list size")
		users    = flag.Int("users", 500, "simulated user population")
		days     = flag.Int("days", 8, "virtual days of traffic")
		seed     = flag.Int64("seed", 1, "world + workload seed")
		workers  = flag.Int("workers", runtime.NumCPU(), "visit concurrency")
		visits   = flag.Float64("visits", 0, "mean visits per user per day (0 = default 6)")
		out      = flag.String("out", "", "write the traffic Results JSON to this path")
		quiet    = flag.Bool("quiet", false, "suppress per-day progress")
	)
	flag.Parse()

	if err := run(*listSize, *users, *days, *seed, *workers, *visits, *out, *quiet); err != nil {
		log.Fatalf("trafficload: %v", err)
	}
}

func run(listSize, users, days int, seed int64, workers int, visits float64, out string, quiet bool) error {
	world, err := population.Build(population.Options{ListSize: listSize, Seed: seed})
	if err != nil {
		return fmt.Errorf("building population: %v", err)
	}
	clock, ok := world.Clock.(*simclock.Manual)
	if !ok {
		return fmt.Errorf("population clock is not manual")
	}
	eng, err := traffic.NewEngine(world, traffic.Options{
		Users: users, Seed: seed, Workers: workers, MeanVisits: visits,
	}, telemetry.NewRegistry())
	if err != nil {
		return fmt.Errorf("building traffic engine: %v", err)
	}

	start := clock.Now()
	wall := time.Now()
	var totalVisits, totalFails int
	for day := 0; day < days; day++ {
		clock.Set(start.Add(time.Duration(day) * 24 * time.Hour))
		v, f := eng.RunDay(day)
		totalVisits += v
		totalFails += f
		if !quiet {
			log.Printf("day %d/%d: %d visits (%d failed)", day+1, days, v, f)
		}
	}
	res := eng.Finalize()
	elapsed := time.Since(wall)

	fmt.Printf("trafficload: %d users x %d days: %d visits (%d failed) in %s — %.0f sessions/s\n",
		users, days, totalVisits, totalFails, elapsed.Round(time.Millisecond),
		float64(totalVisits)/elapsed.Seconds())
	for i := range res.Policies {
		p := &res.Policies[i]
		fmt.Printf("  %-8s %4d users  %7d conns  %6d resumed  %6d chains\n",
			p.Policy.Name, p.Users, p.Conns, p.Resumed, p.Chains)
	}

	if out != "" {
		buf, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(out, append(buf, '\n'), 0o644); err != nil {
			return fmt.Errorf("writing %s: %v", out, err)
		}
		fmt.Printf("trafficload: wrote %s\n", out)
	}
	return nil
}
