package study

import (
	"encoding/hex"

	"tlsshortcuts/internal/attacker"
	"tlsshortcuts/internal/cryptanalysis"
	"tlsshortcuts/internal/scanner"
	"tlsshortcuts/internal/ticket"
)

// cryptAppData is the application payload the capture pass sends — the
// sensitive-looking request whose retrospective decryption the attacker
// replay measures in bytes.
var cryptAppData = []byte("GET /account/settings HTTP/1.1\r\nCookie: session=s3cr3t\r\n\r\n")

// runCryptanalysis executes the weak-crypto measurement over the shard's
// core: tap-recorded captures, per-domain primitive extraction (issuing
// key name, ticket IVs, weak-prime membership), the weak-seed dictionary
// crack, and the attacker replay that turns cracked keys into measured
// decryption yield. Results are flat per-domain maps so MergeDatasets
// recombines shards by disjoint union; the derived groupings (shared key
// names, keystream reuse, prime amortization) are computed at report
// time from the merged maps.
func runCryptanalysis(scan *scanner.Scanner, domains []string) *cryptanalysis.Findings {
	f := cryptanalysis.NewFindings()
	caps := scan.CryptanalysisCapture(domains, cryptAppData)
	dict := cryptanalysis.Dict()
	var captures []attacker.CapturedConn
	var cracked []*ticket.STEK
	crackedNames := map[string]bool{}
	for _, cc := range caps {
		if len(cc.Tickets) > 0 {
			t0 := cc.Tickets[0]
			if name := ticket.KeyName(t0); name != nil {
				f.KeyNames[cc.Domain] = hex.EncodeToString(name)
			}
			for _, t := range cc.Tickets {
				if iv := ticket.IVOf(t); iv != nil {
					f.IVs[cc.Domain] = append(f.IVs[cc.Domain], hex.EncodeToString(iv))
				}
			}
			if k := dict.Crack(t0); k != nil {
				f.Cracked[cc.Domain] = hex.EncodeToString(k.Name)
				if !crackedNames[string(k.Name)] {
					crackedNames[string(k.Name)] = true
					cracked = append(cracked, k)
				}
			}
		}
		if len(cc.DHPrime) > 0 {
			if id, ok := cryptanalysis.IsWeakPrime(cc.DHPrime); ok {
				f.WeakPrime[cc.Domain] = id
			}
		}
		for _, conv := range cc.Convs {
			rec, err := attacker.Parse(conv)
			if err != nil {
				continue
			}
			captures = append(captures, attacker.CapturedConn{Domain: cc.Domain, Conv: conv, Rec: rec})
		}
	}
	f.Yield = attacker.Replay(captures, cracked)
	return f
}
